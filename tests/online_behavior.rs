//! Integration tests for the online layer: heuristics vs LP bounds on
//! simulated workloads, AMRT's competitive guarantees, and the adversarial
//! constructions.

use flow_switch::offline::art::art_lp_lower_bound;
use flow_switch::offline::exact::min_max_response;
use flow_switch::offline::hardness::{figure_4a, figure_4b};
use flow_switch::offline::mrt::min_feasible_rho;
use flow_switch::online::{amrt_schedule, run_policy, MaxCard, MaxWeight, MinRTime};
use flow_switch::prelude::*;
use flow_switch::sim::{poisson_workload, WorkloadParams};
use rand::{rngs::SmallRng, SeedableRng};

#[test]
fn heuristics_within_small_factor_of_lp_on_poisson_workloads() {
    // The paper observes every heuristic within ~2x of the LP average
    // bound and ~2.5x of the LP max bound. Allow generous slack on tiny
    // switches where variance is higher.
    let mut rng = SmallRng::seed_from_u64(42);
    let params = WorkloadParams {
        m: 6,
        mean_arrivals: 4.0,
        rounds: 8,
    };
    for _ in 0..3 {
        let inst = poisson_workload(&mut rng, &params);
        if inst.n() == 0 {
            continue;
        }
        let lp_avg = art_lp_lower_bound(&inst, None).unwrap() / inst.n() as f64;
        let lp_max = min_feasible_rho(&inst, None).unwrap() as f64;
        for (name, sched) in [
            ("MaxCard", run_policy(&inst, &mut MaxCard::default())),
            ("MinRTime", run_policy(&inst, &mut MinRTime::default())),
            ("MaxWeight", run_policy(&inst, &mut MaxWeight::default())),
        ] {
            let m = metrics::evaluate(&inst, &sched);
            assert!(
                m.mean_response <= 4.0 * lp_avg.max(1.0),
                "{name}: avg {} vs LP {lp_avg}",
                m.mean_response
            );
            assert!(
                (m.max_response as f64) <= 5.0 * lp_max.max(1.0),
                "{name}: max {} vs LP {lp_max}",
                m.max_response
            );
        }
    }
}

#[test]
fn figure_4b_no_policy_beats_offline_bound() {
    // Online policies cannot beat the offline optimum; Lemma 5.2 says some
    // adversarial tie-break forces 3, and no algorithm does better than 2.
    let inst = figure_4b();
    let (opt, _) = min_max_response(&inst);
    assert_eq!(opt, 2);
    for sched in [
        run_policy(&inst, &mut MaxCard::default()),
        run_policy(&inst, &mut MinRTime::default()),
        run_policy(&inst, &mut MaxWeight::default()),
    ] {
        let m = metrics::evaluate(&inst, &sched);
        assert!(m.max_response >= 2);
        assert!(m.max_response <= 3, "nothing forces worse than 3 here");
    }
}

#[test]
fn figure_4a_ratio_grows_with_stream_length() {
    // Lemma 5.1's mechanism: with T fixed, growing M widens the gap
    // between MinRTime/MaxWeight (which interleave the two port-1 queues)
    // and the offline strategy.
    let t = 8u64;
    let short = figure_4a(t, 24);
    let long = figure_4a(t, 96);
    let ratio = |inst: &Instance| {
        let online = metrics::evaluate(inst, &run_policy(inst, &mut MinRTime::default()))
            .total_response as f64;
        // Offline cost of the Lemma 5.1 strategy: (0,1) flows respond in
        // 1, (0,0) flows wait ~T, dashed flows respond in 1.
        let offline: f64 = (2 * t + (t * t) / 2 + (inst.n() as u64 - 2 * t)) as f64;
        online / offline
    };
    assert!(
        ratio(&long) > ratio(&short),
        "gap must widen with M: {} vs {}",
        ratio(&long),
        ratio(&short)
    );
}

#[test]
fn amrt_on_poisson_workload() {
    let mut rng = SmallRng::seed_from_u64(77);
    let params = WorkloadParams {
        m: 4,
        mean_arrivals: 2.0,
        rounds: 6,
    };
    let inst = poisson_workload(&mut rng, &params);
    let r = amrt_schedule(&inst);
    let m = metrics::evaluate(&inst, &r.schedule);
    assert!(m.max_response <= 2 * r.final_rho.max(1));
    // Lemma 5.3 capacity: 2 * (c_p + 2 dmax - 1) = 4 for unit everything.
    assert!(r.max_port_load <= 4);
}

#[test]
fn online_policies_are_work_conserving_under_load() {
    // On a saturated switch no policy should leave the queue idle: total
    // scheduled per round equals a maximal matching's worth of flows.
    let mut rng = SmallRng::seed_from_u64(5);
    let params = WorkloadParams {
        m: 5,
        mean_arrivals: 10.0,
        rounds: 4,
    };
    let inst = poisson_workload(&mut rng, &params);
    let sched = run_policy(&inst, &mut MaxCard::default());
    // With m=5 ports, at most 5 flows per round; heavy load should fill
    // most rounds to near capacity until the queue drains.
    let mut per_round = std::collections::HashMap::new();
    for &t in sched.rounds() {
        *per_round.entry(t).or_insert(0u32) += 1;
    }
    let makespan = sched.makespan();
    for t in 0..makespan.saturating_sub(1) {
        let count = per_round.get(&t).copied().unwrap_or(0);
        assert!(count >= 1, "round {t} idle while flows were pending");
    }
}
