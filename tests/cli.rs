//! End-to-end tests of the `flowsched` CLI binary.

use std::process::Command;

fn flowsched(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_flowsched"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// Run the binary with bytes piped to stdin (for `serve` sessions).
fn flowsched_with_stdin(args: &[&str], input: &[u8]) -> std::process::Output {
    use std::io::Write;
    let mut child = Command::new(env!("CARGO_BIN_EXE_flowsched"))
        .args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input)
        .expect("stdin accepts the trace");
    child.wait_with_output().expect("binary runs")
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("flowsched-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn gen_solve_validate_round_trip() {
    let inst = tmp("inst.json");
    let sched = tmp("sched.json");

    let out = flowsched(&[
        "gen", "--m", "4", "--flows", "10", "--seed", "9", "-o", &inst,
    ]);
    assert!(
        out.status.success(),
        "gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = flowsched(&["solve", "-i", &inst, "--objective", "mrt", "-o", &sched]);
    assert!(
        out.status.success(),
        "solve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stderr);
    assert!(log.contains("rho*"), "missing rho* report: {log}");

    // The MRT schedule may need augmentation up to 2*dmax-1 = 1.
    let out = flowsched(&["validate", "-i", &inst, "-s", &sched, "--augment", "1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn online_policies_and_stats() {
    let inst = tmp("inst2.json");
    let sched = tmp("sched2.json");
    flowsched(&[
        "gen", "--m", "3", "--flows", "8", "--seed", "4", "-o", &inst,
    ]);
    for policy in ["maxcard", "minrtime", "maxweight", "fifo"] {
        let out = flowsched(&["online", "-i", &inst, "--policy", policy, "-o", &sched]);
        assert!(out.status.success(), "policy {policy} failed");
        let out = flowsched(&["validate", "-i", &inst, "-s", &sched]);
        assert!(out.status.success(), "policy {policy} schedule invalid");
    }
    let out = flowsched(&["stats", "-i", &inst, "-s", &sched]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean response"));
    assert!(text.contains("p50 / p95 / p99"));
}

#[test]
fn art_solver_reports_capacity_factor() {
    let inst = tmp("inst3.json");
    let sched = tmp("sched3.json");
    flowsched(&[
        "gen", "--m", "3", "--flows", "6", "--seed", "5", "-o", &inst,
    ]);
    let out = flowsched(&[
        "solve",
        "-i",
        &inst,
        "--objective",
        "art",
        "--c",
        "2",
        "-o",
        &sched,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("3x capacity"));
}

#[test]
fn bad_inputs_fail_cleanly() {
    // Unknown subcommand.
    let out = flowsched(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Missing required flag.
    let out = flowsched(&["validate"]);
    assert!(!out.status.success());

    // Unknown policy.
    let inst = tmp("inst4.json");
    flowsched(&["gen", "--m", "2", "--flows", "2", "-o", &inst]);
    let out = flowsched(&["online", "-i", &inst, "--policy", "psychic"]);
    assert!(!out.status.success());
}

#[test]
fn mismatched_schedule_rejected() {
    let inst = tmp("inst5.json");
    let other = tmp("inst6.json");
    let sched = tmp("sched5.json");
    flowsched(&[
        "gen", "--m", "3", "--flows", "6", "--seed", "1", "-o", &inst,
    ]);
    flowsched(&[
        "gen", "--m", "3", "--flows", "9", "--seed", "2", "-o", &other,
    ]);
    flowsched(&["online", "-i", &inst, "--policy", "fifo", "-o", &sched]);
    // Validate against the wrong instance: length mismatch.
    let out = flowsched(&["validate", "-i", &other, "-s", &sched]);
    assert!(!out.status.success());
}

#[test]
fn stream_reports_statistics() {
    let out = flowsched(&[
        "stream",
        "--m",
        "20",
        "--rate",
        "60",
        "--rounds",
        "30",
        "--seed",
        "7",
        "--mode",
        "incremental",
    ]);
    assert!(
        out.status.success(),
        "stream failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stdout);
    assert!(log.contains("mode             : incremental"), "{log}");
    assert!(log.contains("flows"), "{log}");
    assert!(log.contains("mean response"), "{log}");

    // Exact engine mode works through the same subcommand.
    let out = flowsched(&[
        "stream", "--m", "20", "--rate", "60", "--rounds", "30", "--mode", "maxcard",
    ]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("exact/MaxCard"));

    // Unknown modes are rejected.
    let out = flowsched(&["stream", "--mode", "psychic"]);
    assert!(!out.status.success());
}

#[test]
fn stream_metrics_appends_prometheus_telemetry() {
    let base = &[
        "stream", "--m", "20", "--rate", "60", "--rounds", "30", "--seed", "7", "--mode", "maxcard",
    ];
    let plain = flowsched(base);
    assert!(plain.status.success());
    let plain_log = String::from_utf8_lossy(&plain.stdout).into_owned();
    assert!(!plain_log.contains("fss_rounds_total"), "{plain_log}");

    let mut with_metrics = base.to_vec();
    with_metrics.push("--metrics");
    let out = flowsched(&with_metrics);
    assert!(
        out.status.success(),
        "stream --metrics failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stdout);
    assert!(log.contains("fss_rounds_total{source=\"stream\"}"), "{log}");
    assert!(
        log.contains("fss_stage_ns_total{source=\"stream\",stage=\"match_repair\"}"),
        "{log}"
    );
    assert!(log.contains("fss_decision_latency_ns_count"), "{log}");
    // Telemetry observes, never steers: the statistics block is
    // line-for-line identical to the uninstrumented run (modulo the
    // machine-sensitive wall-time line).
    let stats_of = |s: &str| -> Vec<String> {
        s.lines()
            .take_while(|l| !l.is_empty())
            .filter(|l| !l.starts_with("wall time"))
            .map(str::to_string)
            .collect()
    };
    assert_eq!(stats_of(&plain_log), stats_of(&log));
}

#[test]
fn bench_progress_telemetry_dump_round_trip() {
    let dir = std::env::temp_dir()
        .join("flowsched-cli-tests")
        .join("telemetry");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_string_lossy().into_owned();
    let out = flowsched(&[
        "bench",
        "--smoke",
        "--filter",
        "fig6",
        "--trials",
        "1",
        "--progress",
        "--out",
        &dir_s,
    ]);
    assert!(
        out.status.success(),
        "bench --progress failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The live progress line streams to stderr as cells complete.
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("[fss-bench] cells "), "{err}");

    // The artifact carries per-cell snapshots; `telemetry dump` merges
    // them back out as Prometheus text.
    let artifact = dir.join("BENCH_fig6.json");
    let out = flowsched(&["telemetry", "dump", "-i", artifact.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "telemetry dump failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stdout);
    assert!(log.contains("fss_rounds_total{"), "{log}");
    assert!(log.contains("stage=\"match_repair\""), "{log}");
    assert!(log.contains("fss_decision_latency_ns_bucket{"), "{log}");

    // Unknown sub-subcommands and missing telemetry are clean errors
    // with the conventional failure exit code, not panics.
    let out = flowsched(&["telemetry", "frobnicate"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown telemetry subcommand"), "{err}");
    let out = flowsched(&["telemetry", "dump", "-i", "/no/such/file.json"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("read /no/such/file.json"), "{err}");
}

#[test]
fn bench_list_prints_registry() {
    let out = flowsched(&["bench", "--list"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for id in [
        "fig6",
        "fig7",
        "saturation",
        "table_mrt",
        "open_problem_probe",
    ] {
        assert!(text.contains(id), "--list must mention {id}: {text}");
    }
}

#[test]
fn bench_smoke_fig6_writes_schema_valid_artifact() {
    let dir = std::env::temp_dir()
        .join("flowsched-cli-tests")
        .join("bench");
    let _ = std::fs::remove_dir_all(&dir);
    let out = flowsched(&[
        "bench",
        "--smoke",
        "--filter",
        "fig6",
        "--trials",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Non-empty, schema-valid BENCH_fig6.json artifact.
    let artifact = dir.join("BENCH_fig6.json");
    let text = std::fs::read_to_string(&artifact).expect("artifact exists");
    assert!(!text.is_empty());
    let report = fss_sim::bench_report_from_json(&text).expect("artifact schema-valid");
    assert_eq!(report.experiment, "fig6");
    assert!(report.smoke);
    assert!(!report.cells.is_empty());
    assert!(
        report.cells.iter().any(|c| c.engine_mode == "engine"),
        "heuristic cells present"
    );
    assert!(
        report.cells.iter().any(|c| c.engine_mode == "lp"),
        "LP bound cells present"
    );

    // The JSONL stream covers the same cells.
    let stream = std::fs::read_to_string(dir.join("BENCH_cells.jsonl")).expect("stream exists");
    assert_eq!(stream.lines().count(), report.cells.len());

    // Unknown filters fail with a helpful error.
    let out = flowsched(&[
        "bench",
        "--filter",
        "psychic",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no experiment matches"));
}

#[test]
fn trace_generate_stream_and_bench_replay() {
    let dir = std::env::temp_dir()
        .join("flowsched-cli-tests")
        .join("trace");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("trace.jsonl");

    // Freeze a Poisson workload into a trace file.
    let out = flowsched(&[
        "trace",
        "--m",
        "6",
        "--rate",
        "4",
        "--rounds",
        "10",
        "--seed",
        "3",
        "-o",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.starts_with("{\"ports\":6}"), "{text}");

    // Replay it through `stream --scenario`.
    let spec = dir.join("spec.json");
    std::fs::write(
        &spec,
        format!(
            "{{\"ports\": 0, \"arrivals\": {{\"trace\": {{\"path\": {:?}}}}}}}",
            trace.to_str().unwrap()
        ),
    )
    .unwrap();
    let out = flowsched(&[
        "stream",
        "--scenario",
        spec.to_str().unwrap(),
        "--mode",
        "maxcard",
    ]);
    assert!(
        out.status.success(),
        "stream --scenario failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let log = String::from_utf8_lossy(&out.stdout);
    assert!(log.contains("trace replay"), "{log}");

    // Replay it through the bench registry and self-diff the artifact.
    let out = flowsched(&[
        "bench",
        "--trace",
        trace.to_str().unwrap(),
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "bench --trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let artifact = dir.join("BENCH_trace_replay.json");
    let report =
        fss_sim::bench_report_from_json(&std::fs::read_to_string(&artifact).unwrap()).unwrap();
    assert_eq!(report.experiment, "trace_replay");
    assert_eq!(report.cells.len(), 4);

    let out = flowsched(&[
        "bench",
        "--diff",
        artifact.to_str().unwrap(),
        artifact.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "self-diff must pass: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS: 0 regression(s)"));
}

#[test]
fn bench_diff_flags_regressions_and_bad_input() {
    let dir = std::env::temp_dir()
        .join("flowsched-cli-tests")
        .join("diff");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Build a pair of artifacts where `new` is 10x slower on one cell.
    let fingerprint = fss_sim::cell_fingerprint("x/a", &[]);
    let cell = |wall: f64| {
        format!(
            "{{\"cell_id\": \"x/a\", \"fingerprint\": \"{fingerprint}\", \"params\": [], \
             \"metrics\": [[\"m\", 1.0]], \"wall_s\": {wall}, \"flows\": 1000, \
             \"engine_mode\": \"engine\"}}"
        )
    };
    let report = |wall: f64| {
        format!(
            "{{\"schema_version\": {}, \"experiment\": \"x\", \"description\": \"d\", \
             \"smoke\": true, \"jobs\": 1, \"total_wall_s\": 1.0, \"cells\": [{}]}}",
            fss_sim::BENCH_SCHEMA_VERSION,
            cell(wall)
        )
    };
    let old = dir.join("old.json");
    let new = dir.join("new.json");
    std::fs::write(&old, report(0.1)).unwrap();
    std::fs::write(&new, report(1.0)).unwrap();

    let out = flowsched(&[
        "bench",
        "--diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "10x slowdown must fail the gate with exit code 1"
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("REGRESSED"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("regression(s)"));

    // A huge tolerance lets it pass.
    let out = flowsched(&[
        "bench",
        "--diff",
        old.to_str().unwrap(),
        new.to_str().unwrap(),
        "--tolerance",
        "95",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Wrong arity and unreadable files error cleanly with exit code 1.
    let out = flowsched(&["bench", "--diff", old.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly two"));
    let out = flowsched(&["bench", "--diff", "nope.json", "also-nope.json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("read nope.json"));

    // Tolerance validation: out of range, and non-numeric.
    for (tol, want) in [
        ("150", "--tolerance must be in [0, 100]"),
        ("-3", "--tolerance must be in [0, 100]"),
        ("lots", "bad value for --tolerance"),
    ] {
        let out = flowsched(&[
            "bench",
            "--diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--tolerance",
            tol,
        ]);
        assert_eq!(out.status.code(), Some(1), "--tolerance {tol}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(want), "--tolerance {tol}: {err}");
    }
}

/// A schema-valid artifact whose cells carry no telemetry snapshots
/// (the bench ran without `--progress`) dumps a clean exit-1 error
/// telling the user how to get one, not an empty exposition.
#[test]
fn telemetry_dump_without_snapshots_is_a_clean_error() {
    let fingerprint = fss_sim::cell_fingerprint("x/a", &[]);
    let report = format!(
        "{{\"schema_version\": {}, \"experiment\": \"x\", \"description\": \"d\", \
         \"smoke\": true, \"jobs\": 1, \"total_wall_s\": 1.0, \"cells\": [\
         {{\"cell_id\": \"x/a\", \"fingerprint\": \"{fingerprint}\", \"params\": [], \
         \"metrics\": [[\"m\", 1.0]], \"wall_s\": 0.5, \"flows\": 1000, \
         \"engine_mode\": \"engine\"}}]}}",
        fss_sim::BENCH_SCHEMA_VERSION,
    );
    let path = tmp("no-telemetry.json");
    std::fs::write(&path, report).unwrap();
    let out = flowsched(&["telemetry", "dump", "-i", &path]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no telemetry"), "{err}");
    assert!(err.contains("--progress"), "must point at the fix: {err}");
}

#[test]
fn stream_scenario_with_failures_requires_policy_mode() {
    let dir = std::env::temp_dir()
        .join("flowsched-cli-tests")
        .join("scenario");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("failures.json");
    std::fs::write(
        &spec,
        r#"{"ports": 8, "horizon": 40, "arrivals": {"poisson": {"rate": 5.0}},
            "failures": {"outages": [{"side": "Input", "port": 1, "from": 0, "to": 10}]},
            "seed": 2}"#,
    )
    .unwrap();

    // Default (incremental) mode cannot honor a failure plan.
    let out = flowsched(&["stream", "--scenario", spec.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("failure plan"));

    // A policy mode runs it through the failure drive.
    let out = flowsched(&[
        "stream",
        "--scenario",
        spec.to_str().unwrap(),
        "--mode",
        "minrtime",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("failures/MinRTime"));
}

/// `flowsched serve` on stdio, fed the checked-in sample trace, emits a
/// dispatch stream bit-identical to `serve --reference` on the same
/// workload; bad serve flags are clean exit-1 errors.
#[test]
fn serve_stdio_replay_matches_reference_and_rejects_bad_flags() {
    let trace = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/sample_trace.jsonl");
    let spec = tmp("serve-spec.json");
    std::fs::write(
        &spec,
        format!(r#"{{"ports": 0, "arrivals": {{"trace": {{"path": "{trace}"}}}}}}"#),
    )
    .unwrap();

    let reference = flowsched(&["serve", "--reference", "--scenario", &spec]);
    assert!(
        reference.status.success(),
        "{}",
        String::from_utf8_lossy(&reference.stderr)
    );
    let reference = String::from_utf8_lossy(&reference.stdout).into_owned();
    assert!(reference.contains("\"kind\":\"Dispatch\""), "{reference}");

    // The live session fed the same trace over stdin must produce the
    // exact same dispatch stream (parity by construction).
    let trace_bytes = std::fs::read(trace).unwrap();
    let out = flowsched_with_stdin(&["serve", "--scenario", &spec], &trace_bytes);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let served: String = String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| l.contains("\"kind\":\"Dispatch\""))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(served, reference, "live serve must match the reference");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("0 dropped"), "pause mode is lossless: {err}");

    // Bad serve flags fail fast with the conventional exit code.
    let out = flowsched_with_stdin(&["serve", "--admission", "yolo"], b"");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown admission mode"));
    let out = flowsched_with_stdin(&["serve", "--queue-cap", "0"], b"");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--queue-cap must be at least 1"));
}

/// The `trace` sub-subcommands chain: gen → stats, convert → morph →
/// stats, with the declared switch size tracking the morphs.
#[test]
fn trace_tools_gen_convert_morph_stats_pipeline() {
    let gen = tmp("tools-gen.jsonl");
    let out = flowsched(&[
        "trace", "gen", "--m", "6", "--rate", "4", "--rounds", "30", "--seed", "11", "-o", &gen,
    ]);
    assert!(
        out.status.success(),
        "trace gen failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("6x6 switch"));

    let out = flowsched(&["trace", "stats", &gen]);
    assert!(
        out.status.success(),
        "trace stats failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("switch           : 6x6"), "{text}");
    assert!(text.contains("round burst"), "{text}");
    assert!(text.contains("busiest src"), "{text}");

    let csv = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/sample_coflow.csv");
    let converted = tmp("tools-conv.jsonl");
    let out = flowsched(&["trace", "convert", csv, "--ports", "32", "-o", &converted]);
    assert!(
        out.status.success(),
        "trace convert failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("32x32 switch"));

    let morphed = tmp("tools-morph.jsonl");
    let out = flowsched(&[
        "trace",
        "morph",
        &converted,
        "--fold",
        "16",
        "--skew",
        "zipf:1.2:9",
        "--truncate",
        "100",
        "-o",
        &morphed,
    ]);
    assert!(
        out.status.success(),
        "trace morph failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = flowsched(&["trace", "stats", &morphed]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("switch           : 16x16"), "{text}");
    assert!(text.contains("flows            : 100"), "{text}");
}

/// `trace split` shards a trace round-robin by port: the sub-traces
/// are valid traces on the same switch, their flow counts sum to the
/// input's, and each holds only its shard's source ports.
#[test]
fn trace_split_shards_round_robin_by_port() {
    let input = tmp("split-in.jsonl");
    let out = flowsched(&[
        "trace", "gen", "--m", "6", "--rate", "5", "--rounds", "40", "--seed", "3", "-o", &input,
    ]);
    assert!(out.status.success());

    let prefix = tmp("split-out");
    let out = flowsched(&["trace", "split", &input, "--shards", "3", "-o", &prefix]);
    assert!(
        out.status.success(),
        "trace split failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("into 3 shards"), "{err}");

    let input_flows: u64 = {
        let stats = flowsched(&["trace", "stats", &input]);
        assert!(stats.status.success());
        flows_of(&String::from_utf8_lossy(&stats.stdout))
    };
    let mut total = 0u64;
    for k in 0..3usize {
        let shard = format!("{prefix}.{k}.jsonl");
        // Every sub-trace must load cleanly and keep the 6x6 switch.
        let stats = flowsched(&["trace", "stats", &shard]);
        assert!(
            stats.status.success(),
            "shard {k} invalid: {}",
            String::from_utf8_lossy(&stats.stderr)
        );
        let text = String::from_utf8_lossy(&stats.stdout).into_owned();
        assert!(text.contains("switch           : 6x6"), "{text}");
        total += flows_of(&text);
        // Round-robin by port: shard k holds only src ports ≡ k (mod 3).
        for line in std::fs::read_to_string(&shard).unwrap().lines().skip(1) {
            let src: u64 = line
                .split("\"src\":")
                .nth(1)
                .and_then(|t| t.split(',').next())
                .and_then(|t| t.trim().parse().ok())
                .unwrap_or_else(|| panic!("unparsable arrival line: {line}"));
            assert_eq!(src as usize % 3, k, "arrival on the wrong shard: {line}");
        }
    }
    assert_eq!(total, input_flows, "split must be a partition");

    // Zero shards is rejected loudly.
    let out = flowsched(&["trace", "split", &input, "--shards", "0", "-o", &prefix]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one shard"));
}

/// Pull the `flows` count out of a `trace stats` dump.
fn flows_of(stats_text: &str) -> u64 {
    stats_text
        .lines()
        .find_map(|l| l.strip_prefix("flows            : "))
        .and_then(|v| v.trim().parse().ok())
        .expect("stats output has a flows line")
}

/// `trace stats` (and friends) fail loudly: nonzero exit and a
/// diagnostic on stderr citing the path or the offending line.
#[test]
fn trace_tools_fail_cleanly() {
    // Missing file: exit code + path in the message.
    let out = flowsched(&["trace", "stats", "/no/such/trace.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/no/such/trace.jsonl"));

    // Malformed trace: the 1-based line is cited.
    let bad = tmp("tools-bad.jsonl");
    std::fs::write(&bad, "{\"ports\":2}\n{\"release\":0,\"src\":9,\"dst\":0}\n").unwrap();
    let out = flowsched(&["trace", "stats", &bad]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("line 2") && err.contains("out of range"),
        "{err}"
    );

    // Extra positional argument.
    let out = flowsched(&["trace", "stats", &bad, "extra"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("exactly one trace path"));

    // Morph without transforms.
    let out = flowsched(&["trace", "morph", &bad, "-o", &tmp("tools-noop.jsonl")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("at least one transform"));

    // Bad skew syntax.
    let out = flowsched(&[
        "trace",
        "morph",
        &bad,
        "--skew",
        "pareto:2",
        "-o",
        &tmp("tools-noop.jsonl"),
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("zipf:THETA"));

    // `bench --stream` is a trace-replay knob, not a general flag.
    let out = flowsched(&["bench", "--stream", "--smoke", "--filter", "fig6"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--stream only applies"));
}

/// The deterministic result lines of a `stream` run (everything the
/// engine computes, nothing wall-clock dependent).
fn stream_results(stdout: &str) -> String {
    stdout
        .lines()
        .filter(|l| {
            [
                "flows ",
                "active rounds",
                "makespan",
                "mean response",
                "max response",
                "peak queue",
            ]
            .iter()
            .any(|p| l.starts_with(p))
        })
        .map(|l| format!("{l}\n"))
        .collect()
}

/// `stream --cores 4 --flight-trace`: tracing is pure observation (the
/// traced run reproduces the untraced results exactly), and the
/// exported Chrome trace carries spans for all four pipeline stages
/// plus channel waits, spread over multiple thread tracks and
/// round-tagged. The `flight` subcommands round-trip the artifacts.
#[test]
fn stream_flight_trace_covers_all_stages_without_steering() {
    let trace = tmp("flight-stream.json");
    let spool = format!("{trace}.spool.jsonl");
    let args = [
        "stream", "--m", "24", "--rate", "30", "--rounds", "120", "--seed", "11", "--mode",
        "maxcard", "--cores", "4",
    ];
    let base = flowsched(&args);
    assert!(
        base.status.success(),
        "{}",
        String::from_utf8_lossy(&base.stderr)
    );

    let mut traced_args: Vec<&str> = args.to_vec();
    traced_args.extend(["--flight-trace", &trace]);
    let traced = flowsched(&traced_args);
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );

    // Bit-identical results: tracing observes, never steers.
    let base_out = String::from_utf8_lossy(&base.stdout);
    let traced_out = String::from_utf8_lossy(&traced.stdout);
    assert_eq!(
        stream_results(&base_out),
        stream_results(&traced_out),
        "flight tracing changed the stream results"
    );
    assert!(traced_out.contains("flight trace     : "), "{traced_out}");

    // The exported trace is structurally valid Chrome JSON with all
    // four stages, channel waits, >= 2 thread tracks, round tags.
    let json = std::fs::read_to_string(&trace).unwrap();
    let check = flow_switch::flight::check_chrome(&json).expect("trace validates");
    for stage in ["ingest", "queue_update", "match_repair", "dispatch"] {
        assert!(
            check.names.get(stage).copied().unwrap_or(0) > 0,
            "no {stage} spans in {:?}",
            check.names
        );
    }
    assert!(
        check.names.get("chan_recv").copied().unwrap_or(0)
            + check.names.get("chan_send").copied().unwrap_or(0)
            > 0,
        "no channel-wait spans: {:?}",
        check.names
    );
    assert!(
        check.tracks >= 2,
        "spans landed on {} track(s)",
        check.tracks
    );
    assert!(check.round_tagged > 0, "no round-tagged spans");

    // `flight check` agrees, `flight stats` reads the spool, and
    // `flight export` regenerates an equally valid trace from it.
    let out = flowsched(&["flight", "check", &trace]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    let out = flowsched(&["flight", "stats", &spool, "--top", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stats.contains("match_repair"), "{stats}");
    assert!(stats.contains("0 watchdog dump(s)"), "{stats}");

    let reexport = tmp("flight-stream-reexport.json");
    let out = flowsched(&["flight", "export", &spool, "-o", &reexport]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json2 = std::fs::read_to_string(&reexport).unwrap();
    let check2 = flow_switch::flight::check_chrome(&json2).expect("re-export validates");
    assert_eq!(check2.spans, check.spans, "export lost spans");
}

/// `FSS_FLIGHT_FAIL_STALL=<round>:<millis>` freezes the driver at that
/// round; with a small `--stall-budget-ms` the watchdog must fire,
/// dump a post-mortem into the spool, and `flight stats` must read it
/// back — the crashed-process debugging path, end to end.
#[test]
fn flight_watchdog_detects_injected_stall() {
    let trace = tmp("flight-stall.json");
    let spool = format!("{trace}.spool.jsonl");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_flowsched"))
        .args([
            "stream",
            "--m",
            "12",
            "--rate",
            "15",
            "--rounds",
            "150",
            "--seed",
            "5",
            "--mode",
            "minrtime",
            "--cores",
            "2",
            "--flight-trace",
            &trace,
            "--stall-budget-ms",
            "60",
        ])
        .env("FSS_FLIGHT_FAIL_STALL", "40:300")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("watchdog: round counter stalled"), "{err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 stall(s)"), "{stdout}");

    let out = flowsched(&["flight", "stats", &spool]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stats.contains("1 watchdog dump(s)"), "{stats}");

    // The injection env is rejected loudly when malformed.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_flowsched"))
        .args([
            "stream",
            "--m",
            "4",
            "--rounds",
            "5",
            "--flight-trace",
            &tmp("flight-bad.json"),
        ])
        .env("FSS_FLIGHT_FAIL_STALL", "garbage")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("FSS_FLIGHT_FAIL_STALL"));
}

/// `serve --flight-trace`: the live session spools spans and the CLI
/// exports the Chrome trace after the session ends — with the dispatch
/// stream byte-identical to an untraced session fed the same trace.
#[test]
fn serve_flight_trace_exports_after_session() {
    let trace = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/sample_trace.jsonl");
    let spec = tmp("serve-flight-spec.json");
    std::fs::write(
        &spec,
        format!(r#"{{"ports": 0, "arrivals": {{"trace": {{"path": "{trace}"}}}}}}"#),
    )
    .unwrap();
    let trace_bytes = std::fs::read(trace).unwrap();

    let untraced = flowsched_with_stdin(&["serve", "--scenario", &spec], &trace_bytes);
    assert!(
        untraced.status.success(),
        "{}",
        String::from_utf8_lossy(&untraced.stderr)
    );

    let flight = tmp("serve-flight.json");
    let traced = flowsched_with_stdin(
        &["serve", "--scenario", &spec, "--flight-trace", &flight],
        &trace_bytes,
    );
    assert!(
        traced.status.success(),
        "{}",
        String::from_utf8_lossy(&traced.stderr)
    );

    let dispatches = |out: &[u8]| -> String {
        String::from_utf8_lossy(out)
            .lines()
            .filter(|l| l.contains("\"kind\":\"Dispatch\""))
            .map(|l| format!("{l}\n"))
            .collect()
    };
    assert_eq!(
        dispatches(&traced.stdout),
        dispatches(&untraced.stdout),
        "flight tracing changed the live dispatch stream"
    );

    let json = std::fs::read_to_string(&flight).unwrap();
    let check = flow_switch::flight::check_chrome(&json).expect("serve trace validates");
    assert!(check.spans > 0, "empty serve trace");
    assert!(
        check.names.contains_key("session"),
        "no session span: {:?}",
        check.names
    );
    assert!(
        String::from_utf8_lossy(&traced.stderr).contains("flight trace"),
        "no export note"
    );

    // --stall-budget-ms is a flight knob; alone it is an error.
    let out = flowsched_with_stdin(&["serve", "--stall-budget-ms", "50"], b"");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("requires --flight-trace"));
}

/// The `flight` subcommands fail loudly on bad input: missing
/// subcommand, unknown subcommand, missing file operand, a spool path
/// that does not exist, and a non-JSON "trace".
#[test]
fn flight_subcommands_fail_cleanly() {
    let out = flowsched(&["flight"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing flight subcommand"));

    let out = flowsched(&["flight", "frobnicate", "x.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flight subcommand"));

    let out = flowsched(&["flight", "stats"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a file argument"));

    let out = flowsched(&["flight", "stats", "/no/such/spool.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("/no/such/spool.jsonl"));

    let bad = tmp("flight-not-json.json");
    std::fs::write(&bad, "this is not a trace\n").unwrap();
    let out = flowsched(&["flight", "check", &bad]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("not JSON"));
}
