//! Giant-trace soak: a ≥10⁷-flow arrival trace generated straight to
//! disk, replayed through `bench --trace --stream`, with peak RSS
//! asserted far below the trace's on-disk size — the O(1)-memory
//! contract of the streaming subsystem, end to end.
//!
//! Ignored by default (it writes ~500 MB and replays ~40M flow
//! dispatches); run it in release mode:
//!
//! ```sh
//! cargo test --release --test giant_trace -- --ignored
//! ```

/// Peak resident set (VmHWM) of this process in bytes, from
/// `/proc/self/status`. `None` off Linux — the replay still runs, only
/// the memory ceiling goes unasserted.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[test]
#[ignore = "paper-scale: ~500 MB trace file and minutes of replay; run with --ignored in release"]
fn ten_million_flow_trace_replays_at_constant_memory() {
    // CARGO_TARGET_TMPDIR lives under target/ — real disk, never a
    // RAM-backed /tmp, so the trace file cannot hide in page cache
    // accounting as anonymous memory.
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("giant-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("giant.jsonl");

    // Poisson(48) on a 64x64 switch for 220k rounds ≈ 10.6M flows,
    // streamed to disk without ever materializing the workload.
    let summary =
        fss_trace::write_poisson_trace(&trace, 64, 48.0, 220_000, 4242).expect("trace generates");
    assert!(
        summary.flows >= 10_000_000,
        "trace must reach paper scale, got {} flows",
        summary.flows
    );
    let file_bytes = std::fs::metadata(&trace).unwrap().len();
    assert!(
        file_bytes > 300 << 20,
        "a 10M-line trace should dwarf any sane memory ceiling, got {file_bytes} bytes"
    );

    // Replay through the real bench path (`bench --trace FILE --stream`):
    // all four policies over the full trace, via the chunked source.
    let reports = fss_bench::run_bench(&fss_bench::BenchOptions {
        trace: Some(trace.clone()),
        stream_trace: true,
        out_dir: dir.clone(),
        ..fss_bench::BenchOptions::default()
    })
    .expect("streaming bench replay succeeds");
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].experiment, "trace_replay");
    assert_eq!(reports[0].cells.len(), 4, "one cell per §5 policy");
    for cell in &reports[0].cells {
        assert_eq!(
            cell.flows, summary.flows,
            "{}: every arrival must be dispatched",
            cell.cell_id
        );
    }

    // The O(1)-memory claim: peak RSS stays far below the trace size.
    // The ceiling is generous (engine state, bench bookkeeping, and the
    // allocator's high-water mark all count), but a loader that slurped
    // the 500 MB file — let alone materialized 10M arrivals — blows it.
    if let Some(peak) = peak_rss_bytes() {
        let ceiling = 256 << 20;
        assert!(
            peak < ceiling,
            "peak RSS {} MiB exceeds the {} MiB ceiling (trace is {} MiB on disk)",
            peak >> 20,
            ceiling >> 20,
            file_bytes >> 20
        );
    }

    std::fs::remove_file(&trace).ok();
}
