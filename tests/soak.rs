//! Soak tests for the live serving path: stream a scenario through a
//! real socket server with an injected outage and a mid-run client
//! disconnect/reconnect, scrape `/metrics`, and strict-diff the live
//! dispatch stream against the single-process `run_scenario` reference.
//!
//! The smoke-scale test runs in CI on every push. The paper-scale soak
//! (over a million flows) is `#[ignore]`d here — debug builds are an
//! order of magnitude too slow for it — and runs in release via
//! `flowsched serve --soak` (see the CI `serve` job and
//! `README.md` §Serving).

use flow_switch::serve::{run_soak, SoakOptions};
use flow_switch::sim::{ArrivalSpec, FailurePlan, Outage, PolicyKind, ScenarioSpec};

fn soak_spec(ports: usize, rate: f64, rounds: u64) -> ScenarioSpec {
    ScenarioSpec {
        ports,
        horizon: Some(rounds),
        arrivals: ArrivalSpec::Poisson { rate },
        failures: Some(FailurePlan {
            outages: vec![
                Outage {
                    side: flow_switch::core::PortSide::Input,
                    port: 1,
                    from: rounds / 10,
                    to: rounds / 4,
                },
                Outage {
                    side: flow_switch::core::PortSide::Output,
                    port: 3,
                    from: rounds / 3,
                    to: rounds / 2,
                },
            ],
        }),
        seed: 42,
    }
}

/// Smoke scale (~10k flows): injected outages, one disconnect mid-run,
/// a live metrics scrape, and exact schedule parity.
#[test]
fn smoke_soak_with_outage_disconnect_and_scrape_holds_parity() {
    let spec = soak_spec(16, 25.0, 400); // ~10k flows
    let opts = SoakOptions {
        disconnect_after: Some(4_000),
        queue_cap: 256,
        scrape_metrics: true,
        ..SoakOptions::new(spec)
    };
    let report = run_soak(&opts).expect("soak holds parity with zero loss");
    assert!(
        report.flows > 8_000,
        "workload is smoke-scale, got {} flows",
        report.flows
    );
    assert_eq!(report.dispatch_lines, report.flows);
    assert_eq!(report.stats.dropped, 0, "pause mode is lossless");
    assert_eq!(report.stats.arrived, report.flows);
    assert_eq!(report.stats.dispatched, report.flows);
    assert!(report.detached_seen, "the disconnect really happened");
    let scrape = report.scrape.expect("metrics scraped mid-run");
    assert!(scrape.contains("fss_serve_flows_ingested_total"));
    assert!(scrape.contains("fss_serve_queue_depth"));
    // Every policy's aggregate stats survive the socket round trip.
    assert!(report.stats.makespan > 0);
}

/// All four §5 policies hold soak parity at smoke scale.
#[test]
fn every_policy_holds_soak_parity() {
    for policy in [
        PolicyKind::MaxCard,
        PolicyKind::MinRTime,
        PolicyKind::MaxWeight,
        PolicyKind::FifoGreedy,
    ] {
        let opts = SoakOptions {
            policy,
            disconnect_after: Some(500),
            queue_cap: 64,
            scrape_metrics: false,
            ..SoakOptions::new(soak_spec(8, 8.0, 150))
        };
        let report = run_soak(&opts).unwrap_or_else(|e| panic!("{policy:?} soak failed: {e}"));
        assert_eq!(report.dispatch_lines, report.flows, "{policy:?}");
    }
}

/// Paper scale: over a million flows through the live server under an
/// injected outage, with a disconnect/reconnect, zero silent loss, and
/// exact parity. Ignored in debug CI runs — execute with
/// `cargo test --release -- --ignored soak_a_million_flows`, or via the
/// release CLI: `flowsched serve --soak ...`.
#[test]
#[ignore = "paper-scale; run in release (see CI serve job for the smoke-scale variant)"]
fn soak_a_million_flows_live_with_zero_silent_loss() {
    let spec = soak_spec(64, 260.0, 4_000); // ~1.04M flows
    let opts = SoakOptions {
        disconnect_after: Some(500_000),
        queue_cap: 4_096,
        scrape_metrics: true,
        ..SoakOptions::new(spec)
    };
    let report = run_soak(&opts).expect("paper-scale soak holds parity");
    assert!(
        report.flows >= 1_000_000,
        "paper scale means at least a million flows, got {}",
        report.flows
    );
    assert_eq!(report.dispatch_lines, report.flows);
    assert_eq!(report.stats.dropped, 0);
    assert!(report.detached_seen);
}
