//! Cross-crate integration tests: the full ART and MRT pipelines against
//! the LP bounds and the exact solver.

use flow_switch::offline::art::{art_lp_lower_bound, solve_art};
use flow_switch::offline::exact::{min_max_response, min_total_response};
use flow_switch::offline::greedy_schedule;
use flow_switch::offline::mrt::{solve_mrt, RoundingEngine};
use flow_switch::prelude::*;
use fss_core::gen::{random_instance, GenParams};
use rand::{rngs::SmallRng, SeedableRng};

#[test]
fn art_pipeline_chain_of_inequalities() {
    // LP bound <= exact optimum <= greedy total; the ART schedule is valid
    // on the scaled switch and its cost is bounded by pseudo + delay.
    let mut rng = SmallRng::seed_from_u64(1001);
    for _ in 0..4 {
        let p = GenParams::unit(3, 9, 3);
        let inst = random_instance(&mut rng, &p);
        let lp = art_lp_lower_bound(&inst, None).unwrap();
        let (opt, _) = min_total_response(&inst);
        let greedy = metrics::evaluate(&inst, &greedy_schedule(&inst)).total_response;
        assert!(lp <= opt as f64 + 1e-6, "LP {lp} > OPT {opt}");
        assert!(opt <= greedy);

        let art = solve_art(&inst, 2);
        validate::check(&inst, &art.schedule, &inst.switch.scaled(3)).unwrap();
        // End-to-end: every flow delayed at most 2h beyond its pseudo round.
        for (i, f) in inst.flows.iter().enumerate() {
            let pseudo_t = art.pseudo.pseudo.round_of(FlowId(i as u32));
            let real_t = art.schedule.round_of(FlowId(i as u32));
            assert!(real_t >= f.release);
            assert!(
                real_t <= pseudo_t + 2 * art.window,
                "flow {i} delayed {real_t} > pseudo {pseudo_t} + 2h"
            );
        }
    }
}

#[test]
fn mrt_pipeline_sandwich() {
    // rho_star (LP) <= exact optimum <= achieved max response on the
    // augmented switch; augmentation within the paper bound.
    let mut rng = SmallRng::seed_from_u64(1002);
    for _ in 0..4 {
        let p = GenParams::unit(3, 8, 4);
        let inst = random_instance(&mut rng, &p);
        let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
        let (opt, _) = min_max_response(&inst);
        assert!(r.rho_star <= opt, "LP rho* {} > OPT {opt}", r.rho_star);
        let m = metrics::evaluate(&inst, &r.schedule);
        assert!(m.max_response <= r.rho_star, "rounding broke the bound");
        assert!(r.augmentation <= 1);
        validate::check(&inst, &r.schedule, &inst.switch.augmented(r.augmentation)).unwrap();
    }
}

#[test]
fn mrt_beck_fiala_engine_also_meets_its_bound() {
    let mut rng = SmallRng::seed_from_u64(1003);
    for _ in 0..3 {
        let p = GenParams {
            m: 3,
            m_out: 3,
            cap: 3,
            n: 10,
            max_demand: 2,
            max_release: 3,
        };
        let inst = random_instance(&mut rng, &p);
        let dmax = inst.dmax();
        let r = solve_mrt(&inst, None, RoundingEngine::BeckFiala).unwrap();
        assert!(
            r.augmentation < 4 * dmax,
            "Beck-Fiala bound < 4*dmax violated: {} vs {}",
            r.augmentation,
            4 * dmax
        );
        validate::check(&inst, &r.schedule, &inst.switch.augmented(r.augmentation)).unwrap();
    }
}

#[test]
fn art_cost_tracks_augmentation_tradeoff() {
    // Larger c (more capacity) should not significantly worsen total
    // response; check it is weakly better in aggregate over seeds.
    let mut rng = SmallRng::seed_from_u64(1004);
    let mut total_c1 = 0u64;
    let mut total_c4 = 0u64;
    for _ in 0..4 {
        let p = GenParams::unit(4, 14, 4);
        let inst = random_instance(&mut rng, &p);
        total_c1 += solve_art(&inst, 1).metrics.total_response;
        total_c4 += solve_art(&inst, 4).metrics.total_response;
    }
    assert!(
        total_c4 <= total_c1 + 8,
        "c = 4 markedly worse than c = 1: {total_c4} vs {total_c1}"
    );
}

#[test]
fn heavy_single_port_contention() {
    // Pathological hotspot: 12 flows through one pair. Everything
    // serializes; all algorithms must agree on the shape.
    let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
    for _ in 0..12 {
        b.unit_flow(0, 0, 0);
    }
    let inst = b.build().unwrap();
    let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
    assert_eq!(r.rho_star, 12);
    let lp = art_lp_lower_bound(&inst, None).unwrap();
    assert!((lp - 72.0).abs() < 1e-4, "k^2/2 = 72 for k = 12, got {lp}");
}
