//! Workspace-wide property tests: every pipeline must uphold its paper
//! guarantee on arbitrary generated instances.

use flow_switch::offline::art::{art_lp_lower_bound, iterative_rounding, solve_art};
use flow_switch::offline::greedy_schedule;
use flow_switch::offline::mrt::{solve_mrt, RoundingEngine};
use flow_switch::online::{run_policy, MaxCard, MaxWeight, MinRTime};
use flow_switch::prelude::*;
use proptest::prelude::*;

/// Strategy: a small unit-demand instance on an `m x m` unit switch.
fn unit_instance() -> impl Strategy<Value = Instance> {
    (2usize..=4, 1usize..=14).prop_flat_map(|(m, n)| {
        let flow = (0..m as u32, 0..m as u32, 0u64..6);
        proptest::collection::vec(flow, n).prop_map(move |flows| {
            let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
            for (s, d, r) in flows {
                b.unit_flow(s, d, r);
            }
            b.build().expect("generated instance is valid")
        })
    })
}

/// Strategy: mixed demands and capacities.
fn general_instance() -> impl Strategy<Value = Instance> {
    (2usize..=3, 1usize..=8, 2u32..=4).prop_flat_map(|(m, n, cap)| {
        let flow = (0..m as u32, 0..m as u32, 1..=cap, 0u64..4);
        proptest::collection::vec(flow, n).prop_map(move |flows| {
            let mut b = InstanceBuilder::new(Switch::uniform(m, m, cap));
            for (s, d, dem, r) in flows {
                b.flow(s, d, dem, r);
            }
            b.build().expect("generated instance is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn greedy_always_feasible(inst in unit_instance()) {
        let s = greedy_schedule(&inst);
        prop_assert!(validate::check(&inst, &s, &inst.switch).is_ok());
    }

    #[test]
    fn lp_bound_below_greedy(inst in unit_instance()) {
        let lp = art_lp_lower_bound(&inst, None).unwrap();
        let greedy = fss_core::metrics::evaluate(&inst, &greedy_schedule(&inst));
        prop_assert!(lp <= greedy.total_response as f64 + 1e-6);
    }

    #[test]
    fn pseudo_schedule_respects_releases_and_logs_overload(inst in unit_instance()) {
        let r = iterative_rounding(&inst);
        for (i, f) in inst.flows.iter().enumerate() {
            prop_assert!(r.pseudo.round_of(FlowId(i as u32)) >= f.release);
        }
        let n = inst.n().max(2);
        let bound = 10 * ((n as f64).log2().ceil() as i64 + 1) + 4;
        prop_assert!(r.pseudo.max_window_overload(&inst) <= bound);
    }

    #[test]
    fn art_schedule_valid_on_scaled_switch(inst in unit_instance()) {
        let res = solve_art(&inst, 1);
        prop_assert!(validate::check(&inst, &res.schedule, &inst.switch.scaled(2)).is_ok());
    }

    #[test]
    fn mrt_schedule_meets_paper_augmentation(inst in general_instance()) {
        let dmax = inst.dmax();
        let r = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).unwrap();
        prop_assert!(r.augmentation < 2 * dmax,
            "augmentation {} > 2*dmax-1 = {}", r.augmentation, 2 * dmax - 1);
        let m = fss_core::metrics::evaluate(&inst, &r.schedule);
        prop_assert!(m.max_response <= r.rho_star);
        prop_assert!(validate::check(
            &inst, &r.schedule, &inst.switch.augmented(r.augmentation)).is_ok());
    }

    #[test]
    fn online_policies_feasible_and_complete(inst in unit_instance()) {
        for sched in [
            run_policy(&inst, &mut MaxCard::default()),
            run_policy(&inst, &mut MinRTime::default()),
            run_policy(&inst, &mut MaxWeight::default()),
        ] {
            prop_assert!(validate::check(&inst, &sched, &inst.switch).is_ok());
            prop_assert_eq!(sched.len(), inst.n());
        }
    }

    #[test]
    fn serde_round_trips(inst in general_instance()) {
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&inst, &back);
        let sched = greedy_schedule(&inst);
        let sj = serde_json::to_string(&sched).unwrap();
        let sback: Schedule = serde_json::from_str(&sj).unwrap();
        prop_assert_eq!(sched, sback);
    }
}
