//! End-to-end tests of the distributed sharded bench runner, driving
//! real `flowsched bench-worker` child processes through the
//! coordinator.
//!
//! These pin down the subsystem's two contracts:
//!
//! 1. **Differential**: the artifact merged from multiple worker
//!    processes — including one whose worker crashed mid-run and had
//!    its cells reassigned — is cell-for-cell equal (modulo timing
//!    fields) to the single-process orchestrator's output.
//! 2. **Resume**: after a simulated crash, `--resume` re-executes only
//!    the cells missing from the checkpoint, counted by executed
//!    fingerprints, and tolerates the truncated final line a crash
//!    mid-append leaves behind.

use std::collections::HashSet;
use std::path::PathBuf;

use fss_bench::{
    flatten, run_bench, scale_of, select_experiments, BenchOptions, CELLS_STREAM_NAME,
};
use fss_dist::{run_dist, DistOptions};
use fss_sim::report::{bench_report_from_json, read_cells_jsonl, reports_eq_modulo_timing};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("fss-dist-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The workload under test: smoke-scale fig6 at one trial — 33 cells
/// mixing engine heuristics and LP bounds, all sub-second.
fn bench_opts(out_dir: PathBuf) -> BenchOptions {
    BenchOptions {
        filter: Some("fig6".into()),
        smoke: true,
        trials: Some(1),
        out_dir,
        ..BenchOptions::default()
    }
}

fn dist_opts(out_dir: PathBuf, workers: usize) -> DistOptions {
    DistOptions {
        bench: bench_opts(out_dir),
        workers,
        resume: false,
        worker_cmd: vec![
            env!("CARGO_BIN_EXE_flowsched").to_string(),
            "bench-worker".to_string(),
        ],
        fail_worker: None,
        heartbeat_ms: None,
        slow_worker: None,
        flight_trace: None,
    }
}

/// Cell count of the workload (from the same expansion the runners
/// use).
fn universe_size() -> usize {
    let opts = bench_opts(std::env::temp_dir());
    let selected = select_experiments(&opts).unwrap();
    flatten(&selected, &scale_of(&opts)).unwrap().len()
}

/// Distinct fingerprints currently checkpointed in `dir`'s stream.
fn stream_fingerprints(dir: &std::path::Path) -> Vec<String> {
    let replay = read_cells_jsonl(&dir.join(CELLS_STREAM_NAME)).expect("readable stream");
    replay.cells.iter().map(|c| c.fingerprint.clone()).collect()
}

#[test]
fn multi_worker_merged_artifact_equals_single_process_run() {
    let ref_dir = tmp_dir("differential-ref");
    let reference = run_bench(&bench_opts(ref_dir.clone())).expect("single-process run");

    let dist_dir = tmp_dir("differential-dist");
    let summary = run_dist(&dist_opts(dist_dir.clone(), 3)).expect("sharded run");
    assert_eq!(summary.workers_spawned, 3);
    assert_eq!(summary.workers_lost, 0);
    assert_eq!(summary.skipped, 0);
    assert_eq!(summary.executed, universe_size());

    // In-memory reports match modulo timing...
    assert_eq!(reference.len(), summary.reports.len());
    for (a, b) in reference.iter().zip(&summary.reports) {
        assert!(
            reports_eq_modulo_timing(a, b),
            "sharded report for {} diverged from the single-process run",
            a.experiment
        );
    }
    // ...and so do the persisted, schema-validated artifacts.
    let read = |dir: &std::path::Path| {
        let text = std::fs::read_to_string(dir.join("BENCH_fig6.json")).expect("artifact");
        bench_report_from_json(&text).expect("schema-valid artifact")
    };
    assert!(reports_eq_modulo_timing(&read(&ref_dir), &read(&dist_dir)));

    // The checkpoint stream covers the whole universe exactly once.
    let fps = stream_fingerprints(&dist_dir);
    assert_eq!(fps.len(), universe_size());
    assert_eq!(fps.iter().collect::<HashSet<_>>().len(), fps.len());
}

#[test]
fn worker_crash_mid_run_reassigns_to_survivors_without_changing_results() {
    let ref_dir = tmp_dir("crash-ref");
    let reference = run_bench(&bench_opts(ref_dir)).expect("single-process run");

    let dist_dir = tmp_dir("crash-dist");
    let mut opts = dist_opts(dist_dir, 2);
    opts.fail_worker = Some((0, 2)); // worker 0 dies after 2 results
    let summary = run_dist(&opts).expect("survivor finishes the run");
    assert_eq!(summary.workers_lost, 1);
    assert!(
        summary.reassigned > 0,
        "the dead worker's shard must be re-dealt"
    );
    assert_eq!(summary.executed, universe_size());
    for (a, b) in reference.iter().zip(&summary.reports) {
        assert!(reports_eq_modulo_timing(a, b));
    }
}

#[test]
fn stalled_but_heartbeating_worker_keeps_its_cells() {
    // The fault model is pipe-EOF only: heartbeats are context, never a
    // failure detector. A worker that is painfully slow but still alive
    // (here: injected 150ms sleep per cell, against a 20ms heartbeat
    // interval, on the 3-cell table_gaps workload) must keep its shard —
    // nothing re-dealt, nobody declared lost — while its sequenced
    // heartbeats stream in.
    let dir = tmp_dir("stalled");
    let mut opts = dist_opts(dir, 2);
    opts.bench.filter = Some("table_gaps".into());
    opts.heartbeat_ms = Some(20);
    opts.slow_worker = Some((0, 150));
    let total = {
        let selected = select_experiments(&opts.bench).unwrap();
        flatten(&selected, &scale_of(&opts.bench)).unwrap().len()
    };
    let summary = run_dist(&opts).expect("slow worker still finishes");
    assert_eq!(summary.executed, total);
    assert_eq!(summary.workers_lost, 0, "slow is not dead");
    assert_eq!(
        summary.reassigned, 0,
        "a stalled-but-heartbeating worker must not have its cells re-dealt"
    );
    assert!(
        summary.heartbeats > 0,
        "150ms/cell at a 20ms interval must produce heartbeats"
    );
    assert!(
        summary.max_heartbeat_seq >= 2,
        "heartbeat payloads carry increasing sequence numbers, saw max {}",
        summary.max_heartbeat_seq
    );
}

#[test]
fn instrumented_dist_run_carries_telemetry_and_matches_uninstrumented() {
    // Reference: an *uninstrumented* single-process run. The
    // instrumented sharded run must produce the same cells modulo
    // timing — telemetry observes, it never steers.
    let ref_dir = tmp_dir("telemetry-ref");
    let reference = run_bench(&bench_opts(ref_dir)).expect("single-process run");

    let dist_dir = tmp_dir("telemetry-dist");
    let mut opts = dist_opts(dist_dir.clone(), 2);
    opts.bench.progress = true;
    let summary = run_dist(&opts).expect("instrumented sharded run");
    for (a, b) in reference.iter().zip(&summary.reports) {
        assert!(
            reports_eq_modulo_timing(a, b),
            "instrumentation changed the schedule for {}",
            a.experiment
        );
    }

    // The run-level merge has real content: engine stage timings and
    // decision-latency quantiles from the heuristic cells.
    assert!(!summary.telemetry.is_empty());
    assert!(summary.telemetry.slowest_stage().is_some());
    let histo = summary
        .telemetry
        .histo("decision_latency_ns")
        .expect("decision latency histogram");
    assert!(histo.count > 0);

    // And the persisted artifact carries per-cell snapshots for the
    // engine-routed cells (LP bound cells legitimately have none).
    let text = std::fs::read_to_string(dist_dir.join("BENCH_fig6.json")).expect("artifact");
    let report = bench_report_from_json(&text).expect("schema-valid artifact");
    let engine_cells = report
        .cells
        .iter()
        .filter(|c| c.engine_mode == "engine")
        .count();
    let instrumented = report
        .cells
        .iter()
        .filter(|c| c.telemetry.is_some())
        .count();
    assert!(engine_cells > 0);
    assert_eq!(
        instrumented, engine_cells,
        "every engine-routed cell carries its telemetry snapshot"
    );
}

#[test]
fn flighted_dist_run_merges_worker_traces_without_changing_results() {
    // Reference: an untraced single-process run. The flighted sharded
    // run must produce identical cells modulo timing — tracing
    // observes, it never steers.
    let ref_dir = tmp_dir("flight-ref");
    let reference = run_bench(&bench_opts(ref_dir)).expect("single-process run");

    let dist_dir = tmp_dir("flight-dist");
    let trace_path = dist_dir.join("DIST_trace.json");
    let mut opts = dist_opts(dist_dir.clone(), 2);
    opts.flight_trace = Some(trace_path.clone());
    let summary = run_dist(&opts).expect("flighted sharded run");
    for (a, b) in reference.iter().zip(&summary.reports) {
        assert!(
            reports_eq_modulo_timing(a, b),
            "flight tracing changed the schedule for {}",
            a.experiment
        );
    }

    // Both workers spooled locally and the coordinator merged their
    // traces: one Cell span per executed cell, tracks prefixed w<id>/.
    assert_eq!(summary.flight_trace.as_deref(), Some(trace_path.as_path()));
    assert_eq!(summary.flight_spans, universe_size() as u64);
    assert_eq!(summary.flight_dropped, 0);
    for w in 0..2 {
        let spool = dist_dir.join("flight").join(format!("w{w}.spool.jsonl"));
        assert!(spool.exists(), "worker {w} left its spool behind");
    }
    let json = std::fs::read_to_string(&trace_path).expect("merged trace artifact");
    let check = fss_flight::check_chrome(&json).expect("merged trace is valid Chrome JSON");
    assert_eq!(*check.names.get("cell").unwrap_or(&0), universe_size());
    assert!(
        json.contains("w0/cells") && json.contains("w1/cells"),
        "merged tracks are prefixed with the worker id"
    );
}

#[test]
fn resume_after_crash_executes_only_missing_cells() {
    let total = universe_size();
    let dir = tmp_dir("resume");

    // A lone worker crashes after 2 cells: the run fails, pointing at
    // --resume, with exactly those 2 cells checkpointed.
    let mut crashing = dist_opts(dir.clone(), 1);
    crashing.fail_worker = Some((0, 2));
    let err = run_dist(&crashing).expect_err("no survivors");
    assert!(err.contains("--resume"), "{err}");
    let checkpointed = stream_fingerprints(&dir);
    assert_eq!(checkpointed.len(), 2);

    // Simulate the coordinator itself dying mid-append: a truncated
    // final line. Resume must skip it, not choke on it.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(CELLS_STREAM_NAME))
            .unwrap();
        write!(f, "{{\"cell_id\":\"fig6/trunc").unwrap();
    }

    // Resume with two workers: exactly the missing cells execute.
    let mut resuming = dist_opts(dir.clone(), 2);
    resuming.resume = true;
    let summary = run_dist(&resuming).expect("resumed run completes");
    assert_eq!(summary.total_cells, total);
    assert_eq!(summary.skipped, 2, "checkpointed cells are not re-executed");
    assert_eq!(summary.executed, total - 2, "only missing cells execute");

    // The merged stream now covers the universe exactly once, and the
    // checkpointed fingerprints were reused, not recomputed.
    let fps = stream_fingerprints(&dir);
    assert_eq!(fps.len(), total);
    let unique: HashSet<&String> = fps.iter().collect();
    assert_eq!(unique.len(), total);
    for fp in &checkpointed {
        assert!(unique.contains(fp));
    }

    // And the resumed artifact still matches a single-process run.
    let ref_dir = tmp_dir("resume-ref");
    let reference = run_bench(&bench_opts(ref_dir)).expect("single-process run");
    for (a, b) in reference.iter().zip(&summary.reports) {
        assert!(reports_eq_modulo_timing(a, b));
    }
}

#[test]
fn resume_with_complete_checkpoint_spawns_no_workers() {
    let dir = tmp_dir("resume-noop");
    run_dist(&dist_opts(dir.clone(), 2)).expect("initial run");
    let mut resuming = dist_opts(dir.clone(), 2);
    resuming.resume = true;
    let summary = run_dist(&resuming).expect("no-op resume");
    assert_eq!(summary.skipped, universe_size());
    assert_eq!(summary.executed, 0);
    assert_eq!(summary.workers_spawned, 0);
    assert!(!summary.reports.is_empty());
}

#[test]
fn fresh_run_without_resume_truncates_a_stale_checkpoint() {
    let dir = tmp_dir("fresh");
    run_dist(&dist_opts(dir.clone(), 2)).expect("first run");
    let first = stream_fingerprints(&dir);
    run_dist(&dist_opts(dir.clone(), 2)).expect("second run, no --resume");
    let second = stream_fingerprints(&dir);
    assert_eq!(
        first.len(),
        second.len(),
        "a non-resume run starts its checkpoint from scratch"
    );
}
