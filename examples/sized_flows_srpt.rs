//! Preemptive sized flows (extension): flows that need multiple rounds of
//! service, scheduled by SRPT-style and oldest-first matchings — the
//! switch analog of the single-machine flow-time trade-off the paper's
//! related-work section surveys (§1.2), plus a port-failure scenario.
//!
//! ```sh
//! cargo run --release --example sized_flows_srpt
//! ```

use flow_switch::online::{
    run_preemptive, OldestFirstMatching, SizedFlow, SizedInstance, SrptMatching,
};
use flow_switch::prelude::*;
use flow_switch::sim::{run_policy_with_failures, FailurePlan, Outage};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn main() {
    // ---- Part 1: sized flows, SRPT vs oldest-first --------------------
    let mut rng = SmallRng::seed_from_u64(0x51ed);
    let m = 5usize;
    let mut flows = Vec::new();
    for t in 0..12u64 {
        // A mix of mice (size 1) and elephants (size 4-8).
        for _ in 0..2 {
            let size = if rng.gen_bool(0.75) {
                1
            } else {
                rng.gen_range(4..=8)
            };
            flows.push(SizedFlow {
                src: rng.gen_range(0..m as u32),
                dst: rng.gen_range(0..m as u32),
                release: t,
                size,
            });
        }
    }
    let inst = SizedInstance::new(Switch::uniform(m, m, 1), flows);
    println!(
        "sized workload: {} flows, {} total service units on a {m}x{m} switch\n",
        inst.n(),
        inst.total_size()
    );
    let srpt = run_preemptive(&inst, &mut SrptMatching);
    let oldest = run_preemptive(&inst, &mut OldestFirstMatching);
    println!(
        "SRPT        total response {:>4}  mean {:>6.2}  max {:>3}",
        srpt.total_response,
        srpt.total_response as f64 / inst.n() as f64,
        srpt.max_response
    );
    println!(
        "OldestFirst total response {:>4}  mean {:>6.2}  max {:>3}",
        oldest.total_response,
        oldest.total_response as f64 / inst.n() as f64,
        oldest.max_response
    );
    println!("(SRPT favors the mice and the mean; oldest-first favors the tail.)\n");

    // ---- Part 2: failure injection -------------------------------------
    let mut b = InstanceBuilder::new(Switch::uniform(4, 4, 1));
    let mut rng = SmallRng::seed_from_u64(0xfa11);
    for t in 0..10u64 {
        for _ in 0..3 {
            b.unit_flow(rng.gen_range(0..4), rng.gen_range(0..4), t);
        }
    }
    let unit_inst = b.build().unwrap();
    let plan = FailurePlan {
        outages: vec![
            Outage {
                side: PortSide::Input,
                port: 0,
                from: 2,
                to: 8,
            },
            Outage {
                side: PortSide::Output,
                port: 3,
                from: 5,
                to: 12,
            },
        ],
    };
    let healthy =
        flow_switch::online::run_policy(&unit_inst, &mut flow_switch::online::MaxWeight::default());
    let degraded = run_policy_with_failures(
        &unit_inst,
        &mut flow_switch::online::MaxWeight::default(),
        &plan,
    );
    let hm = metrics::evaluate(&unit_inst, &healthy);
    let dm = metrics::evaluate(&unit_inst, &degraded);
    println!("failure injection (input 0 down rounds 2-7, output 3 down 5-11):");
    println!(
        "  healthy : mean {:.2}  max {}",
        hm.mean_response, hm.max_response
    );
    println!(
        "  degraded: mean {:.2}  max {}",
        dm.mean_response, dm.max_response
    );
    validate::check(&unit_inst, &degraded, &unit_inst.switch).expect("still feasible");
    println!("  degraded schedule remains feasible; affected flows wait out the outage.");
}
