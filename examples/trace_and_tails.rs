//! Trace recording and tail-latency analysis (extensions on top of the
//! paper's mean/max metrics): run two heuristics on the same Poisson
//! workload, record execution traces, and compare their response-time
//! distributions — p50/p95/p99, histogram, and queue dynamics.
//!
//! ```sh
//! cargo run --release --example trace_and_tails
//! ```

use flow_switch::online::{MaxCard, MinRTime};
use flow_switch::prelude::*;
use flow_switch::sim::stats::queue_length_trace;
use flow_switch::sim::{
    poisson_workload, response_histogram, response_percentiles, run_policy_traced, WorkloadParams,
};
use rand::{rngs::SmallRng, SeedableRng};

fn main() {
    let mut rng = SmallRng::seed_from_u64(0x7a11);
    let params = WorkloadParams {
        m: 12,
        mean_arrivals: 13.0,
        rounds: 30,
    };
    let inst = poisson_workload(&mut rng, &params);
    println!(
        "workload: {} flows over {} rounds on a {}x{} switch (lambda ~ {:.2})\n",
        inst.n(),
        params.rounds,
        params.m,
        params.m,
        params.mean_arrivals / params.m as f64
    );

    let (sched_mc, trace_mc) = run_policy_traced(&inst, &mut MaxCard::default());
    let (sched_mr, trace_mr) = run_policy_traced(&inst, &mut MinRTime::default());

    for (name, sched) in [("MaxCard", &sched_mc), ("MinRTime", &sched_mr)] {
        validate::check(&inst, sched, &inst.switch).expect("feasible");
        let p = response_percentiles(&inst, sched);
        println!(
            "{name:<9} mean {:.2}  p50 {}  p95 {}  p99 {}  max {}",
            p.mean, p.p50, p.p95, p.p99, p.max
        );
    }

    // Histogram comparison: MinRTime should compress the tail.
    println!("\nresponse-time histogram (count per response value):");
    let h_mc = response_histogram(&inst, &sched_mc);
    let h_mr = response_histogram(&inst, &sched_mr);
    let len = h_mc.len().max(h_mr.len());
    println!("{:>5} {:>9} {:>9}", "rho", "MaxCard", "MinRTime");
    for r in 0..len.min(12) {
        println!(
            "{:>5} {:>9} {:>9}",
            r + 1,
            h_mc.get(r).copied().unwrap_or(0),
            h_mr.get(r).copied().unwrap_or(0)
        );
    }
    if len > 12 {
        let tail_mc: u64 = h_mc.iter().skip(12).sum();
        let tail_mr: u64 = h_mr.iter().skip(12).sum();
        println!("{:>5} {tail_mc:>9} {tail_mr:>9}", ">12");
    }

    // Queue dynamics from the traces.
    let q_mc = queue_length_trace(&inst, &sched_mc);
    let peak_mc = q_mc.iter().max().copied().unwrap_or(0);
    let q_mr = queue_length_trace(&inst, &sched_mr);
    let peak_mr = q_mr.iter().max().copied().unwrap_or(0);
    println!("\npeak queue length: MaxCard {peak_mc}, MinRTime {peak_mr}");

    // Traces round-trip through JSON lines; show the first few records.
    let jsonl = trace_mc.to_jsonl();
    println!("\nfirst trace records (JSON lines):");
    for line in jsonl.lines().take(4) {
        println!("  {line}");
    }
    let restored = flow_switch::sim::Trace::from_jsonl(&jsonl).expect("parse");
    let replayed = restored
        .to_schedule(inst.n())
        .expect("round-tripped trace covers every flow");
    assert_eq!(replayed, sched_mc);
    println!("trace replay reproduces the schedule exactly.");
    let _ = trace_mr;
}
