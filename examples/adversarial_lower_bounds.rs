//! The online lower-bound constructions of §5.1, executed.
//!
//! * Figure 4(a) / Lemma 5.1: a stream that makes every online algorithm's
//!   *average* response time unboundedly worse than the offline optimum;
//! * Figure 4(b) / Lemma 5.2: a six-flow gadget where the offline optimum
//!   has maximum response 2 but any online algorithm is forced to 3.
//!
//! ```sh
//! cargo run --release --example adversarial_lower_bounds
//! ```

use flow_switch::offline::exact::min_max_response;
use flow_switch::offline::hardness::{figure_4a, figure_4b};
use flow_switch::online::{run_policy, MaxCard, MaxWeight, MinRTime};
use flow_switch::prelude::*;

fn main() {
    // ---- Figure 4(b): the 3/2 gadget ---------------------------------
    let inst = figure_4b();
    let (opt, _) = min_max_response(&inst);
    println!("Figure 4(b): offline optimal max response = {opt} (Lemma 5.2 says 2)");
    for (name, sched) in [
        ("MaxCard", run_policy(&inst, &mut MaxCard::default())),
        ("MinRTime", run_policy(&inst, &mut MinRTime::default())),
        ("MaxWeight", run_policy(&inst, &mut MaxWeight::default())),
    ] {
        let m = metrics::evaluate(&inst, &sched);
        println!("  {name:<10} online max response = {}", m.max_response);
    }
    println!("  (any online algorithm can be forced to 3; the offline bound is 2)\n");

    // ---- Figure 4(a): unbounded average-response ratio ----------------
    for (t, m_rounds) in [(10u64, 60u64), (20, 200)] {
        let inst = figure_4a(t, m_rounds);
        println!(
            "Figure 4(a) with T = {t}, M = {m_rounds}: {} flows",
            inst.n()
        );
        for (name, sched) in [
            ("MaxCard", run_policy(&inst, &mut MaxCard::default())),
            ("MinRTime", run_policy(&inst, &mut MinRTime::default())),
            ("MaxWeight", run_policy(&inst, &mut MaxWeight::default())),
        ] {
            let m = metrics::evaluate(&inst, &sched);
            println!(
                "  {name:<10} total response = {:>5}  avg = {:.2}",
                m.total_response, m.mean_response
            );
        }
        // The offline strategy of Lemma 5.1: all (1,3) flows first, then
        // (1,2) backlog in parallel with the dashed (4,3) stream.
        let offline = lemma_5_1_offline(&inst, t);
        validate::check(&inst, &offline, &inst.switch).expect("offline schedule feasible");
        let m = metrics::evaluate(&inst, &offline);
        println!(
            "  {:<10} total response = {:>5}  avg = {:.2}  (offline strategy)",
            "Offline", m.total_response, m.mean_response
        );
        println!();
    }
    println!("As M grows with T fixed, the online/offline ratio grows without bound.");
}

/// The offline schedule from the Lemma 5.1 proof. Flow layout of
/// `figure_4a(t, m)`: for each round `r < t` a (0,0)-flow then a
/// (0,1)-flow; afterwards one (1,1)-flow per round.
fn lemma_5_1_offline(inst: &Instance, t_rounds: u64) -> Schedule {
    let mut rounds = vec![0u64; inst.n()];
    let mut k = 0usize;
    for r in 0..t_rounds {
        // (0,0) flow: delayed until after the solid phase.
        rounds[k] = t_rounds + r;
        k += 1;
        // (0,1) flow: run immediately.
        rounds[k] = r;
        k += 1;
    }
    // Dashed (1,1) flows: run on arrival (parallel with the (0,0) backlog).
    while k < inst.n() {
        rounds[k] = inst.flows[k].release;
        k += 1;
    }
    Schedule::from_rounds(rounds)
}
