//! Co-flow scheduling (the paper's §6 generalization): MapReduce-style
//! shuffle stages on a switch, scheduled by SEBF / FIFO / fair sharing and
//! compared against the bottleneck lower bound.
//!
//! ```sh
//! cargo run --release --example coflow_shuffle
//! ```

use flow_switch::coflow::instance::CoflowBuilder;
use flow_switch::coflow::{bottleneck_lower_bound, evaluate, schedule_coflows, CoflowOrdering};
use flow_switch::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn main() {
    // A 6x6 aggregation fabric; three shuffle stages arrive over time:
    // a tiny interactive query, a medium join, and a bulk ETL stage.
    let mut rng = SmallRng::seed_from_u64(0xc0f1);
    let mut b = CoflowBuilder::new(Switch::uniform(6, 6, 1));

    b.coflow(0); // bulk ETL: all-to-all-ish, 18 flows
    for _ in 0..18 {
        b.flow(rng.gen_range(0..6), rng.gen_range(0..6), 1);
    }
    b.coflow(1); // medium join: 6 flows
    for _ in 0..6 {
        b.flow(rng.gen_range(0..6), rng.gen_range(0..6), 1);
    }
    b.coflow(2); // interactive query: 2 flows
    for _ in 0..2 {
        b.flow(rng.gen_range(0..6), rng.gen_range(0..6), 1);
    }
    let ci = b.build().expect("valid co-flow instance");

    let (total_lb, max_lb) = bottleneck_lower_bound(&ci);
    println!(
        "{} co-flows, {} flows; bottleneck bounds: total >= {total_lb}, max >= {max_lb}\n",
        ci.num_coflows,
        ci.inst.n()
    );
    println!(
        "{:<6} {:>14} {:>13} {:>13}",
        "order", "total response", "mean response", "max response"
    );
    for o in [
        CoflowOrdering::Sebf,
        CoflowOrdering::Fifo,
        CoflowOrdering::Fair,
    ] {
        let sched = schedule_coflows(&ci, o);
        validate::check(&ci.inst, &sched, &ci.inst.switch).expect("feasible");
        let m = evaluate(&ci, &sched);
        println!(
            "{:<6} {:>14} {:>13.2} {:>13}",
            o.name(),
            m.total_response,
            m.mean_response,
            m.max_response
        );
    }
    println!("\nExpected shape: SEBF minimizes total (small co-flows first);");
    println!("FIFO keeps the maximum low; Fair sits between.");
}
