//! Datacenter-scale online scheduling: the paper's §5.2 experiment in
//! miniature. Generates Poisson workloads on a unit-capacity switch,
//! races the three heuristics, and prints a Figure 6/7-style table.
//!
//! ```sh
//! cargo run --release --example datacenter_online            # 30x30 demo
//! cargo run --release --example datacenter_online -- 150 10  # paper scale
//! ```
//!
//! Args: `[switch_size] [trials]`.

use flow_switch::sim::{run_grid, ExperimentConfig, PolicyKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let trials: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    // Arrival rates proportional to the paper's M in {50,...,600} at 150
    // ports: M = m/3, 2m/3, m, 2m, 4m.
    let f = m as f64;
    let cfg = ExperimentConfig {
        m,
        m_values: vec![f / 3.0, 2.0 * f / 3.0, f, 2.0 * f, 4.0 * f],
        t_values: vec![10, 20, 40],
        trials,
        seed: 0xda7a,
        policies: vec![
            PolicyKind::MaxCard,
            PolicyKind::MinRTime,
            PolicyKind::MaxWeight,
            PolicyKind::FifoGreedy,
        ],
    };
    println!(
        "switch {m}x{m}, arrival rates {:?}, {} trials/cell\n",
        cfg.m_values, trials
    );
    let cells = run_grid(&cfg);

    for &ma in &cfg.m_values {
        println!(
            "{}",
            flow_switch::sim::report::figure_table(&cells, &[], ma, false)
        );
        println!(
            "{}",
            flow_switch::sim::report::figure_table(&cells, &[], ma, true)
        );
    }

    // The paper's qualitative conclusions, restated from the data:
    let pick = |p: PolicyKind, use_max: bool| -> f64 {
        cells
            .iter()
            .filter(|c| c.policy == p)
            .map(|c| {
                if use_max {
                    c.max_response
                } else {
                    c.avg_response
                }
            })
            .sum::<f64>()
    };
    println!(
        "aggregate avg-response: MaxCard {:.1}  MinRTime {:.1}  MaxWeight {:.1}",
        pick(PolicyKind::MaxCard, false),
        pick(PolicyKind::MinRTime, false),
        pick(PolicyKind::MaxWeight, false)
    );
    println!(
        "aggregate max-response: MaxCard {:.1}  MinRTime {:.1}  MaxWeight {:.1}",
        pick(PolicyKind::MaxCard, true),
        pick(PolicyKind::MinRTime, true),
        pick(PolicyKind::MaxWeight, true)
    );
}
