//! Deadline-constrained flow scheduling (Remark 4.2): each flow has a
//! release round and a hard deadline; Theorem 3 either certifies
//! infeasibility or schedules everything with at most `2·dmax − 1` extra
//! units of port capacity.
//!
//! The scenario: a storage backup fabric where bulk transfers must finish
//! inside maintenance windows.
//!
//! ```sh
//! cargo run --release --example offline_mrt_deadlines
//! ```

use flow_switch::offline::mrt::{round_time_constrained, RoundingEngine, TimeConstrained};
use flow_switch::prelude::*;

fn main() {
    // 3 racks -> 2 backup targets; ports carry up to 4 demand units/round.
    let mut b = InstanceBuilder::new(Switch::new(vec![4, 4, 4], vec![4, 4]));
    // (src, dst, demand, release, deadline): bulky transfers with windows.
    let spec: &[(u32, u32, u32, u64, u64)] = &[
        (0, 0, 3, 0, 2),
        (0, 1, 2, 0, 3),
        (1, 0, 4, 1, 4),
        (1, 1, 2, 0, 1),
        (2, 0, 2, 2, 5),
        (2, 1, 4, 2, 4),
        (0, 0, 2, 3, 6),
        (1, 1, 3, 4, 6),
    ];
    let mut deadlines = Vec::new();
    for &(s, d, dem, r, dl) in spec {
        b.flow(s, d, dem, r);
        deadlines.push(dl);
    }
    let inst = b.build().expect("valid instance");
    let dmax = inst.dmax();
    println!("{} transfers, dmax = {dmax}", inst.n());

    let tc = TimeConstrained::from_deadlines(&inst, &deadlines);
    match round_time_constrained(&tc, RoundingEngine::IterativeRelaxation).expect("solver") {
        None => println!("infeasible: no schedule meets every deadline (LP certificate)"),
        Some(res) => {
            println!(
                "scheduled with +{} port capacity (Theorem 3 bound: {})",
                res.augmentation,
                2 * dmax - 1
            );
            for (i, &(s, d, dem, r, dl)) in spec.iter().enumerate() {
                let t = res.schedule.round_of(FlowId(i as u32));
                println!(
                    "  transfer {i}: {s}->{d} demand {dem} window [{r}, {dl}] runs at round {t}"
                );
                assert!(t >= r && t <= dl, "deadline respected");
            }
            validate::check(
                &inst,
                &res.schedule,
                &inst.switch.augmented(res.augmentation),
            )
            .expect("feasible on augmented switch");
        }
    }

    // Tighten the deadlines until infeasible to show the certificate path.
    let tight: Vec<u64> = deadlines.iter().map(|&d| d.saturating_sub(3)).collect();
    let tight: Vec<u64> = inst
        .flows
        .iter()
        .zip(&tight)
        .map(|(f, &d)| d.max(f.release))
        .collect();
    let tc2 = TimeConstrained::from_deadlines(&inst, &tight);
    match round_time_constrained(&tc2, RoundingEngine::IterativeRelaxation).expect("solver") {
        None => println!("\ntightened deadlines: correctly reported infeasible"),
        Some(res) => println!(
            "\ntightened deadlines: still feasible with +{} capacity",
            res.augmentation
        ),
    }
}
