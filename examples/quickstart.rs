//! Quickstart: build a small switch instance and run everything on it —
//! the greedy baseline, the three online heuristics, the FS-MRT offline
//! solver (Theorem 3), and the FS-ART pipeline (Theorem 1).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flow_switch::offline::art::{art_lp_lower_bound, solve_art};
use flow_switch::offline::greedy_schedule;
use flow_switch::offline::mrt::{solve_mrt, RoundingEngine};
use flow_switch::online::{run_policy, MaxCard, MaxWeight, MinRTime};
use flow_switch::prelude::*;

fn main() {
    // A 4x4 unit-capacity switch and a bursty set of unit flows.
    let mut b = InstanceBuilder::new(Switch::uniform(4, 4, 1));
    // A hotspot: input 0 sends to every output at round 0.
    for q in 0..4 {
        b.unit_flow(0, q, 0);
    }
    // Cross traffic arriving over time.
    b.unit_flow(1, 0, 0);
    b.unit_flow(2, 1, 1);
    b.unit_flow(3, 2, 1);
    b.unit_flow(1, 3, 2);
    b.unit_flow(2, 0, 2);
    b.unit_flow(3, 1, 3);
    let inst = b.build().expect("valid instance");
    println!("instance: {} flows on a 4x4 unit switch", inst.n());

    // Fractional lower bound on total response time (Lemma 3.1).
    let lp = art_lp_lower_bound(&inst, None).expect("LP solve");
    println!("LP (1)-(4) lower bound on total response: {lp:.2}");

    // Greedy baseline.
    let g = greedy_schedule(&inst);
    let gm = metrics::evaluate(&inst, &g);
    println!(
        "greedy      : total {:>3}  avg {:.2}  max {}",
        gm.total_response, gm.mean_response, gm.max_response
    );

    // Online heuristics (paper §5.2).
    for (name, sched) in [
        ("MaxCard", run_policy(&inst, &mut MaxCard::default())),
        ("MinRTime", run_policy(&inst, &mut MinRTime::default())),
        ("MaxWeight", run_policy(&inst, &mut MaxWeight::default())),
    ] {
        let m = metrics::evaluate(&inst, &sched);
        println!(
            "{name:<12}: total {:>3}  avg {:.2}  max {}",
            m.total_response, m.mean_response, m.max_response
        );
    }

    // Offline FS-MRT (Theorem 3): optimal response bound with <= 2*dmax-1
    // extra capacity per port.
    let mrt = solve_mrt(&inst, None, RoundingEngine::IterativeRelaxation).expect("solve");
    println!(
        "FS-MRT      : rho* = {} with +{} port capacity",
        mrt.rho_star, mrt.augmentation
    );
    validate::check(
        &inst,
        &mrt.schedule,
        &inst.switch.augmented(mrt.augmentation),
    )
    .expect("schedule feasible on augmented switch");

    // Offline FS-ART (Theorem 1): average response within 1 + O(log n)/c
    // of optimal under a (1+c) capacity blow-up.
    for c in [1, 2] {
        let art = solve_art(&inst, c);
        println!(
            "FS-ART c={c}  : total {:>3}  avg {:.2} on a {}x capacity switch (window h = {})",
            art.metrics.total_response, art.metrics.mean_response, art.capacity_factor, art.window
        );
        validate::check(&inst, &art.schedule, &inst.switch.scaled(1 + c))
            .expect("schedule feasible on scaled switch");
    }
}
