//! In-tree shim for the subset of the `criterion` API this workspace uses.
//!
//! Benchmarks run for real (warmup + timed samples over wall clock) and
//! print `min / median / mean` per iteration to stdout — no plots, no
//! statistics beyond that. A positional CLI argument acts as a substring
//! filter on benchmark names, matching `cargo bench -- <filter>`; flags
//! (`--bench`, `--quick`, ...) are ignored for drop-in compatibility.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let sample_size = self.sample_size;
        self.run_one(&id, sample_size, &mut f);
    }

    fn run_one(&mut self, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        b.report(id);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id.into());
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, &mut f);
    }

    /// Run a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let full = format!("{}/{}", self.name, id.text);
        let sample_size = self.sample_size;
        self.criterion
            .run_one(&full, sample_size, &mut |b| f(b, input));
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier `function/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Compose from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, batching fast routines so every sample spans >= ~1 ms.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warmup + batch size estimation.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1) as u64;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(Duration::from_nanos(
                (start.elapsed().as_nanos() / batch as u128) as u64,
            ));
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples — iter was never called)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{id:<50} min {:>12} | median {:>12} | mean {:>12} ({} samples)",
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean),
            sorted.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a benchmark group runner (shim for `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the given groups (shim for `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        // Bypass the CLI filter picked up from the test harness args.
        c.filter = None;
        let mut group = c.benchmark_group("g");
        let mut ran = 0u32;
        group.bench_function("fast", |b| {
            b.iter(|| {
                ran += 1;
                black_box(12u64.wrapping_mul(7))
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 42), &3u32, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        group.finish();
        assert!(ran > 0, "benchmark closure must actually run");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
