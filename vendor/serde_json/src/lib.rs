//! In-tree shim for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], backed by the
//! serde shim's [`Content`] data model. Output is plain standards-compliant
//! JSON; the parser accepts arbitrary JSON with nesting, escapes
//! (including `\uXXXX` and surrogate pairs), and both integer and float
//! numbers.

use serde::{Content, Deserialize, Serialize};

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error { msg: e.msg }
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

/// Serialize `value` to an indented JSON string (two spaces, like
/// `serde_json`).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

fn write_content(
    c: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{}` on f64 is the shortest decimal that round-trips.
            out.push_str(&v.to_string());
        }
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("expected a value at byte {start}")));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Content::I64(-(v as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(to_string(&true).unwrap(), "true");
    }

    #[test]
    fn string_escapes() {
        let s = String::from("a\"b\\c\nd\tẞ");
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            "A😀"
        );
    }

    #[test]
    fn vec_round_trip() {
        let v = vec![1u64, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>(&json).unwrap(), v);
        assert_eq!(from_str::<Vec<u64>>("[]").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn nested_value_parses() {
        let text = r#"{"a": [1, {"b": null}], "c": "x", "d": -2.5}"#;
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.parse_value().unwrap();
        match v {
            Content::Map(entries) => assert_eq!(entries.len(), 3),
            other => panic!("expected map, got {other:?}"),
        }
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1u32], vec![2, 3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
