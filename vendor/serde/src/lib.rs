//! In-tree shim for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor-based data model, the shim round-trips every
//! value through a small [`Content`] tree (the same idea as
//! `serde_json::Value`). `#[derive(Serialize, Deserialize)]` is provided by
//! the sibling `serde_derive` shim and maps structs to string-keyed maps,
//! newtypes to their inner value, tuple structs to sequences, and
//! fieldless enums to their variant name as a string — the same JSON shape
//! real serde produces for these types, so on-disk artifacts stay
//! compatible with a future switch to the real crates.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree (the shim's serialization data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Nonnegative integers.
    U64(u64),
    /// Floating point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Sequences.
    Seq(Vec<Content>),
    /// String-keyed maps with stable field order.
    Map(Vec<(String, Content)>),
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// What went wrong.
    pub msg: String,
}

impl DeError {
    /// A "expected X while deserializing Y" error.
    pub fn expected(what: &str, while_de: &str) -> DeError {
        DeError {
            msg: format!("expected {what} while deserializing {while_de}"),
        }
    }

    /// A free-form error.
    pub fn msg(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Content`] tree.
pub trait Serialize {
    /// Convert to the data model.
    fn to_content(&self) -> Content;
}

/// Types that can be rebuilt from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Convert from the data model.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

/// Look up a struct field in a map by name (derive-generated code).
pub fn field<T: Deserialize>(m: &[(String, Content)], key: &str) -> Result<T, DeError> {
    match m.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_content(v),
        None => Err(DeError::msg(format!("missing field `{key}`"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => v as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::msg(
                    format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0
                        && v >= i64::MIN as f64 && v <= i64::MAX as f64 => v as i64,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| DeError::msg(
                    format!("{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match *c {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        f64::from_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        let out = ($( $t::from_content(
                            it.next().ok_or_else(|| DeError::msg("tuple too short"))?)?, )+);
                        if it.next().is_some() {
                            return Err(DeError::msg("tuple too long"));
                        }
                        Ok(out)
                    }
                    _ => Err(DeError::expected("sequence", "tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-9i64).to_content()).unwrap(), -9);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&String::from("hi").to_content()).unwrap(),
            "hi"
        );
        assert_eq!(
            Vec::<u8>::from_content(&vec![1u8, 2, 3].to_content()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
    }

    #[test]
    fn cross_width_numbers() {
        // Integral floats deserialize into integer types and vice versa.
        assert_eq!(u64::from_content(&Content::F64(4.0)).unwrap(), 4);
        assert_eq!(f64::from_content(&Content::U64(4)).unwrap(), 4.0);
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn field_lookup() {
        let m = vec![("a".to_string(), Content::U64(1))];
        assert_eq!(field::<u32>(&m, "a").unwrap(), 1);
        assert!(field::<u32>(&m, "b").is_err());
    }
}
