//! `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` in the offline build
//! environment). Supports the shapes this workspace uses:
//!
//! * structs with named fields  → string-keyed map;
//! * newtype structs            → the inner value;
//! * other tuple structs        → sequence;
//! * enums with unit variants   → variant name as a string.
//!
//! Generics and data-carrying enum variants are rejected with a compile
//! error naming the offending item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    UnitEnum(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parse the derive input into the supported shapes.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip outer attributes and visibility; find `struct` or `enum`.
    let mut is_enum = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            Some(_) => i += 1,
            None => return Err("serde shim derive: no struct or enum found".into()),
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: missing type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported"
            ));
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        _ => return Err(format!("serde shim derive: `{name}` has no body")),
    };
    let inner: Vec<TokenTree> = body.stream().into_iter().collect();
    let shape = if is_enum {
        Shape::UnitEnum(parse_unit_variants(&name, &inner)?)
    } else if body.delimiter() == Delimiter::Brace {
        Shape::Named(parse_named_fields(&inner))
    } else {
        Shape::Tuple(count_tuple_fields(&inner))
    };
    Ok(Item { name, shape })
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect `:`, then skip the type up to a top-level comma.
                debug_assert!(matches!(
                    &tokens[i], TokenTree::Punct(p) if p.as_char() == ':'
                ));
                i += 1;
                let mut angle = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    fields
}

fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle = 0i32;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma: `(u32,)`.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_unit_variants(name: &str, tokens: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let v = id.to_string();
                i += 1;
                if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
                    return Err(format!(
                        "serde shim derive: enum `{name}` variant `{v}` carries data \
                         (only unit variants are supported)"
                    ));
                }
                variants.push(v);
            }
            _ => i += 1,
        }
    }
    Ok(variants)
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", entries.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Content::Str(\
                         ::std::string::String::from({v:?}))"
                    )
                })
                .collect();
            format!("match *self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(m, {f:?})?"))
                .collect();
            format!(
                "match c {{\n\
                     ::serde::Content::Map(m) => Ok({name} {{ {} }}),\n\
                     _ => Err(::serde::DeError::expected(\"map\", {name:?})),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "match c {{\n\
                     ::serde::Content::Seq(items) if items.len() == {n} => \
                         Ok({name}({})),\n\
                     _ => Err(::serde::DeError::expected(\
                         \"sequence of length {n}\", {name:?})),\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v})"))
                .collect();
            format!(
                "match c {{\n\
                     ::serde::Content::Str(s) => match s.as_str() {{\n\
                         {},\n\
                         other => Err(::serde::DeError::msg(format!(\n\
                             \"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     _ => Err(::serde::DeError::expected(\"string\", {name:?})),\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
