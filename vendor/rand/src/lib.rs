//! In-tree shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no crates.io access, so this crate provides a
//! deterministic, dependency-free stand-in: [`rngs::SmallRng`] is
//! xoshiro256++ seeded through SplitMix64 (the same generator family the
//! real `SmallRng` uses on 64-bit targets), and the [`Rng`] extension trait
//! implements `gen`, `gen_range`, and `gen_bool` for the integer and float
//! range shapes that appear in the workspace. Streams are *stable across
//! runs* (everything is seeded); they are not expected to be bit-identical
//! to the real `rand` crate.

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (the shim supports `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling from the "standard" distribution of a type: unit
/// interval for floats, full range for integers, fair coin for `bool`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Draw an `f64` uniformly from `[0, 1)` (53 mantissa bits).
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! std_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
std_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough bounded sampling: widening multiply of 64 random bits
/// by the span. Bias is at most `span / 2^64` — negligible for simulation
/// workloads, and deterministic, which is what the workspace relies on.
#[inline]
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Types uniformly samplable from a half-open or inclusive interval.
///
/// Implemented per concrete type; [`SampleRange`] is blanket-implemented
/// over it so that `rng.gen_range(0..n)` unifies the literal's integer type
/// with the use site, exactly like the real crate's `UniformSampler` setup.
pub trait SampleUniform: PartialOrd + Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi - lo) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + bounded(rng, span + 1) as $t
                } else {
                    lo + bounded(rng, span) as $t
                }
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + bounded(rng, span + 1) as i128) as $t
                } else {
                    (lo as i128 + bounded(rng, span) as i128) as $t
                }
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, _inclusive: bool) -> $t {
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' guidance.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the shim backs `StdRng` with the same generator.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{bounded, RngCore};

    /// Random selection / permutation over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded(rng, self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `rand::prelude`.
    pub use crate::rngs::{SmallRng, StdRng};
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(5..=5);
            assert_eq!(y, 5);
            let z: i32 = rng.gen_range(-4..3);
            assert!((-4..3).contains(&z));
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_interval_and_bool() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut heads = 0u32;
        for _ in 0..2000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            if rng.gen_bool(0.5) {
                heads += 1;
            }
        }
        assert!(
            (800..1200).contains(&heads),
            "fair coin badly biased: {heads}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn range_mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0..10u32) as f64).sum::<f64>() / n as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean {mean}");
    }
}
