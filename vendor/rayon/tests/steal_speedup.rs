//! Wall-clock evidence for the work-stealing upgrade: on a skewed
//! workload where all the heavy items land in one contiguous chunk, the
//! dynamic shared-index scheduler must beat the old chunked splitter by
//! a wide margin.
//!
//! The heavy items *sleep* rather than spin, so the comparison measures
//! pure scheduling behavior and holds even on single-core CI runners
//! (sleeping threads overlap regardless of core count). This file is an
//! integration test so its global thread-pool cap can't race the unit
//! tests.

use std::time::{Duration, Instant};

use rayon::exec::{run_chunked, run_dynamic};
use rayon::ThreadPoolBuilder;

/// 16 items, the 4 heavy ones up front: the chunked splitter with 4
/// workers assigns all 4 heavy items to worker 0 (indices 0..4), which
/// then sleeps 4 × HEAVY serially while the other workers idle. The
/// dynamic scheduler hands each heavy item to a different free worker.
#[test]
fn dynamic_beats_chunked_on_skewed_sleep_grid() {
    const HEAVY: Duration = Duration::from_millis(60);
    const LIGHT: Duration = Duration::from_millis(1);

    ThreadPoolBuilder::new()
        .num_threads(4)
        .build_global()
        .unwrap();
    let items: Vec<Duration> = (0..16).map(|i| if i < 4 { HEAVY } else { LIGHT }).collect();
    let work = |d: &Duration| {
        std::thread::sleep(*d);
        d.as_millis() as u64
    };

    let t0 = Instant::now();
    let chunked = run_chunked(&items, &work);
    let chunked_wall = t0.elapsed();

    let t0 = Instant::now();
    let dynamic = run_dynamic(&items, &work);
    let dynamic_wall = t0.elapsed();

    assert_eq!(chunked, dynamic, "schedulers must agree on results");

    // Chunked lower bound is 4 × HEAVY = 240 ms serialized on worker 0;
    // dynamic needs about HEAVY + a few LIGHT ≈ 65 ms. Require the
    // acceptance threshold with margin to spare for noisy CI machines.
    let speedup = chunked_wall.as_secs_f64() / dynamic_wall.as_secs_f64().max(1e-9);
    eprintln!(
        "skewed grid: chunked {:.1} ms, work-stealing {:.1} ms ({speedup:.2}x)",
        chunked_wall.as_secs_f64() * 1e3,
        dynamic_wall.as_secs_f64() * 1e3
    );
    assert!(
        speedup >= 1.5,
        "work stealing must beat chunked by >= 1.5x on a skewed grid, got {speedup:.2}x \
         (chunked {chunked_wall:?}, dynamic {dynamic_wall:?})"
    );
}
