//! In-tree shim for the subset of the `rayon` API used by this workspace.
//!
//! Supports `slice.par_iter().map(f).collect()` and
//! `slice.par_iter().flat_map(f).collect()`. Work is executed on real OS
//! threads (`std::thread::scope`) with one contiguous chunk per thread, and
//! results are concatenated in input order, so `collect` is deterministic
//! exactly like rayon's indexed parallel iterators. Nested `par_iter`
//! inside a closure simply opens a nested scope.

use std::marker::PhantomData;
use std::num::NonZeroUsize;

/// `.par_iter()` entry point for slices and vectors.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: 'data;

    /// A parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator (adaptors consume it).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map; order-preserving.
    pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F, R>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
            _result: PhantomData,
        }
    }

    /// Parallel flat-map; order-preserving.
    pub fn flat_map<F, I>(self, f: F) -> ParFlatMap<'a, T, F, I>
    where
        F: Fn(&'a T) -> I + Sync,
        I: IntoIterator,
        I::Item: Send,
    {
        ParFlatMap {
            items: self.items,
            f,
            _result: PhantomData,
        }
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F, R> {
    items: &'a [T],
    f: F,
    _result: PhantomData<fn() -> R>,
}

impl<'a, T: Sync, F, R> ParMap<'a, T, F, R>
where
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Execute on a thread pool and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_chunks(self.items, &|item, out: &mut Vec<R>| {
            out.push((self.f)(item))
        })
        .into_iter()
        .collect()
    }
}

/// Result of [`ParIter::flat_map`].
pub struct ParFlatMap<'a, T, F, I> {
    items: &'a [T],
    f: F,
    _result: PhantomData<fn() -> I>,
}

impl<'a, T: Sync, F, I> ParFlatMap<'a, T, F, I>
where
    F: Fn(&'a T) -> I + Sync,
    I: IntoIterator,
    I::Item: Send,
{
    /// Execute on a thread pool, flatten, and collect in input order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        run_chunks(self.items, &|item, out: &mut Vec<I::Item>| {
            out.extend((self.f)(item))
        })
        .into_iter()
        .collect()
    }
}

/// Split `items` into one contiguous chunk per worker, run `per_item` on
/// scoped threads, and concatenate the per-chunk outputs in order.
fn run_chunks<'a, T: Sync, R: Send>(
    items: &'a [T],
    per_item: &(dyn Fn(&'a T, &mut Vec<R>) + Sync),
) -> Vec<R> {
    let workers = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len())
        .max(1);
    if workers <= 1 {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            per_item(item, &mut out);
        }
        return out;
    }
    let chunk = items.len().div_ceil(workers);
    let mut parts: Vec<Vec<R>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(slice.len());
                    for item in slice {
                        per_item(item, &mut out);
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            parts.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
    out
}

pub mod prelude {
    //! Mirrors `rayon::prelude`.
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_preserves_order() {
        let v: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = v.par_iter().flat_map(|&x| vec![x, x + 1000]).collect();
        let want: Vec<u32> = (0..100).flat_map(|x| [x, x + 1000]).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn nested_par_iter_works() {
        let outer: Vec<u32> = (0..8).collect();
        let inner: Vec<u32> = (0..8).collect();
        let out: Vec<u32> = outer
            .par_iter()
            .flat_map(|&a| {
                let row: Vec<u32> = inner.par_iter().map(|&b| a * 10 + b).collect();
                row
            })
            .collect();
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], 0);
        assert_eq!(out[63], 77);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
