//! In-tree shim for the subset of the `rayon` API used by this workspace.
//!
//! Supports `slice.par_iter().map(f).collect()` and
//! `slice.par_iter().flat_map(f).collect()`. Work is executed on real OS
//! threads (`std::thread::scope`) through a **dynamic work-stealing
//! scheduler**: all workers pull items one at a time from a shared atomic
//! index, so a handful of heavy items can no longer serialize behind one
//! thread's pre-assigned chunk (the failure mode of the previous
//! contiguous-chunk splitter, which is kept as [`exec::run_chunked`] for
//! differential benchmarking). Results are reassembled in input order, so
//! `collect` is deterministic exactly like rayon's indexed parallel
//! iterators. Nested `par_iter` inside a closure simply opens a nested
//! scope.
//!
//! Worker count is resolved per call as the first of: the global cap set
//! by [`ThreadPoolBuilder::build_global`], the `RAYON_NUM_THREADS`
//! environment variable, then `std::thread::available_parallelism()` —
//! always clamped to the number of items.

use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker-count override (0 = unset). Set by
/// [`ThreadPoolBuilder::build_global`].
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Configures the global thread pool, mirroring rayon's builder.
///
/// The shim has no persistent pool — threads are scoped per call — so the
/// builder only records the worker cap that [`exec::run_dynamic`] and
/// [`exec::run_chunked`] resolve on each invocation.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error building the global pool (never produced by the shim; the type
/// exists so call sites can stay identical to real rayon).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build global thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Cap the worker count; `0` restores the automatic default
    /// (`RAYON_NUM_THREADS` or the machine's available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the cap globally. Divergence from real rayon: calling this
    /// more than once *overwrites* the cap instead of returning an error,
    /// so tools that re-run with different `--jobs` values keep working.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_THREADS.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// The number of worker threads a parallel call would use right now
/// (before clamping to the item count).
pub fn current_num_threads() -> usize {
    let n = GLOBAL_THREADS.load(Ordering::Relaxed);
    if n > 0 {
        return n;
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(v) = s.parse::<usize>() {
            if v > 0 {
                return v;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// `.par_iter()` entry point for slices and vectors.
pub trait IntoParallelRefIterator<'data> {
    /// Borrowed item type.
    type Item: 'data;

    /// A parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator (adaptors consume it).
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Parallel map; order-preserving.
    pub fn map<F, R>(self, f: F) -> ParMap<'a, T, F, R>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
            _result: PhantomData,
        }
    }

    /// Parallel flat-map; order-preserving.
    pub fn flat_map<F, I>(self, f: F) -> ParFlatMap<'a, T, F, I>
    where
        F: Fn(&'a T) -> I + Sync,
        I: IntoIterator,
        I::Item: Send,
    {
        ParFlatMap {
            items: self.items,
            f,
            _result: PhantomData,
        }
    }
}

/// Result of [`ParIter::map`].
pub struct ParMap<'a, T, F, R> {
    items: &'a [T],
    f: F,
    _result: PhantomData<fn() -> R>,
}

impl<'a, T: Sync, F, R> ParMap<'a, T, F, R>
where
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Execute on the work-stealing scheduler and collect in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        exec::run_dynamic(self.items, &self.f).into_iter().collect()
    }
}

/// Result of [`ParIter::flat_map`].
pub struct ParFlatMap<'a, T, F, I> {
    items: &'a [T],
    f: F,
    _result: PhantomData<fn() -> I>,
}

impl<'a, T: Sync, F, I> ParFlatMap<'a, T, F, I>
where
    F: Fn(&'a T) -> I + Sync,
    I: IntoIterator,
    I::Item: Send,
{
    /// Execute on the work-stealing scheduler, flatten, and collect in
    /// input order.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        exec::run_dynamic(self.items, &|item| {
            (self.f)(item).into_iter().collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

pub mod exec {
    //! The shim's executors, exposed for differential benchmarking.
    //!
    //! [`run_dynamic`] is what `par_iter` uses; [`run_chunked`] is the
    //! pre-upgrade static splitter, kept so the work-stealing win on
    //! skewed workloads stays measurable (see
    //! `crates/bench/benches/par_scheduler.rs`).

    use super::*;

    /// Resolve the worker count for `len` items.
    fn workers_for(len: usize) -> usize {
        current_num_threads().min(len).max(1)
    }

    /// Dynamic scheduling: every worker claims the next unclaimed index
    /// from a shared atomic counter until the input is exhausted, so load
    /// balances item-by-item no matter how skewed the per-item cost is.
    /// Returns per-item results in input order.
    pub fn run_dynamic<'a, T, R, F>(items: &'a [T], per_item: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync + ?Sized,
    {
        let len = items.len();
        let workers = workers_for(len);
        if workers <= 1 {
            return items.iter().map(per_item).collect();
        }
        let next = AtomicUsize::new(0);
        let mut parts: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= len {
                                break;
                            }
                            out.push((i, per_item(&items[i])));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
        slots.resize_with(len, || None);
        for part in parts {
            for (i, r) in part {
                slots[i] = Some(r);
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index is claimed exactly once"))
            .collect()
    }

    /// Static scheduling: one contiguous chunk per worker (the shim's
    /// previous behavior). A few heavy items that land in the same chunk
    /// serialize behind a single thread — exactly what [`run_dynamic`]
    /// fixes. Returns per-item results in input order.
    pub fn run_chunked<'a, T, R, F>(items: &'a [T], per_item: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'a T) -> R + Sync + ?Sized,
    {
        let len = items.len();
        let workers = workers_for(len);
        if workers <= 1 {
            return items.iter().map(per_item).collect();
        }
        let chunk = len.div_ceil(workers);
        let mut parts: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(slice.len());
                        for item in slice {
                            out.push(per_item(item));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(len);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

pub mod prelude {
    //! Mirrors `rayon::prelude`.
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_preserves_order() {
        let v: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = v.par_iter().flat_map(|&x| vec![x, x + 1000]).collect();
        let want: Vec<u32> = (0..100).flat_map(|x| [x, x + 1000]).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn nested_par_iter_works() {
        let outer: Vec<u32> = (0..8).collect();
        let inner: Vec<u32> = (0..8).collect();
        let out: Vec<u32> = outer
            .par_iter()
            .flat_map(|&a| {
                let row: Vec<u32> = inner.par_iter().map(|&b| a * 10 + b).collect();
                row
            })
            .collect();
        assert_eq!(out.len(), 64);
        assert_eq!(out[0], 0);
        assert_eq!(out[63], 77);
    }

    #[test]
    fn empty_input() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn dynamic_and_chunked_agree() {
        let v: Vec<u64> = (0..257).collect();
        let f = |x: &u64| x * x + 1;
        assert_eq!(exec::run_dynamic(&v, &f), exec::run_chunked(&v, &f));
    }

    #[test]
    fn skewed_work_is_correct_under_stealing() {
        // One very heavy item at the front must not perturb ordering.
        let v: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = v
            .par_iter()
            .map(|&x| {
                let spins = if x == 0 { 200_000 } else { 10 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                // Collapse the spin result so the output is deterministic.
                if acc == u64::MAX {
                    0
                } else {
                    x
                }
            })
            .collect();
        assert_eq!(out, v);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn build_global_caps_and_uncaps() {
        // Runs in one test so the global store isn't racing a sibling.
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .unwrap();
        assert_eq!(current_num_threads(), 3);
        let v: Vec<u32> = (0..10).collect();
        let out: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..11).collect::<Vec<_>>());
        ThreadPoolBuilder::new()
            .num_threads(0)
            .build_global()
            .unwrap();
        assert!(current_num_threads() >= 1);
    }
}
