//! In-tree shim for the subset of the `proptest` API this workspace uses.
//!
//! Random property testing without shrinking: each `proptest!` test runs
//! `ProptestConfig::cases` deterministic cases (seeded from the test name,
//! overridable via `PROPTEST_SEED`), regenerating inputs from the declared
//! strategies. On failure the case index and seed are printed before the
//! panic is re-raised, so a failing case can be replayed exactly.
//!
//! Supported strategy surface: integer ranges, float-free tuples of
//! strategies, [`Just`], `prop_map`, `prop_flat_map`, `prop_oneof!`,
//! `proptest::collection::vec` with fixed or ranged lengths.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    /// 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.0.gen_range(0..bound.max(1))
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it induces.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        (**self).gen_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, U> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F, T: Strategy> Strategy for FlatMap<S, F>
where
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn gen_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_tuple {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
strategy_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from the macro's boxed arms. Panics if empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_value(rng)
    }
}

pub mod collection {
    //! `proptest::collection` — sized collections of strategy-drawn values.

    use super::{Strategy, TestRng};

    /// A length specification: fixed or ranged.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// FNV-1a over the test name: stable per-test base seed.
pub fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Base seed: `PROPTEST_SEED` env override, else the test-name hash.
pub fn base_seed(name: &str) -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().unwrap_or_else(|_| name_seed(name)),
        Err(_) => name_seed(name),
    }
}

/// Define property tests (shim for `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let base = $crate::base_seed(stringify!($name));
            for case in 0..cfg.cases as u64 {
                let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = $crate::TestRng::from_seed(seed);
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);)*
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {}: failed at case {case} (seed {seed:#x}); \
                         rerun with PROPTEST_SEED={base}",
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a property (maps to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property (maps to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

pub mod prelude {
    //! Mirrors `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..5, 10u32..20)
    }

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let s = pair();
        let mut a = crate::TestRng::from_seed(9);
        let mut b = crate::TestRng::from_seed(9);
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
        }
    }

    #[test]
    fn combinators_compose() {
        let s = (1usize..4)
            .prop_flat_map(|n| crate::collection::vec(0u32..10, n))
            .prop_map(|v| v.len());
        let mut rng = crate::TestRng::from_seed(3);
        for _ in 0..100 {
            let len = s.gen_value(&mut rng);
            assert!((1..4).contains(&len));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::from_seed(4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.gen_value(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn macro_generates_cases(x in 0u32..100, (a, b) in (0u8..4, 0u8..4)) {
            prop_assert!(x < 100);
            prop_assert!(a < 4 && b < 4);
            prop_assert_eq!(a as u32 + x, x + a as u32);
        }
    }
}
