//! Property tests for the matching substrate: optimality against brute
//! force, coloring validity, b-matching decomposition invariants.

use fss_matching::{
    bmatching, decompose_into_b_matchings, edge_coloring, greedy_matching,
    max_cardinality_matching, max_weight_matching, BipartiteGraph,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawGraph {
    nl: usize,
    nr: usize,
    edges: Vec<(u32, u32)>,
}

fn raw_graph(max_side: usize, max_edges: usize) -> impl Strategy<Value = RawGraph> {
    (1..=max_side, 1..=max_side).prop_flat_map(move |(nl, nr)| {
        let edge = (0..nl as u32, 0..nr as u32);
        proptest::collection::vec(edge, 0..=max_edges).prop_map(move |edges| RawGraph {
            nl,
            nr,
            edges,
        })
    })
}

fn build(raw: &RawGraph) -> BipartiteGraph {
    BipartiteGraph::from_edges(raw.nl, raw.nr, raw.edges.clone())
}

fn brute_max_cardinality(g: &BipartiteGraph) -> usize {
    fn rec(g: &BipartiteGraph, e: usize, ul: u64, ur: u64) -> usize {
        if e == g.num_edges() {
            return 0;
        }
        let (u, v) = g.endpoints(e);
        let skip = rec(g, e + 1, ul, ur);
        if ul & (1 << u) == 0 && ur & (1 << v) == 0 {
            skip.max(1 + rec(g, e + 1, ul | (1 << u), ur | (1 << v)))
        } else {
            skip
        }
    }
    rec(g, 0, 0, 0)
}

fn brute_max_weight(g: &BipartiteGraph, w: &[f64]) -> f64 {
    fn rec(g: &BipartiteGraph, w: &[f64], e: usize, ul: u64, ur: u64) -> f64 {
        if e == g.num_edges() {
            return 0.0;
        }
        let (u, v) = g.endpoints(e);
        let skip = rec(g, w, e + 1, ul, ur);
        if ul & (1 << u) == 0 && ur & (1 << v) == 0 {
            skip.max(w[e] + rec(g, w, e + 1, ul | (1 << u), ur | (1 << v)))
        } else {
            skip
        }
    }
    rec(g, w, 0, 0, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn hopcroft_karp_is_optimal(raw in raw_graph(5, 14)) {
        let g = build(&raw);
        let m = max_cardinality_matching(&g);
        prop_assert!(g.is_matching(&m));
        prop_assert_eq!(m.len(), brute_max_cardinality(&g));
    }

    #[test]
    fn hungarian_is_optimal(
        raw in raw_graph(4, 10),
        weights_raw in proptest::collection::vec(0u32..12, 10),
    ) {
        let g = build(&raw);
        let weights: Vec<f64> =
            (0..g.num_edges()).map(|e| f64::from(weights_raw[e % weights_raw.len()])).collect();
        let m = max_weight_matching(&g, &weights);
        prop_assert!(g.is_matching(&m));
        let got: f64 = m.iter().map(|&e| weights[e]).sum();
        let want = brute_max_weight(&g, &weights);
        prop_assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
    }

    #[test]
    fn koenig_coloring_is_proper_and_tight(raw in raw_graph(6, 20)) {
        let g = build(&raw);
        let colors = edge_coloring(&g);
        let delta = g.max_degree();
        for &c in &colors {
            prop_assert!(c < delta);
        }
        // Proper: group by color, check matchings.
        let mut classes = vec![Vec::new(); delta];
        for (e, &c) in colors.iter().enumerate() {
            classes[c].push(e);
        }
        for class in &classes {
            prop_assert!(g.is_matching(class));
        }
    }

    #[test]
    fn b_matching_decomposition_partitions(
        raw in raw_graph(4, 16),
        bl in proptest::collection::vec(1u32..4, 4),
        br in proptest::collection::vec(1u32..4, 4),
    ) {
        let g = build(&raw);
        let b_left = &bl[..g.nl()];
        let b_right = &br[..g.nr()];
        let classes = decompose_into_b_matchings(&g, b_left, b_right);
        let mut seen = vec![false; g.num_edges()];
        for class in &classes {
            prop_assert!(bmatching::is_b_matching(&g, class, b_left, b_right));
            for &e in class {
                prop_assert!(!seen[e]);
                seen[e] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn greedy_is_maximal(raw in raw_graph(5, 14)) {
        let g = build(&raw);
        let order: Vec<usize> = (0..g.num_edges()).collect();
        let m = greedy_matching(&g, &order);
        prop_assert!(g.is_matching(&m));
        let mut used_l = vec![false; g.nl()];
        let mut used_r = vec![false; g.nr()];
        for &e in &m {
            let (u, v) = g.endpoints(e);
            used_l[u as usize] = true;
            used_r[v as usize] = true;
        }
        for e in 0..g.num_edges() {
            let (u, v) = g.endpoints(e);
            prop_assert!(used_l[u as usize] || used_r[v as usize]);
        }
        // Greedy is a 2-approximation.
        prop_assert!(2 * m.len() >= brute_max_cardinality(&g));
    }
}
