#![allow(clippy::needless_range_loop)] // parallel-array index loops are clearer here
//! Maximum-weight bipartite matching via the Hungarian algorithm
//! (Jonker–Volgenant shortest-augmenting-path formulation, `O(k^3)` for
//! `k = max(nl, nr)`).
//!
//! Drives the **MinRTime** and **MaxWeight** heuristics of §5.2, which each
//! round extract a maximum-weight matching from the waiting graph under
//! different edge weights.

use crate::graph::BipartiteGraph;

/// Maximum-weight matching for nonnegative edge weights.
///
/// `weights[e]` is the weight of edge `e`. The matching maximizes total
/// weight; leaving a vertex unmatched is always allowed (weight 0), so
/// zero-weight edges may or may not appear in the result — callers that
/// want cardinality as a tie-breaker should add a small uniform bonus to
/// every weight (the online heuristics do exactly that).
///
/// Among parallel edges the heaviest one represents the pair. Returns the
/// chosen edge ids.
pub fn max_weight_matching(g: &BipartiteGraph, weights: &[f64]) -> Vec<usize> {
    assert_eq!(weights.len(), g.num_edges(), "one weight per edge");
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "weights must be nonnegative"
    );
    let (nl, nr) = (g.nl(), g.nr());
    let k = nl.max(nr);
    if k == 0 || g.num_edges() == 0 {
        return Vec::new();
    }

    // Dense weight matrix: best parallel edge per pair; 0 elsewhere
    // (matching a pair with no edge is harmless: weight 0 = unmatched).
    // `w` and `best_edge` are updated together from the same comparison,
    // so the matrix value and its representative edge can never disagree;
    // among equal-weight parallel edges the first occurrence wins.
    let mut w = vec![vec![0.0f64; k]; k];
    let mut best_edge = vec![vec![usize::MAX; k]; k];
    for (e, &(u, v)) in g.edges().iter().enumerate() {
        let (u, v) = (u as usize, v as usize);
        if best_edge[u][v] == usize::MAX || weights[e] > weights[best_edge[u][v]] {
            best_edge[u][v] = e;
            w[u][v] = weights[e];
        }
    }

    // Hungarian algorithm on cost = -weight (1-indexed arrays).
    let inf = f64::INFINITY;
    let n = k;
    let m = k;
    let mut u_pot = vec![0.0; n + 1];
    let mut v_pot = vec![0.0; m + 1];
    let mut p = vec![0usize; m + 1]; // row assigned to column j
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cost = -w[i0 - 1][j - 1];
                    let cur = cost - u_pot[i0] - v_pot[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u_pot[p[j]] += delta;
                    v_pot[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut result = Vec::new();
    for j in 1..=m {
        let i = p[j];
        if i == 0 {
            continue;
        }
        let (row, col) = (i - 1, j - 1);
        if row < nl && col < nr && best_edge[row][col] != usize::MAX && w[row][col] > 0.0 {
            result.push(best_edge[row][col]);
        }
    }
    debug_assert!(g.is_matching(&result));
    result
}

/// Total weight of a set of edges.
pub fn total_weight(edge_ids: &[usize], weights: &[f64]) -> f64 {
    edge_ids.iter().map(|&e| weights[e]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weight_of(g: &BipartiteGraph, weights: &[f64]) -> f64 {
        total_weight(&max_weight_matching(g, weights), weights)
    }

    #[test]
    fn picks_heavier_of_two_conflicting_edges() {
        let g = BipartiteGraph::from_edges(1, 2, vec![(0, 0), (0, 1)]);
        let m = max_weight_matching(&g, &[1.0, 5.0]);
        assert_eq!(m, vec![1]);
    }

    #[test]
    fn takes_two_light_over_one_heavy() {
        // (0,0)=3 conflicts with both (0,1)=2 and (1,0)=2; 2+2 > 3.
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let m = max_weight_matching(&g, &[3.0, 2.0, 2.0]);
        let w = total_weight(&m, &[3.0, 2.0, 2.0]);
        assert!((w - 4.0).abs() < 1e-9);
        assert!(g.is_matching(&m));
    }

    #[test]
    fn parallel_edges_choose_heaviest() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0), (0, 0), (0, 0)]);
        let m = max_weight_matching(&g, &[1.0, 7.0, 3.0]);
        assert_eq!(m, vec![1]);
    }

    #[test]
    fn parallel_edges_of_unequal_weight_collapse_consistently() {
        // Regression: the dense collapse must pick the argmax edge no
        // matter the insertion order — the old two-step update could let
        // an edge raise `w` without claiming `best_edge` (or vice versa).
        for order in [
            vec![5.0, 3.0, 4.0],
            vec![3.0, 5.0, 4.0],
            vec![4.0, 3.0, 5.0],
            vec![0.0, 5.0, 3.0],
            vec![5.0, 0.0, 0.0],
        ] {
            let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (0, 0), (0, 0), (1, 1)]);
            let mut weights = order.clone();
            weights.push(2.0); // the (1,1) edge
            let m = max_weight_matching(&g, &weights);
            let heaviest = (0..3)
                .max_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap())
                .unwrap();
            assert!(
                m.contains(&heaviest),
                "order {order:?}: expected edge {heaviest} in {m:?}"
            );
            assert!(m.contains(&3), "order {order:?}: (1,1) must be matched");
            assert!((total_weight(&m, &weights) - (weights[heaviest] + 2.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn parallel_edge_ties_prefer_the_first_occurrence() {
        let g = BipartiteGraph::from_edges(1, 2, vec![(0, 0), (0, 0), (0, 1)]);
        let m = max_weight_matching(&g, &[6.0, 6.0, 1.0]);
        assert_eq!(m, vec![0], "equal parallel weights: first edge represents");
    }

    #[test]
    fn zero_weight_graph_gives_empty_or_zero_weight() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 1)]);
        let w = weight_of(&g, &[0.0, 0.0]);
        assert_eq!(w, 0.0);
    }

    #[test]
    fn rectangular_graphs() {
        let g = BipartiteGraph::from_edges(1, 3, vec![(0, 0), (0, 1), (0, 2)]);
        let m = max_weight_matching(&g, &[2.0, 9.0, 4.0]);
        assert_eq!(m, vec![1]);
        let g2 = BipartiteGraph::from_edges(3, 1, vec![(0, 0), (1, 0), (2, 0)]);
        let m2 = max_weight_matching(&g2, &[2.0, 9.0, 4.0]);
        assert_eq!(m2, vec![1]);
    }

    #[test]
    fn empty_graph_empty_matching() {
        let g = BipartiteGraph::new(3, 3);
        assert!(max_weight_matching(&g, &[]).is_empty());
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..40 {
            let nl = rng.gen_range(1..5);
            let nr = rng.gen_range(1..5);
            let mut g = BipartiteGraph::new(nl, nr);
            let mut weights = Vec::new();
            for u in 0..nl as u32 {
                for v in 0..nr as u32 {
                    if rng.gen_bool(0.5) {
                        g.add_edge(u, v);
                        weights.push(f64::from(rng.gen_range(0..10)));
                    }
                }
            }
            let got = weight_of(&g, &weights);
            let want = brute_force_max_weight(&g, &weights);
            assert!(
                (got - want).abs() < 1e-9,
                "hungarian {got} != brute force {want} on {g:?} / {weights:?}"
            );
        }
    }

    fn brute_force_max_weight(g: &BipartiteGraph, weights: &[f64]) -> f64 {
        fn rec(g: &BipartiteGraph, w: &[f64], e: usize, ul: u64, ur: u64) -> f64 {
            if e == g.num_edges() {
                return 0.0;
            }
            let (u, v) = g.endpoints(e);
            let skip = rec(g, w, e + 1, ul, ur);
            if ul & (1 << u) == 0 && ur & (1 << v) == 0 {
                let take = w[e] + rec(g, w, e + 1, ul | (1 << u), ur | (1 << v));
                skip.max(take)
            } else {
                skip
            }
        }
        rec(g, weights, 0, 0, 0)
    }
}
