//! # fss-matching — bipartite matching substrate
//!
//! The paper's simulator leans on LEMON 1.3.1 for "various graph algorithms
//! such as traversals and matchings" (§5.2.2), and the offline algorithm for
//! average response time needs Birkhoff–von Neumann-style decompositions and
//! the b-matching ↔ matching replication transform (Theorem 1). This crate
//! provides all of it from scratch:
//!
//! * [`BipartiteGraph`] — a bipartite multigraph with edge identities;
//! * [`hopcroft_karp`] — maximum-cardinality matching in `O(E sqrt(V))`
//!   (the **MaxCard** heuristic);
//! * [`hungarian`] — maximum-weight matching in `O(V^3)` via the
//!   Jonker–Volgenant shortest-augmenting-path form of the Hungarian
//!   algorithm (the **MinRTime** and **MaxWeight** heuristics);
//! * [`greedy`] — ordered maximal matching (FIFO baseline);
//! * [`koenig`] — König edge coloring: every bipartite multigraph is
//!   Δ-edge-colorable; each color class is a matching (this is the
//!   constructive Birkhoff–von Neumann step of Theorem 1);
//! * [`bmatching`] — port-replication transform turning capacity-`c` ports
//!   into `c` unit replicas so a coloring yields b-matchings.

pub mod bmatching;
pub mod graph;
pub mod greedy;
pub mod hopcroft_karp;
pub mod hungarian;
pub mod koenig;
pub mod scratch;

pub use bmatching::decompose_into_b_matchings;
pub use graph::BipartiteGraph;
pub use greedy::{greedy_matching, greedy_matching_into};
pub use hopcroft_karp::{max_cardinality_matching, max_cardinality_matching_into};
pub use hungarian::{max_weight_matching, total_weight};
pub use koenig::edge_coloring;
pub use scratch::HungarianScratch;
