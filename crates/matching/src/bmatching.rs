//! b-matching via port replication (Theorem 1, general-capacity case).
//!
//! A *b-matching* allows each vertex `p` up to `b(p)` incident edges. The
//! standard transform (paper's reference \[24\]) replicates each port `p`
//! into `b(p)` unit copies and distributes `p`'s incident edges round-robin
//! among the copies. A proper edge coloring of the replicated graph then
//! yields color classes that are b-matchings of the original graph, with
//!
//! `colors <= max_p ceil(deg(p) / b(p))`
//!
//! since round-robin distribution bounds every replica's degree by that
//! quantity.

use crate::graph::BipartiteGraph;
use crate::koenig::{color_classes, edge_coloring};

/// Decompose the edges of `g` into b-matchings, where left vertex `u` may
/// host up to `b_left[u]` edges per class and right vertex `v` up to
/// `b_right[v]`. Returns the classes as vectors of edge ids; every edge
/// appears in exactly one class.
pub fn decompose_into_b_matchings(
    g: &BipartiteGraph,
    b_left: &[u32],
    b_right: &[u32],
) -> Vec<Vec<usize>> {
    assert_eq!(b_left.len(), g.nl(), "one bound per left vertex");
    assert_eq!(b_right.len(), g.nr(), "one bound per right vertex");
    assert!(
        b_left.iter().chain(b_right).all(|&b| b > 0),
        "b-matching bounds must be positive"
    );
    if g.num_edges() == 0 {
        return Vec::new();
    }

    // Replica id ranges per original vertex.
    let mut l_start = vec![0u32; g.nl() + 1];
    for u in 0..g.nl() {
        l_start[u + 1] = l_start[u] + b_left[u];
    }
    let mut r_start = vec![0u32; g.nr() + 1];
    for v in 0..g.nr() {
        r_start[v + 1] = r_start[v] + b_right[v];
    }

    // Round-robin distribution of each vertex's edges among its replicas.
    let mut next_l = vec![0u32; g.nl()];
    let mut next_r = vec![0u32; g.nr()];
    let mut expanded = BipartiteGraph::new(l_start[g.nl()] as usize, r_start[g.nr()] as usize);
    for &(u, v) in g.edges() {
        let (u, v) = (u as usize, v as usize);
        let lu = l_start[u] + next_l[u];
        next_l[u] = (next_l[u] + 1) % b_left[u];
        let rv = r_start[v] + next_r[v];
        next_r[v] = (next_r[v] + 1) % b_right[v];
        expanded.add_edge(lu, rv);
    }

    // Edge ids are preserved by construction (same insertion order).
    let colors = edge_coloring(&expanded);
    color_classes(&expanded, &colors)
        .into_iter()
        .filter(|class| !class.is_empty())
        .collect()
}

/// Check that `class` respects the per-vertex bounds in `g`.
pub fn is_b_matching(g: &BipartiteGraph, class: &[usize], b_left: &[u32], b_right: &[u32]) -> bool {
    let mut deg_l = vec![0u32; g.nl()];
    let mut deg_r = vec![0u32; g.nr()];
    for &e in class {
        let (u, v) = g.endpoints(e);
        deg_l[u as usize] += 1;
        deg_r[v as usize] += 1;
    }
    deg_l.iter().zip(b_left).all(|(d, b)| d <= b) && deg_r.iter().zip(b_right).all(|(d, b)| d <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(
        g: &BipartiteGraph,
        classes: &[Vec<usize>],
        b_left: &[u32],
        b_right: &[u32],
    ) {
        // Partition of all edges.
        let mut seen = vec![false; g.num_edges()];
        for class in classes {
            for &e in class {
                assert!(!seen[e], "edge {e} in two classes");
                seen[e] = true;
            }
            assert!(is_b_matching(g, class, b_left, b_right));
        }
        assert!(
            seen.iter().all(|&s| s),
            "some edge missing from all classes"
        );
    }

    #[test]
    fn unit_bounds_reduce_to_plain_matchings() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        let b = vec![1, 1];
        let classes = decompose_into_b_matchings(&g, &b, &b);
        check_decomposition(&g, &classes, &b, &b);
        assert_eq!(classes.len(), 2); // 2-regular graph, 2 colors
        for class in &classes {
            assert!(g.is_matching(class));
        }
    }

    #[test]
    fn capacity_two_halves_the_classes() {
        // 4 parallel edges on a single pair: with b = 2 both sides, two
        // classes of two edges suffice.
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0); 4]);
        let classes = decompose_into_b_matchings(&g, &[2], &[2]);
        check_decomposition(&g, &classes, &[2], &[2]);
        assert_eq!(classes.len(), 2);
    }

    #[test]
    fn class_count_respects_ceiling_bound() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..40 {
            let nl = rng.gen_range(1..6);
            let nr = rng.gen_range(1..6);
            let b_left: Vec<u32> = (0..nl).map(|_| rng.gen_range(1..4)).collect();
            let b_right: Vec<u32> = (0..nr).map(|_| rng.gen_range(1..4)).collect();
            let mut g = BipartiteGraph::new(nl, nr);
            for _ in 0..rng.gen_range(0..30) {
                g.add_edge(rng.gen_range(0..nl as u32), rng.gen_range(0..nr as u32));
            }
            if g.num_edges() == 0 {
                continue;
            }
            let classes = decompose_into_b_matchings(&g, &b_left, &b_right);
            check_decomposition(&g, &classes, &b_left, &b_right);
            // Bound: ceil(deg / b) maximized over vertices.
            let dl = g.left_degrees();
            let dr = g.right_degrees();
            let bound = dl
                .iter()
                .zip(&b_left)
                .map(|(&d, &b)| (d as u32).div_ceil(b))
                .chain(
                    dr.iter()
                        .zip(&b_right)
                        .map(|(&d, &b)| (d as u32).div_ceil(b)),
                )
                .max()
                .unwrap_or(0);
            assert!(
                classes.len() as u32 <= bound,
                "classes {} exceed ceiling bound {bound}",
                classes.len()
            );
        }
    }

    #[test]
    fn empty_graph_yields_no_classes() {
        let g = BipartiteGraph::new(2, 2);
        assert!(decompose_into_b_matchings(&g, &[1, 1], &[1, 1]).is_empty());
    }
}
