//! Hopcroft–Karp maximum-cardinality bipartite matching, `O(E sqrt(V))`.
//!
//! Drives the **MaxCard** heuristic of §5.2: extract a maximum matching
//! from the waiting graph each round, keeping as many ports busy as
//! possible.

use crate::graph::BipartiteGraph;

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// Maximum-cardinality matching. Returns the matched edge ids (one per
/// matched pair; for parallel edges an arbitrary representative).
pub fn max_cardinality_matching(g: &BipartiteGraph) -> Vec<usize> {
    let mut out = Vec::new();
    max_cardinality_matching_into(g, &mut out);
    out
}

/// [`max_cardinality_matching`] writing into a caller-owned buffer
/// (cleared first) — the allocation-free form for per-round use in the
/// engine's hot loops.
pub fn max_cardinality_matching_into(g: &BipartiteGraph, out: &mut Vec<usize>) {
    let nl = g.nl();
    let adj = g.left_adjacency();
    // match_l[u] = right partner of u (NIL if free); similarly match_r.
    let mut match_l = vec![NIL; nl];
    let mut match_r = vec![NIL; g.nr()];
    // Which edge id realizes the match of left u.
    let mut match_edge = vec![usize::MAX; nl];
    let mut dist = vec![INF; nl];
    let mut queue = std::collections::VecDeque::new();

    loop {
        // BFS: layers from free left vertices.
        queue.clear();
        for u in 0..nl {
            if match_l[u] == NIL {
                dist[u] = 0;
                queue.push_back(u as u32);
            } else {
                dist[u] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &adj[u as usize] {
                let w = match_r[v as usize];
                if w == NIL {
                    found_augmenting = true;
                } else if dist[w as usize] == INF {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: augment along shortest alternating paths.
        for u in 0..nl as u32 {
            if match_l[u as usize] == NIL {
                dfs(
                    u,
                    &adj,
                    &mut match_l,
                    &mut match_r,
                    &mut match_edge,
                    &mut dist,
                );
            }
        }
    }

    out.clear();
    out.extend(
        (0..nl)
            .filter(|&u| match_l[u] != NIL)
            .map(|u| match_edge[u]),
    );
}

fn dfs(
    u: u32,
    adj: &[Vec<(u32, usize)>],
    match_l: &mut [u32],
    match_r: &mut [u32],
    match_edge: &mut [usize],
    dist: &mut [u32],
) -> bool {
    for &(v, e) in &adj[u as usize] {
        let w = match_r[v as usize];
        let ok = w == NIL
            || (dist[w as usize] == dist[u as usize] + 1
                && dfs(w, adj, match_l, match_r, match_edge, dist));
        if ok {
            match_l[u as usize] = v;
            match_r[v as usize] = u;
            match_edge[u as usize] = e;
            return true;
        }
    }
    dist[u as usize] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_complete_graph() {
        let mut g = BipartiteGraph::new(3, 3);
        for u in 0..3 {
            for v in 0..3 {
                g.add_edge(u, v);
            }
        }
        let m = max_cardinality_matching(&g);
        assert_eq!(m.len(), 3);
        assert!(g.is_matching(&m));
    }

    #[test]
    fn path_graph_matches_two() {
        // L0-R0, L1-R0, L1-R1: maximum matching has size 2.
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 0), (1, 1)]);
        let m = max_cardinality_matching(&g);
        assert_eq!(m.len(), 2);
        assert!(g.is_matching(&m));
    }

    #[test]
    fn star_matches_one() {
        let g = BipartiteGraph::from_edges(1, 4, vec![(0, 0), (0, 1), (0, 2), (0, 3)]);
        let m = max_cardinality_matching(&g);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        assert!(max_cardinality_matching(&g).is_empty());
    }

    #[test]
    fn augmenting_path_is_found() {
        // Greedy L0->R0 would block L1; HK must find the augmenting path.
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let m = max_cardinality_matching(&g);
        assert_eq!(m.len(), 2);
        assert!(g.is_matching(&m));
    }

    #[test]
    fn matches_koenig_bound_on_random_graphs() {
        // Sanity on random graphs: matching size equals n minus the number
        // of exposed vertices found by a brute-force check on small cases.
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..30 {
            let nl = rng.gen_range(1..6);
            let nr = rng.gen_range(1..6);
            let mut g = BipartiteGraph::new(nl, nr);
            for u in 0..nl as u32 {
                for v in 0..nr as u32 {
                    if rng.gen_bool(0.4) {
                        g.add_edge(u, v);
                    }
                }
            }
            let m = max_cardinality_matching(&g);
            assert!(g.is_matching(&m));
            assert_eq!(m.len(), brute_force_max_matching(&g));
        }
    }

    /// Exponential-time exact matcher for cross-checking (small graphs only).
    fn brute_force_max_matching(g: &BipartiteGraph) -> usize {
        fn rec(g: &BipartiteGraph, e: usize, used_l: u64, used_r: u64) -> usize {
            if e == g.num_edges() {
                return 0;
            }
            let (u, v) = g.endpoints(e);
            let skip = rec(g, e + 1, used_l, used_r);
            if used_l & (1 << u) == 0 && used_r & (1 << v) == 0 {
                let take = 1 + rec(g, e + 1, used_l | (1 << u), used_r | (1 << v));
                skip.max(take)
            } else {
                skip
            }
        }
        rec(g, 0, 0, 0)
    }
}
