//! Warm-startable dense maximum-weight assignment with persistent dual
//! potentials and per-row repair.
//!
//! [`HungarianScratch`] maintains a maximum-weight matching of a dense
//! `m_in x m_out` integer weight matrix across a *sequence* of sparse
//! weight updates, instead of re-solving from a cold start after every
//! change. It is the substrate of the incremental weighted matchers behind
//! the **MinRTime** / **MaxWeight** heuristics (paper §5.2): each
//! scheduling round changes only the cells dirtied by arrivals, dispatches,
//! and outage windows, and only the rows carrying those cells are
//! re-augmented.
//!
//! ## Model
//!
//! Weights are nonnegative `i64`s; weight `0` means "no edge" (matching
//! that pair is allowed but worthless — it represents leaving both ports
//! idle). Internally the matrix is padded to a `k x k` square
//! (`k = max(m_in, m_out)`) of zero cells and the solver maintains a
//! **perfect** assignment of the square at all times, in the classic
//! Jonker–Volgenant shortest-augmenting-path formulation over
//! `cost = -weight`:
//!
//! * dual potentials `u` (rows) and `v` (columns) with
//!   `u[i] + v[j] <= cost[i][j]` for every pair (*feasibility*), and
//! * a perfect assignment supported on *tight* pairs
//!   (`u[i] + v[j] = cost[i][j]`).
//!
//! For the equality-constrained (perfect, square) assignment LP this pair
//! of conditions is a complete optimality certificate — no sign
//! constraints on the duals are needed, which is exactly why the matrix is
//! kept square: a rectangular or partially-assigned formulation would
//! additionally require zero potentials on exposed rows/columns, a
//! property that incremental *deletions* (a queue cell draining to zero)
//! silently destroy. Keeping every row and column matched at all times —
//! zero-weight padding cells stand in for "unmatched" — makes every
//! update a pure *cost change*, and cost changes have a local repair:
//!
//! * a change that breaks **feasibility** (a weight increase past the
//!   dual bound) or **tightness of an assigned pair** (any change to a
//!   cell carrying the assignment) unassigns that row and marks it dirty;
//! * [`HungarianScratch::solve`] re-inserts the dirty rows (ascending row
//!   order, so repair is deterministic for a given update batch) with the
//!   standard JV single-row augmentation, which preserves feasibility and
//!   tightness and re-completes the assignment.
//!
//! The end state is again perfect + tight + feasible, hence optimal —
//! regardless of the history of warm starts. This is the exact-parity
//! argument: `solve` returns a matching whose total weight equals the
//! batch [`crate::max_weight_matching`] on the same matrix (the
//! differential tests below and in `fss-engine` check precisely that).
//!
//! ## Cost
//!
//! A repair costs `O(d · k · p)` where `d` is the number of dirty rows
//! and `p` the augmenting-path length — against `O(k^3)` for a cold
//! solve. In the scheduling steady state `d` tracks the per-round *churn*
//! (arrivals on previously-empty cells, dispatched cells), not the queue
//! size, and paths are short because the duals are already near-optimal.
//!
//! ## Bounds
//!
//! Callers must keep weights in `0 ..= i64::MAX / 4` and may not let an
//! offset drive a nonzero weight to zero or below (a cell is emptied by
//! an explicit [`HungarianScratch::set_weight`] to `0`). Dual potentials
//! drift by at most the total applied offset magnitude, so `i64` headroom
//! is ample for horizons far beyond the paper's workloads.

/// Sentinel for "unassigned" (only ever transient between updates).
const NIL: u32 = u32::MAX;

/// Warm-startable dense maximum-weight assignment (see the module docs).
#[derive(Debug, Clone)]
pub struct HungarianScratch {
    m_in: usize,
    m_out: usize,
    /// Square dimension: `max(m_in, m_out)`.
    k: usize,
    /// Row-major `m_in x m_out` weights; cells outside are permanent 0.
    w: Vec<i64>,
    /// Nonzero cells per row / per column (offset no-op detection).
    row_nnz: Vec<u32>,
    col_nnz: Vec<u32>,
    /// Dual potentials (min-form over `cost = -w`), length `k`.
    u: Vec<i64>,
    v: Vec<i64>,
    /// Perfect assignment over the square: row -> col and col -> row.
    match_l: Vec<u32>,
    match_r: Vec<u32>,
    /// Rows awaiting re-augmentation, deduped via `row_dirty`.
    dirty: Vec<u32>,
    row_dirty: Vec<bool>,
    // --- augmentation scratch (reused across solves; no allocation) ---
    minv: Vec<i64>,
    way: Vec<u32>,
    used: Vec<bool>,
}

impl HungarianScratch {
    /// All-zero matrix with the identity assignment (trivially optimal).
    pub fn new(m_in: usize, m_out: usize) -> HungarianScratch {
        let k = m_in.max(m_out);
        HungarianScratch {
            m_in,
            m_out,
            k,
            w: vec![0; m_in * m_out],
            row_nnz: vec![0; m_in],
            col_nnz: vec![0; m_out],
            u: vec![0; k],
            v: vec![0; k],
            match_l: (0..k as u32).collect(),
            match_r: (0..k as u32).collect(),
            dirty: Vec::new(),
            row_dirty: vec![false; k],
            minv: vec![0; k],
            way: vec![0; k],
            used: vec![false; k],
        }
    }

    /// Rows of the real (unpadded) matrix.
    #[inline]
    pub fn m_in(&self) -> usize {
        self.m_in
    }

    /// Columns of the real (unpadded) matrix.
    #[inline]
    pub fn m_out(&self) -> usize {
        self.m_out
    }

    /// Current weight of cell `(i, j)`.
    #[inline]
    pub fn weight(&self, i: u32, j: u32) -> i64 {
        self.w[i as usize * self.m_out + j as usize]
    }

    /// True when updates are pending and [`HungarianScratch::solve`] has
    /// repair work to do.
    #[inline]
    pub fn needs_solve(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Cost of pair `(i, j)` in the padded square (`-w`, or 0 outside the
    /// real matrix).
    #[inline]
    fn cost(&self, i: usize, j: usize) -> i64 {
        if i < self.m_in && j < self.m_out {
            -self.w[i * self.m_out + j]
        } else {
            0
        }
    }

    #[inline]
    fn mark_dirty(&mut self, i: usize) {
        let j = self.match_l[i];
        if j != NIL {
            self.match_r[j as usize] = NIL;
            self.match_l[i] = NIL;
        }
        if !self.row_dirty[i] {
            self.row_dirty[i] = true;
            self.dirty.push(i as u32);
        }
    }

    /// Set cell `(i, j)` to `weight` (`0` removes the edge). Classifies
    /// the change and dirties row `i` only when the update breaks dual
    /// feasibility or the tightness of the assigned pair.
    pub fn set_weight(&mut self, i: u32, j: u32, weight: i64) {
        assert!(weight >= 0, "weights must be nonnegative");
        assert!(
            (i as usize) < self.m_in && (j as usize) < self.m_out,
            "cell ({i}, {j}) out of range"
        );
        let (iu, ju) = (i as usize, j as usize);
        let cell = iu * self.m_out + ju;
        let old = self.w[cell];
        if old == weight {
            return;
        }
        self.w[cell] = weight;
        if (old == 0) != (weight == 0) {
            let d = if weight == 0 { -1i32 } else { 1 };
            self.row_nnz[iu] = self.row_nnz[iu].wrapping_add_signed(d);
            self.col_nnz[ju] = self.col_nnz[ju].wrapping_add_signed(d);
        }
        if self.match_l[iu] == j {
            // Any change to the assigned cell breaks tightness.
            self.mark_dirty(iu);
        } else if weight > old && self.u[iu] + self.v[ju] > -weight {
            // Weight increase past the dual bound: feasibility violated.
            // (Decreases only grow the cost and stay feasible.)
            self.mark_dirty(iu);
        }
    }

    /// Add `delta` to every **nonzero** weight in row `i` (no-op when the
    /// row has none). Positive deltas are absorbed into the row potential
    /// in `O(row)` with no repair; the assigned pair only goes slack when
    /// it sits on a zero/padding cell. Negative deltas never break
    /// feasibility, so only the row's own assignment can need repair.
    ///
    /// The caller must keep every nonzero weight positive under the
    /// offset (drain a cell with `set_weight(i, j, 0)` instead).
    pub fn add_row_offset(&mut self, i: u32, delta: i64) {
        let iu = i as usize;
        assert!(iu < self.m_in, "row {i} out of range");
        if delta == 0 || self.row_nnz[iu] == 0 {
            return;
        }
        let base = iu * self.m_out;
        for j in 0..self.m_out {
            let w = &mut self.w[base + j];
            if *w != 0 {
                *w += delta;
                debug_assert!(*w > 0, "offset drove cell ({i}, {j}) to {w}");
            }
        }
        let assigned = self.match_l[iu];
        if delta > 0 {
            // Absorb: nonzero cells keep their reduced costs; zero cells
            // only get slacker. A zero-cell assignment goes slack.
            self.u[iu] -= delta;
            if assigned != NIL {
                let j = assigned as usize;
                if j >= self.m_out || self.w[base + j] == 0 {
                    self.mark_dirty(iu);
                }
            }
        } else if assigned != NIL && (assigned as usize) < self.m_out {
            // Weight decrease: feasible everywhere, but a nonzero assigned
            // cell just lost tightness.
            if self.w[base + assigned as usize] != 0 {
                self.mark_dirty(iu);
            }
        }
    }

    /// Column analog of [`HungarianScratch::add_row_offset`].
    pub fn add_col_offset(&mut self, j: u32, delta: i64) {
        let ju = j as usize;
        assert!(ju < self.m_out, "column {j} out of range");
        if delta == 0 || self.col_nnz[ju] == 0 {
            return;
        }
        for i in 0..self.m_in {
            let w = &mut self.w[i * self.m_out + ju];
            if *w != 0 {
                *w += delta;
                debug_assert!(*w > 0, "offset drove cell ({i}, {j}) to {w}");
            }
        }
        let row = self.match_r[ju];
        if delta > 0 {
            self.v[ju] -= delta;
            if row != NIL {
                let i = row as usize;
                if i >= self.m_in || self.w[i * self.m_out + ju] == 0 {
                    self.mark_dirty(i);
                }
            }
        } else if row != NIL
            && (row as usize) < self.m_in
            && self.w[row as usize * self.m_out + ju] != 0
        {
            self.mark_dirty(row as usize);
        }
    }

    /// Repair the assignment after a batch of updates: re-insert every
    /// dirty row (ascending, so repair is deterministic per batch) with a
    /// shortest augmenting path from the persistent duals. Afterwards the
    /// assignment is a maximum-weight matching of the current matrix.
    pub fn solve(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        self.dirty.sort_unstable();
        let mut di = 0;
        while di < self.dirty.len() {
            let i = self.dirty[di] as usize;
            di += 1;
            self.row_dirty[i] = false;
            // Reprice: u[i] = min_j (cost - v[j]) restores feasibility on
            // every pair of row i and guarantees a tight edge to start
            // from (keeps the augmentation's deltas nonnegative).
            let mut best = i64::MAX;
            for j in 0..self.k {
                best = best.min(self.cost(i, j) - self.v[j]);
            }
            self.u[i] = best;
            self.augment(i);
        }
        self.dirty.clear();
    }

    /// The column matched to row `i` through a *positive-weight* cell
    /// (padding and zero-cell assignments read as unmatched).
    #[inline]
    pub fn matched_col(&self, i: u32) -> Option<u32> {
        let j = self.match_l[i as usize];
        if j != NIL && (j as usize) < self.m_out && self.weight(i, j) > 0 {
            Some(j)
        } else {
            None
        }
    }

    /// Total weight of the current matching (positive cells only).
    pub fn total_weight(&self) -> i64 {
        let mut sum = 0;
        for i in 0..self.m_in as u32 {
            if let Some(j) = self.matched_col(i) {
                sum += self.weight(i, j);
            }
        }
        sum
    }

    /// Forget everything: all-zero matrix, identity assignment, zero
    /// duals.
    pub fn reset(&mut self) {
        self.w.fill(0);
        self.row_nnz.fill(0);
        self.col_nnz.fill(0);
        self.u.fill(0);
        self.v.fill(0);
        for (i, m) in self.match_l.iter_mut().enumerate() {
            *m = i as u32;
        }
        for (j, m) in self.match_r.iter_mut().enumerate() {
            *m = j as u32;
        }
        self.dirty.clear();
        self.row_dirty.fill(false);
    }

    /// JV single-row insertion: Dijkstra over reduced costs with deferred
    /// dual updates, terminating at a free column. Ties prefer free
    /// columns (ending the path at equal distance is always optimal) and
    /// zero-delta rounds skip the dual pass entirely — both matter on the
    /// tie-heavy matrices the scheduling policies produce.
    fn augment(&mut self, p0: usize) {
        let k = self.k;
        for j in 0..k {
            self.minv[j] = i64::MAX;
            self.used[j] = false;
        }
        let mut i0 = p0;
        let mut j_prev = NIL;
        let j_free;
        loop {
            let mut delta = i64::MAX;
            let mut j1 = usize::MAX;
            let mut j1_free = false;
            for j in 0..k {
                if self.used[j] {
                    continue;
                }
                let cur = self.cost(i0, j) - self.u[i0] - self.v[j];
                if cur < self.minv[j] {
                    self.minv[j] = cur;
                    self.way[j] = j_prev;
                }
                let free = self.match_r[j] == NIL;
                if self.minv[j] < delta || (self.minv[j] == delta && free && !j1_free) {
                    delta = self.minv[j];
                    j1 = j;
                    j1_free = free;
                }
            }
            debug_assert!(j1 != usize::MAX, "square matrix always augments");
            if delta > 0 {
                for j in 0..k {
                    if self.used[j] {
                        self.u[self.match_r[j] as usize] += delta;
                        self.v[j] -= delta;
                    } else if self.minv[j] != i64::MAX {
                        self.minv[j] -= delta;
                    }
                }
                self.u[p0] += delta;
            }
            self.used[j1] = true;
            if self.match_r[j1] == NIL {
                j_free = j1;
                break;
            }
            i0 = self.match_r[j1] as usize;
            j_prev = j1 as u32;
        }
        // Flip the alternating path back to the root.
        let mut j = j_free;
        loop {
            let prev = self.way[j];
            if prev == NIL {
                self.match_r[j] = p0 as u32;
                self.match_l[p0] = j as u32;
                break;
            }
            let r = self.match_r[prev as usize];
            self.match_r[j] = r;
            self.match_l[r as usize] = j as u32;
            j = prev as usize;
        }
    }

    /// Check the optimality certificate: the assignment is perfect, every
    /// assigned pair is tight, and the duals are feasible on every pair.
    /// Panics (with context) on the first violation. Debug/test aid —
    /// `O(k^2)`.
    pub fn verify_certificate(&self) {
        assert!(self.dirty.is_empty(), "verify called with pending repairs");
        for i in 0..self.k {
            let j = self.match_l[i];
            assert_ne!(j, NIL, "row {i} unassigned");
            assert_eq!(self.match_r[j as usize] as usize, i, "match maps differ");
            let tight = self.cost(i, j as usize) - self.u[i] - self.v[j as usize];
            assert_eq!(tight, 0, "assigned pair ({i}, {j}) not tight");
            for j in 0..self.k {
                assert!(
                    self.u[i] + self.v[j] <= self.cost(i, j),
                    "duals infeasible at ({i}, {j})"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_weight_matching, total_weight, BipartiteGraph};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// Batch oracle over the same dense matrix.
    fn oracle_weight(s: &HungarianScratch) -> i64 {
        let mut g = BipartiteGraph::new(s.m_in(), s.m_out());
        let mut weights = Vec::new();
        for i in 0..s.m_in() as u32 {
            for j in 0..s.m_out() as u32 {
                if s.weight(i, j) > 0 {
                    g.add_edge(i, j);
                    weights.push(s.weight(i, j) as f64);
                }
            }
        }
        total_weight(&max_weight_matching(&g, &weights), &weights) as i64
    }

    #[test]
    fn empty_matrix_is_trivially_optimal() {
        let mut s = HungarianScratch::new(3, 5);
        s.solve();
        s.verify_certificate();
        assert_eq!(s.total_weight(), 0);
        assert_eq!(s.matched_col(0), None);
    }

    #[test]
    fn single_updates_track_the_oracle() {
        let mut s = HungarianScratch::new(3, 3);
        s.set_weight(0, 0, 5);
        s.solve();
        assert_eq!(s.total_weight(), 5);
        assert_eq!(s.matched_col(0), Some(0));
        // A conflicting heavier edge steals the column.
        s.set_weight(1, 0, 9);
        s.solve();
        s.verify_certificate();
        assert_eq!(s.total_weight(), 9);
        assert_eq!(s.total_weight(), oracle_weight(&s));
        // Removing the winner hands the column back.
        s.set_weight(1, 0, 0);
        s.solve();
        s.verify_certificate();
        assert_eq!(s.total_weight(), 5);
        assert_eq!(s.matched_col(0), Some(0));
    }

    #[test]
    fn deletion_reopens_a_column_for_a_parked_row() {
        // The stale-dual trap: row 1 parks on a zero cell while row 0
        // holds the only valuable column; when row 0's cell drains, row 1
        // must win the column back even though none of ITS cells changed.
        let mut s = HungarianScratch::new(2, 2);
        s.set_weight(0, 0, 5);
        s.set_weight(1, 0, 3);
        s.solve();
        s.verify_certificate();
        assert_eq!(s.total_weight(), 5);
        s.set_weight(0, 0, 0);
        s.solve();
        s.verify_certificate();
        assert_eq!(s.total_weight(), 3);
        assert_eq!(s.matched_col(1), Some(0));
    }

    #[test]
    fn takes_two_light_over_one_heavy() {
        let mut s = HungarianScratch::new(2, 2);
        s.set_weight(0, 0, 3);
        s.set_weight(0, 1, 2);
        s.set_weight(1, 0, 2);
        s.solve();
        s.verify_certificate();
        assert_eq!(s.total_weight(), 4);
    }

    #[test]
    fn positive_row_offset_is_absorbed_without_repair() {
        let mut s = HungarianScratch::new(2, 3);
        s.set_weight(0, 1, 4);
        s.set_weight(1, 1, 6);
        s.solve();
        assert_eq!(s.total_weight(), 6);
        s.add_row_offset(0, 10);
        // Row 0's only cell is now heavier than row 1's.
        assert!(s.weight(0, 1) == 14);
        s.solve();
        s.verify_certificate();
        assert_eq!(s.total_weight(), oracle_weight(&s));
        assert_eq!(s.total_weight(), 14);
    }

    #[test]
    fn negative_col_offset_dirties_only_the_assigned_row() {
        let mut s = HungarianScratch::new(2, 2);
        s.set_weight(0, 0, 10);
        s.set_weight(1, 0, 8);
        s.set_weight(1, 1, 3);
        s.solve();
        assert_eq!(s.total_weight(), 13);
        s.add_col_offset(0, -6);
        s.solve();
        s.verify_certificate();
        assert_eq!(s.total_weight(), oracle_weight(&s));
    }

    #[test]
    fn rectangular_matrices_pad_correctly() {
        for (m_in, m_out) in [(1, 4), (4, 1), (2, 5), (5, 2)] {
            let mut s = HungarianScratch::new(m_in, m_out);
            for i in 0..m_in as u32 {
                for j in 0..m_out as u32 {
                    s.set_weight(i, j, i64::from(i + 2 * j + 1));
                }
            }
            s.solve();
            s.verify_certificate();
            assert_eq!(s.total_weight(), oracle_weight(&s), "{m_in}x{m_out}");
        }
    }

    #[test]
    fn reset_returns_to_the_identity() {
        let mut s = HungarianScratch::new(3, 3);
        s.set_weight(2, 1, 7);
        s.add_row_offset(2, 3);
        s.solve();
        s.reset();
        s.verify_certificate();
        assert_eq!(s.total_weight(), 0);
        assert!(!s.needs_solve());
        s.set_weight(0, 2, 4);
        s.solve();
        assert_eq!(s.total_weight(), 4);
    }

    #[test]
    fn randomized_update_sequences_match_the_oracle() {
        let mut rng = SmallRng::seed_from_u64(0x5c4a);
        for trial in 0..120 {
            let m_in = rng.gen_range(1..6usize);
            let m_out = rng.gen_range(1..6usize);
            let mut s = HungarianScratch::new(m_in, m_out);
            for step in 0..50 {
                // A batch of 1..=3 random updates, then solve + compare.
                for _ in 0..rng.gen_range(1..4u32) {
                    let i = rng.gen_range(0..m_in as u32);
                    let j = rng.gen_range(0..m_out as u32);
                    match rng.gen_range(0..10u32) {
                        0..=5 => s.set_weight(i, j, rng.gen_range(0..20)),
                        6 => s.set_weight(i, j, 0),
                        7 => s.add_row_offset(i, rng.gen_range(1..5)),
                        8 => s.add_col_offset(j, rng.gen_range(1..5)),
                        _ => {
                            // Negative offsets must keep nonzero weights
                            // positive: shrink by less than the minimum.
                            let mut min = i64::MAX;
                            for jj in 0..m_out as u32 {
                                let w = s.weight(i, jj);
                                if w > 0 {
                                    min = min.min(w);
                                }
                            }
                            if min != i64::MAX && min > 1 {
                                s.add_row_offset(i, -rng.gen_range(1..min));
                            }
                        }
                    }
                }
                s.solve();
                s.verify_certificate();
                assert_eq!(
                    s.total_weight(),
                    oracle_weight(&s),
                    "trial {trial} step {step} ({m_in}x{m_out})"
                );
            }
        }
    }

    #[test]
    fn warm_total_matches_cold_rebuild() {
        // After a long update history, a fresh scratch fed the same final
        // matrix must report the same optimum (history independence).
        let mut rng = SmallRng::seed_from_u64(99);
        let mut s = HungarianScratch::new(5, 4);
        for _ in 0..300 {
            s.set_weight(
                rng.gen_range(0..5),
                rng.gen_range(0..4),
                rng.gen_range(0..30),
            );
            if rng.gen_bool(0.2) {
                s.solve();
            }
        }
        s.solve();
        let mut cold = HungarianScratch::new(5, 4);
        for i in 0..5u32 {
            for j in 0..4u32 {
                cold.set_weight(i, j, s.weight(i, j));
            }
        }
        cold.solve();
        s.verify_certificate();
        cold.verify_certificate();
        assert_eq!(s.total_weight(), cold.total_weight());
    }
}
