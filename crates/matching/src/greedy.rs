//! Ordered greedy maximal matching.
//!
//! Scanning edges in a caller-chosen priority order and taking any edge
//! whose endpoints are still free yields a maximal matching. With
//! oldest-release-first order this is the FIFO baseline heuristic; it is
//! also the cheap scheduler used to derive feasible horizons for the LPs.

use crate::graph::BipartiteGraph;

/// Greedy maximal matching scanning edges in the order given by `order`
/// (a permutation or subsequence of edge ids). Returns the picked edge ids.
pub fn greedy_matching(g: &BipartiteGraph, order: &[usize]) -> Vec<usize> {
    let mut picked = Vec::new();
    greedy_matching_into(g, order, &mut picked);
    picked
}

/// [`greedy_matching`] writing the picked edge ids into a caller-owned
/// buffer (cleared first) — the allocation-free form for per-round use.
pub fn greedy_matching_into(g: &BipartiteGraph, order: &[usize], out: &mut Vec<usize>) {
    let mut used_l = vec![false; g.nl()];
    let mut used_r = vec![false; g.nr()];
    out.clear();
    for &e in order {
        let (u, v) = g.endpoints(e);
        if !used_l[u as usize] && !used_r[v as usize] {
            used_l[u as usize] = true;
            used_r[v as usize] = true;
            out.push(e);
        }
    }
}

/// Greedy maximal matching in edge-insertion order.
pub fn greedy_matching_in_order(g: &BipartiteGraph) -> Vec<usize> {
    let order: Vec<usize> = (0..g.num_edges()).collect();
    greedy_matching(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hopcroft_karp::max_cardinality_matching;

    #[test]
    fn greedy_is_a_matching_and_maximal() {
        let g = BipartiteGraph::from_edges(3, 3, vec![(0, 0), (0, 1), (1, 0), (2, 2), (1, 1)]);
        let m = greedy_matching_in_order(&g);
        assert!(g.is_matching(&m));
        // Maximality: no remaining edge has both endpoints free.
        let mut used_l = vec![false; g.nl()];
        let mut used_r = vec![false; g.nr()];
        for &e in &m {
            let (u, v) = g.endpoints(e);
            used_l[u as usize] = true;
            used_r[v as usize] = true;
        }
        for e in 0..g.num_edges() {
            let (u, v) = g.endpoints(e);
            assert!(
                used_l[u as usize] || used_r[v as usize],
                "edge {e} could have been added"
            );
        }
    }

    #[test]
    fn order_matters() {
        // Taking (0,0) first blocks the perfect matching.
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (0, 1), (1, 0)]);
        let bad = greedy_matching(&g, &[0, 1, 2]);
        assert_eq!(bad.len(), 1);
        let good = greedy_matching(&g, &[1, 2, 0]);
        assert_eq!(good.len(), 2);
    }

    #[test]
    fn greedy_at_least_half_of_maximum() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(23);
        for _ in 0..25 {
            let nl = rng.gen_range(1..8);
            let nr = rng.gen_range(1..8);
            let mut g = BipartiteGraph::new(nl, nr);
            for u in 0..nl as u32 {
                for v in 0..nr as u32 {
                    if rng.gen_bool(0.4) {
                        g.add_edge(u, v);
                    }
                }
            }
            let greedy = greedy_matching_in_order(&g).len();
            let maximum = max_cardinality_matching(&g).len();
            assert!(2 * greedy >= maximum, "greedy {greedy} < half of {maximum}");
        }
    }

    #[test]
    fn subsequence_order_restricts_choices() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 1)]);
        let m = greedy_matching(&g, &[1]); // only edge 1 offered
        assert_eq!(m, vec![1]);
    }
}
