//! König edge coloring: every bipartite multigraph with maximum degree Δ
//! can be edge-colored with exactly Δ colors, each color class a matching.
//!
//! This is the constructive heart of the Birkhoff–von Neumann step in
//! Theorem 1: the combined window graph (degree ≤ d) decomposes into ≤ d
//! matchings which are then executed in the augmented-capacity rounds.
//!
//! The algorithm inserts edges one at a time. For edge `(u, v)` pick a
//! color `a` free at `u` and `b` free at `v`; if `a == b`, assign it.
//! Otherwise walk the maximal alternating path from `u` whose edges are
//! colored `b` (out of left vertices) and `a` (out of right vertices). In a
//! bipartite graph this path cannot reach `v`: every right vertex on it is
//! entered by a `b`-colored edge, and `b` is free at `v`. Swapping `a <-> b`
//! along the path frees `b` at `u`, and the new edge takes color `b`.
//! Each insertion costs `O(V)` path work, `O(E·V)` total.

use crate::graph::BipartiteGraph;

const NONE: usize = usize::MAX;

/// Edge-color `g` with `max_degree(g)` colors. Returns `colors[e] in
/// 0..delta` such that no two same-colored edges share a vertex. An
/// edgeless graph yields an empty coloring.
pub fn edge_coloring(g: &BipartiteGraph) -> Vec<usize> {
    let delta = g.max_degree();
    let nl = g.nl();
    let nr = g.nr();
    let mut colors = vec![NONE; g.num_edges()];
    // at_l[u * delta + c] = edge id colored c at left vertex u (or NONE).
    let mut at_l = vec![NONE; nl * delta];
    let mut at_r = vec![NONE; nr * delta];

    let free = |table: &[usize], vtx: usize| -> usize {
        (0..delta)
            .find(|&c| table[vtx * delta + c] == NONE)
            .expect("degree bound guarantees a free color")
    };

    for e in 0..g.num_edges() {
        let (u, v) = g.endpoints(e);
        let (u, v) = (u as usize, v as usize);
        let a = free(&at_l, u);
        let b = free(&at_r, v);
        if a != b {
            // Collect the maximal alternating path from u: from left
            // vertices follow color b, from right vertices follow color a.
            let mut path: Vec<usize> = Vec::new();
            let mut x = u;
            loop {
                let e1 = at_l[x * delta + b];
                if e1 == NONE {
                    break;
                }
                path.push(e1);
                let y = g.endpoints(e1).1 as usize;
                debug_assert_ne!(y, v, "alternating path reached v: b was not free");
                let e2 = at_r[y * delta + a];
                if e2 == NONE {
                    break;
                }
                path.push(e2);
                x = g.endpoints(e2).0 as usize;
            }
            // Swap colors along the path: deregister, flip, re-register.
            for &pe in &path {
                let (pu, pv) = g.endpoints(pe);
                let c = colors[pe];
                debug_assert!(c == a || c == b);
                at_l[pu as usize * delta + c] = NONE;
                at_r[pv as usize * delta + c] = NONE;
            }
            for &pe in &path {
                let (pu, pv) = g.endpoints(pe);
                let c = a + b - colors[pe];
                colors[pe] = c;
                debug_assert_eq!(at_l[pu as usize * delta + c], NONE);
                debug_assert_eq!(at_r[pv as usize * delta + c], NONE);
                at_l[pu as usize * delta + c] = pe;
                at_r[pv as usize * delta + c] = pe;
            }
        }
        let color = b;
        debug_assert_eq!(at_l[u * delta + color], NONE);
        debug_assert_eq!(at_r[v * delta + color], NONE);
        colors[e] = color;
        at_l[u * delta + color] = e;
        at_r[v * delta + color] = e;
    }
    colors
}

/// Group edge ids by color: `classes[c]` is the matching with color `c`.
pub fn color_classes(g: &BipartiteGraph, colors: &[usize]) -> Vec<Vec<usize>> {
    let delta = g.max_degree();
    let mut classes = vec![Vec::new(); delta];
    for (e, &c) in colors.iter().enumerate() {
        classes[c].push(e);
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_proper(g: &BipartiteGraph, colors: &[usize]) {
        let delta = g.max_degree();
        assert_eq!(colors.len(), g.num_edges());
        for &c in colors {
            assert!(c < delta, "color {c} out of range (delta = {delta})");
        }
        for class in color_classes(g, colors) {
            assert!(g.is_matching(&class), "color class is not a matching");
        }
    }

    #[test]
    fn single_edge() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0)]);
        let c = edge_coloring(&g);
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn complete_bipartite_k33_needs_three_colors() {
        let mut g = BipartiteGraph::new(3, 3);
        for u in 0..3 {
            for v in 0..3 {
                g.add_edge(u, v);
            }
        }
        let colors = edge_coloring(&g);
        check_proper(&g, &colors);
        let used: std::collections::HashSet<_> = colors.iter().copied().collect();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn parallel_edges_get_distinct_colors() {
        let g = BipartiteGraph::from_edges(1, 1, vec![(0, 0), (0, 0), (0, 0)]);
        let colors = edge_coloring(&g);
        check_proper(&g, &colors);
        let used: std::collections::HashSet<_> = colors.iter().copied().collect();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn path_forcing_kempe_swap() {
        // Edges inserted so that a later edge finds conflicting free colors
        // and must flip an alternating path.
        let g = BipartiteGraph::from_edges(3, 3, vec![(0, 0), (1, 0), (1, 1), (2, 1), (2, 0)]);
        let colors = edge_coloring(&g);
        check_proper(&g, &colors);
    }

    #[test]
    fn empty_graph() {
        let g = BipartiteGraph::new(2, 2);
        assert!(edge_coloring(&g).is_empty());
    }

    #[test]
    fn random_multigraphs_are_properly_colored() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..120 {
            let nl = rng.gen_range(1..8);
            let nr = rng.gen_range(1..8);
            let mut g = BipartiteGraph::new(nl, nr);
            let edges = rng.gen_range(0..25);
            for _ in 0..edges {
                g.add_edge(rng.gen_range(0..nl as u32), rng.gen_range(0..nr as u32));
            }
            let colors = edge_coloring(&g);
            check_proper(&g, &colors);
        }
    }

    #[test]
    fn uses_exactly_delta_colors_on_regular_graphs() {
        // d-regular bipartite circulant graphs.
        for d in 1..=4u32 {
            let n = 6u32;
            let mut g = BipartiteGraph::new(n as usize, n as usize);
            for u in 0..n {
                for k in 0..d {
                    g.add_edge(u, (u + k) % n);
                }
            }
            let colors = edge_coloring(&g);
            check_proper(&g, &colors);
            let used: std::collections::HashSet<_> = colors.iter().copied().collect();
            assert_eq!(used.len(), d as usize, "d-regular needs exactly d colors");
        }
    }

    #[test]
    fn large_dense_graph_smoke() {
        let n = 40u32;
        let mut g = BipartiteGraph::new(n as usize, n as usize);
        for u in 0..n {
            for v in 0..n {
                g.add_edge(u, v);
            }
        }
        let colors = edge_coloring(&g);
        check_proper(&g, &colors);
    }
}
