//! Bipartite multigraph with stable edge identities.

/// A bipartite multigraph. Vertices are `0..nl` on the left and `0..nr` on
/// the right; parallel edges are allowed and every edge keeps its insertion
/// index, which downstream code uses to map matchings back to flows.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    nl: usize,
    nr: usize,
    edges: Vec<(u32, u32)>,
}

impl Default for BipartiteGraph {
    /// An empty `0 x 0` graph (resize with [`BipartiteGraph::reset`]).
    fn default() -> Self {
        BipartiteGraph::new(0, 0)
    }
}

impl BipartiteGraph {
    /// An empty graph with `nl` left and `nr` right vertices.
    pub fn new(nl: usize, nr: usize) -> Self {
        BipartiteGraph {
            nl,
            nr,
            edges: Vec::new(),
        }
    }

    /// Drop all edges and change dimensions, keeping the edge storage —
    /// the reuse path for per-round graph rebuilds.
    pub fn reset(&mut self, nl: usize, nr: usize) {
        self.nl = nl;
        self.nr = nr;
        self.edges.clear();
    }

    /// Build directly from an edge list.
    pub fn from_edges(nl: usize, nr: usize, edges: Vec<(u32, u32)>) -> Self {
        for &(u, v) in &edges {
            assert!((u as usize) < nl && (v as usize) < nr, "edge out of range");
        }
        BipartiteGraph { nl, nr, edges }
    }

    /// Add an edge, returning its index.
    pub fn add_edge(&mut self, u: u32, v: u32) -> usize {
        assert!(
            (u as usize) < self.nl && (v as usize) < self.nr,
            "edge out of range"
        );
        self.edges.push((u, v));
        self.edges.len() - 1
    }

    /// Left vertex count.
    #[inline]
    pub fn nl(&self) -> usize {
        self.nl
    }

    /// Right vertex count.
    #[inline]
    pub fn nr(&self) -> usize {
        self.nr
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list, indexed by edge id.
    #[inline]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Endpoints of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: usize) -> (u32, u32) {
        self.edges[e]
    }

    /// Left adjacency: for each left vertex, the `(right, edge_id)` pairs.
    pub fn left_adjacency(&self) -> Vec<Vec<(u32, usize)>> {
        let mut adj = vec![Vec::new(); self.nl];
        for (e, &(u, v)) in self.edges.iter().enumerate() {
            adj[u as usize].push((v, e));
        }
        adj
    }

    /// Degree of each left vertex.
    pub fn left_degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.nl];
        for &(u, _) in &self.edges {
            d[u as usize] += 1;
        }
        d
    }

    /// Degree of each right vertex.
    pub fn right_degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.nr];
        for &(_, v) in &self.edges {
            d[v as usize] += 1;
        }
        d
    }

    /// Maximum degree over all vertices (0 for an edgeless graph).
    pub fn max_degree(&self) -> usize {
        let l = self.left_degrees().into_iter().max().unwrap_or(0);
        let r = self.right_degrees().into_iter().max().unwrap_or(0);
        l.max(r)
    }

    /// Verify that a set of edge ids forms a matching (no shared vertices).
    pub fn is_matching(&self, edge_ids: &[usize]) -> bool {
        let mut seen_l = vec![false; self.nl];
        let mut seen_r = vec![false; self.nr];
        for &e in edge_ids {
            let (u, v) = self.edges[e];
            if seen_l[u as usize] || seen_r[v as usize] {
                return false;
            }
            seen_l[u as usize] = true;
            seen_r[v as usize] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = BipartiteGraph::new(2, 3);
        let e0 = g.add_edge(0, 0);
        let e1 = g.add_edge(0, 2);
        let e2 = g.add_edge(1, 2);
        assert_eq!((e0, e1, e2), (0, 1, 2));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.endpoints(1), (0, 2));
        assert_eq!(g.left_degrees(), vec![2, 1]);
        assert_eq!(g.right_degrees(), vec![1, 0, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0);
        g.add_edge(0, 0);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn matching_checker() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 0), (1, 1), (0, 1)]);
        assert!(g.is_matching(&[0, 1]));
        assert!(!g.is_matching(&[0, 2])); // share left 0
        assert!(g.is_matching(&[]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(1, 0);
    }

    #[test]
    fn left_adjacency_carries_edge_ids() {
        let g = BipartiteGraph::from_edges(2, 2, vec![(0, 1), (0, 0), (1, 0)]);
        let adj = g.left_adjacency();
        assert_eq!(adj[0], vec![(1, 0), (0, 1)]);
        assert_eq!(adj[1], vec![(0, 2)]);
    }
}
