//! Trace sharding: split one giant trace into `N` release-sorted
//! sub-traces, round-robin by port shard.
//!
//! [`split_file`] is the feeder for the pipelined engine's shard workers
//! and for distributing a giant workload across processes: arrivals go
//! to shard `src % N`, the same port-sharding rule the engine's
//! [`fss_engine::ShardedQueues`] fan-out uses, so shard `k`'s sub-trace
//! contains exactly the arrivals shard `k`'s worker would ingest.
//!
//! Guarantees, by construction:
//!
//! - **Each sub-trace is a valid trace.** Output goes through
//!   [`TraceWriter`], so port range and nondecreasing releases are
//!   enforced on the way out — and releases within a shard are a
//!   subsequence of the (sorted) input stream, so the sort invariant
//!   holds automatically.
//! - **The split is a partition.** Every input arrival lands in exactly
//!   one sub-trace; flow counts across the shards sum to the input's.
//! - **O(chunk) memory.** One streaming reader, `N` buffered writers;
//!   nothing is materialized, so traces far larger than RAM split fine.

use std::path::{Path, PathBuf};

use crate::line::TraceFileError;
use crate::stream::{StreamingTraceSource, TraceSummary};
use crate::writer::TraceWriter;
use fss_engine::FlowSource;

/// The shard an arrival with input port `src` belongs to (round-robin
/// by port): `src % shards` — the engine's port-sharding rule.
pub fn shard_of(src: u32, shards: usize) -> usize {
    src as usize % shards
}

/// The sub-trace path for shard `k` of `prefix`: `<prefix>.<k>.jsonl`.
pub fn shard_path(prefix: &str, k: usize) -> PathBuf {
    PathBuf::from(format!("{prefix}.{k}.jsonl"))
}

/// Split `input` into `shards` sub-traces `<prefix>.<k>.jsonl`,
/// round-robin by port shard (`src % shards`). Each sub-trace keeps the
/// input's port header, so it replays on the same switch. Returns one
/// `(path, summary)` per shard, in shard order.
///
/// The input is fully validated as it streams (a malformed line fails
/// the split with the line cited, like the in-memory loader); outputs
/// are validated by [`TraceWriter`] on the way out.
pub fn split_file(
    input: impl AsRef<Path>,
    prefix: &str,
    shards: usize,
) -> Result<Vec<(PathBuf, TraceSummary)>, TraceFileError> {
    let input = input.as_ref();
    if shards == 0 {
        return Err(TraceFileError::Parse {
            line: 0,
            msg: "trace split needs at least one shard".into(),
        });
    }
    let mut source = StreamingTraceSource::open(input)?;
    let ports = source.ports();
    let errors = source.error_handle();
    let mut writers = Vec::with_capacity(shards);
    for k in 0..shards {
        writers.push(TraceWriter::create(shard_path(prefix, k), ports)?);
    }
    while let Some(a) = source.next_arrival() {
        writers[shard_of(a.src, shards)].write_arrival(a.release, a.src, a.dst)?;
    }
    // A mid-stream validation failure ends the source early and parks
    // the error in the handle; surface it instead of a silent short
    // split.
    if let Some(e) = errors.get() {
        return Err(e);
    }
    let mut out = Vec::with_capacity(shards);
    for (k, w) in writers.into_iter().enumerate() {
        out.push((shard_path(prefix, k), w.finish()?));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::write_poisson_trace;
    use crate::stream::scan;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("fss-trace-split-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn split_partitions_by_port_shard() {
        let input = tmp("in.jsonl");
        let s = write_poisson_trace(&input, 6, 4.0, 30, 7).unwrap();
        let prefix = tmp("shard").display().to_string();
        let parts = split_file(&input, &prefix, 3).unwrap();
        assert_eq!(parts.len(), 3);
        let total: u64 = parts.iter().map(|(_, p)| p.flows).sum();
        assert_eq!(total, s.flows, "split must be a partition");
        for (k, (path, part)) in parts.iter().enumerate() {
            assert_eq!(part.ports, 6, "shards keep the input's switch size");
            // Re-scan from disk: every sub-trace must be a valid trace,
            // and hold only its shard's ports.
            let rescan = scan(path).unwrap();
            assert_eq!(rescan.flows, part.flows);
            let mut src = StreamingTraceSource::open(path).unwrap();
            while let Some(a) = src.next_arrival() {
                assert_eq!(shard_of(a.src, 3), k, "arrival on the wrong shard");
            }
            assert_eq!(src.error_handle().get(), None);
        }
    }

    #[test]
    fn zero_shards_is_rejected() {
        let input = tmp("in0.jsonl");
        write_poisson_trace(&input, 2, 1.0, 4, 1).unwrap();
        let prefix = tmp("none").display().to_string();
        assert!(split_file(&input, &prefix, 0).is_err());
    }

    #[test]
    fn single_shard_copies_the_trace() {
        let input = tmp("in1.jsonl");
        let s = write_poisson_trace(&input, 4, 3.0, 12, 9).unwrap();
        let prefix = tmp("one").display().to_string();
        let parts = split_file(&input, &prefix, 1).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].1.flows, s.flows);
        assert_eq!(parts[0].1.horizon, s.horizon);
    }
}
