//! Coflow-CSV → arrival-trace conversion.
//!
//! The coflow literature publishes datacenter workloads (most famously
//! the Facebook/Hadoop trace) as per-coflow records: a release time, a
//! set of mapper ports, a set of reducer ports, and a byte volume
//! shuffled between them. The paper's model schedules *unit* flows on
//! an `m×m` switch, so ingesting such a workload takes two
//! deterministic steps, both done here in one O(1)-memory pass:
//!
//! - **Port folding** — cluster port `p` maps to switch port `p % m`.
//!   Deterministic, no sampling: the same CSV always yields the same
//!   trace.
//! - **Byte → unit-flow quantization** — a coflow's bytes are split
//!   evenly over its mapper×reducer pairs, and each pair's share is
//!   rounded up to `ceil(share / quantum)` unit flows (at least one, so
//!   no pair vanishes).
//!
//! ## CSV schema
//!
//! One coflow per line, five comma-separated fields:
//!
//! ```text
//! coflow_id, release_ms, mappers, reducers, bytes
//! 1,         0,          0|1,     5|6,      4194304
//! ```
//!
//! `mappers`/`reducers` are `|`-separated cluster port lists. A first
//! line whose id column is non-numeric is treated as the column-header
//! row and skipped. Rows must be nondecreasing in `release_ms`
//! (published coflow traces are), which is what lets conversion stream.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use crate::line::TraceFileError;
use crate::stream::TraceSummary;
use crate::writer::TraceWriter;

/// Knobs for [`convert_file`]. `Default` matches the
/// `flowsched trace convert` CLI defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertOptions {
    /// Switch size to fold cluster ports onto.
    pub ports: usize,
    /// Bytes represented by one unit flow.
    pub quantum_bytes: u64,
    /// Milliseconds per scheduling round (release quantization).
    pub ms_per_round: u64,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            ports: 150,
            quantum_bytes: 1 << 20,
            ms_per_round: 1000,
        }
    }
}

/// One parsed CSV row.
struct CoflowRow {
    release_ms: u64,
    mappers: Vec<u32>,
    reducers: Vec<u32>,
    bytes: u64,
}

fn parse_port_list(field: &str, what: &str) -> Result<Vec<u32>, String> {
    let ports: Result<Vec<u32>, _> = field.split('|').map(|p| p.trim().parse::<u32>()).collect();
    match ports {
        Ok(v) if v.is_empty() => Err(format!("empty {what} port list")),
        Ok(v) => Ok(v),
        Err(e) => Err(format!("bad {what} port list {field:?}: {e}")),
    }
}

fn parse_row(line: &str) -> Result<CoflowRow, String> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() != 5 {
        return Err(format!(
            "expected 5 fields (coflow,release_ms,mappers,reducers,bytes), got {}",
            fields.len()
        ));
    }
    fields[0]
        .parse::<u64>()
        .map_err(|e| format!("bad coflow id {:?}: {e}", fields[0]))?;
    let release_ms = fields[1]
        .parse::<u64>()
        .map_err(|e| format!("bad release_ms {:?}: {e}", fields[1]))?;
    let mappers = parse_port_list(fields[2], "mapper")?;
    let reducers = parse_port_list(fields[3], "reducer")?;
    let bytes = fields[4]
        .parse::<u64>()
        .map_err(|e| format!("bad bytes {:?}: {e}", fields[4]))?;
    Ok(CoflowRow {
        release_ms,
        mappers,
        reducers,
        bytes,
    })
}

/// Unit flows per mapper×reducer pair for a coflow of `bytes` total
/// over `pairs` pairs: even split, rounded up to the quantum, floored
/// at one so no pair disappears.
pub fn units_per_pair(bytes: u64, pairs: u64, quantum_bytes: u64) -> u64 {
    let per_pair = bytes.div_ceil(pairs.max(1));
    per_pair.div_ceil(quantum_bytes.max(1)).max(1)
}

/// Stream a coflow CSV into an arrival-trace JSONL file.
///
/// One pass, O(largest row) memory: each row expands to
/// `mappers × reducers × units` arrival lines (mapper-major,
/// reducer-minor, units innermost — a fixed order, so conversion is
/// bit-for-bit deterministic). Errors cite the 1-based CSV line.
pub fn convert_file(
    csv: impl AsRef<Path>,
    out: impl AsRef<Path>,
    opts: ConvertOptions,
) -> Result<TraceSummary, TraceFileError> {
    let csv = csv.as_ref();
    let label = csv.display().to_string();
    let file = File::open(csv).map_err(|e| TraceFileError::io(&label, e))?;
    let reader = BufReader::with_capacity(1 << 18, file);
    let writer = TraceWriter::create(out, opts.ports.max(1))?;
    convert_stream(reader, &label, writer, opts)
}

/// The reader→writer conversion core behind [`convert_file`], for
/// callers that already hold a CSV stream (the bench registry converts
/// the checked-in sample into memory through this). The `writer` must
/// declare `opts.ports` ports.
pub fn convert_stream<R: BufRead, W: std::io::Write>(
    reader: R,
    label: &str,
    mut writer: TraceWriter<W>,
    opts: ConvertOptions,
) -> Result<TraceSummary, TraceFileError> {
    if opts.ports == 0 {
        return Err(TraceFileError::Parse {
            line: 0,
            msg: "cannot fold onto a zero-port switch".into(),
        });
    }
    debug_assert_eq!(writer.ports(), opts.ports);
    let m = opts.ports as u32;

    let mut prev_ms: Option<u64> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| TraceFileError::io(label, e))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let row = match parse_row(trimmed) {
            Ok(row) => row,
            Err(msg) => {
                // A first line whose *id column* is non-numeric is the
                // column-header row; a numeric id with other problems
                // is a genuinely bad data row.
                let non_numeric_id = trimmed
                    .split(',')
                    .next()
                    .is_some_and(|f| f.trim().parse::<u64>().is_err());
                if prev_ms.is_none() && line_no == 1 && non_numeric_id {
                    continue;
                }
                return Err(TraceFileError::Parse { line: line_no, msg });
            }
        };
        if let Some(prev) = prev_ms {
            if row.release_ms < prev {
                return Err(TraceFileError::Parse {
                    line: line_no,
                    msg: format!(
                        "release_ms {} after {prev} (coflow rows must be sorted by release)",
                        row.release_ms
                    ),
                });
            }
        }
        prev_ms = Some(row.release_ms);

        let release = row.release_ms / opts.ms_per_round.max(1);
        let pairs = (row.mappers.len() * row.reducers.len()) as u64;
        let units = units_per_pair(row.bytes, pairs, opts.quantum_bytes);
        for &mp in &row.mappers {
            let src = mp % m;
            for &rp in &row.reducers {
                let dst = rp % m;
                for _ in 0..units {
                    writer
                        .write_arrival(release, src, dst)
                        .map_err(|e| match e {
                            // Re-cite writer-side violations against the CSV
                            // line that produced them.
                            TraceFileError::UnsortedRelease { prev, next, .. } => {
                                TraceFileError::UnsortedRelease {
                                    line: line_no,
                                    prev,
                                    next,
                                }
                            }
                            other => other,
                        })?;
                }
            }
        }
    }
    if prev_ms.is_none() {
        return Err(TraceFileError::Parse {
            line: 0,
            msg: "no coflow rows in CSV".into(),
        });
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::scan_with;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("fss-trace-convert-tests");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn quantization_floors_at_one_unit_flow() {
        assert_eq!(units_per_pair(0, 4, 1 << 20), 1);
        assert_eq!(units_per_pair(1 << 20, 1, 1 << 20), 1);
        assert_eq!(units_per_pair((1 << 20) + 1, 1, 1 << 20), 2);
        assert_eq!(units_per_pair(4 << 20, 4, 1 << 20), 1);
        assert_eq!(units_per_pair(9 << 20, 4, 1 << 20), 3);
    }

    #[test]
    fn converts_with_header_folding_and_quantization() {
        let csv = dir().join("basic.csv");
        let out = dir().join("basic.jsonl");
        std::fs::write(
            &csv,
            "coflow,release_ms,mappers,reducers,bytes\n\
             1,0,0|1,2|3,4194304\n\
             2,2500,9,6,1048577\n",
        )
        .unwrap();
        let summary = convert_file(
            &csv,
            &out,
            ConvertOptions {
                ports: 4,
                quantum_bytes: 1 << 20,
                ms_per_round: 1000,
            },
        )
        .unwrap();
        // Coflow 1: 4 MiB over 4 pairs = 1 unit each → 4 flows at round 0.
        // Coflow 2: 1 MiB + 1 over 1 pair = 2 units, round 2, ports 9%4=1, 6%4=2.
        assert_eq!(summary.ports, 4);
        assert_eq!(summary.flows, 6);
        assert_eq!(summary.horizon, 3);
        let mut seen = Vec::new();
        scan_with(&out, |a| seen.push((a.release, a.src, a.dst))).unwrap();
        assert_eq!(
            seen,
            vec![
                (0, 0, 2),
                (0, 0, 3),
                (0, 1, 2),
                (0, 1, 3),
                (2, 1, 2),
                (2, 1, 2)
            ]
        );
    }

    #[test]
    fn conversion_is_deterministic() {
        let csv = dir().join("det.csv");
        let a = dir().join("det-a.jsonl");
        let b = dir().join("det-b.jsonl");
        std::fs::write(&csv, "1,0,0|5|7,2|3,8388608\n2,9000,4,1|6,123\n").unwrap();
        let opts = ConvertOptions {
            ports: 6,
            ..ConvertOptions::default()
        };
        convert_file(&csv, &a, opts).unwrap();
        convert_file(&csv, &b, opts).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    }

    #[test]
    fn errors_cite_csv_lines() {
        let csv = dir().join("bad.csv");
        let out = dir().join("bad.jsonl");

        std::fs::write(&csv, "1,0,0,1,10\n2,5,oops,1,10\n").unwrap();
        let err = convert_file(&csv, &out, ConvertOptions::default()).unwrap_err();
        assert!(
            matches!(err, TraceFileError::Parse { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("mapper"), "{err}");

        std::fs::write(&csv, "1,5000,0,1,10\n2,4000,0,1,10\n").unwrap();
        let err = convert_file(&csv, &out, ConvertOptions::default()).unwrap_err();
        assert!(
            matches!(err, TraceFileError::Parse { line: 2, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("sorted"), "{err}");

        std::fs::write(&csv, "coflow,release_ms,mappers,reducers,bytes\n").unwrap();
        let err = convert_file(&csv, &out, ConvertOptions::default()).unwrap_err();
        assert!(err.to_string().contains("no coflow rows"), "{err}");

        std::fs::write(&csv, "1,0,0,1\n").unwrap();
        let err = convert_file(&csv, &out, ConvertOptions::default()).unwrap_err();
        assert!(err.to_string().contains("expected 5 fields"), "{err}");
    }
}
