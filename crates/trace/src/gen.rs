//! Streaming synthetic-trace generation.
//!
//! Writes a seeded Poisson workload (the paper's §5.2.1 generator,
//! via [`fss_engine::PoissonSource`]) straight to disk through the
//! validating [`TraceWriter`] — arrivals are emitted as they are
//! drawn, so a 10⁸-flow trace costs the same peak memory as a
//! 10³-flow one. This is how the giant-trace tests manufacture inputs
//! far larger than RAM-resident loading could handle.

use std::path::Path;

use fss_engine::{FlowSource, PoissonSource};

use crate::line::TraceFileError;
use crate::stream::TraceSummary;
use crate::writer::TraceWriter;

/// Stream a Poisson(`rate`) workload on an `m×m` switch for `rounds`
/// rounds into a trace file at `path`. Fully seeded: same arguments,
/// byte-identical file.
pub fn write_poisson_trace(
    path: impl AsRef<Path>,
    m: usize,
    rate: f64,
    rounds: u64,
    seed: u64,
) -> Result<TraceSummary, TraceFileError> {
    if m == 0 {
        return Err(TraceFileError::Parse {
            line: 0,
            msg: "switch needs at least one port".into(),
        });
    }
    if !(rate >= 0.0 && rate.is_finite()) {
        return Err(TraceFileError::Parse {
            line: 0,
            msg: format!("rate must be nonnegative and finite, got {rate}"),
        });
    }
    let mut source = PoissonSource::new(m, rate, Some(rounds), seed);
    let mut writer = TraceWriter::create(path, m)?;
    while let Some(a) = source.next_arrival() {
        writer.write_arrival(a.release, a.src, a.dst)?;
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::scan;

    fn dir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join("fss-trace-gen-tests");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn generated_traces_validate_and_are_seed_deterministic() {
        let a = dir().join("gen-a.jsonl");
        let b = dir().join("gen-b.jsonl");
        let c = dir().join("gen-c.jsonl");
        let sa = write_poisson_trace(&a, 8, 4.0, 50, 7).unwrap();
        let sb = write_poisson_trace(&b, 8, 4.0, 50, 7).unwrap();
        write_poisson_trace(&c, 8, 4.0, 50, 8).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        assert_ne!(std::fs::read(&a).unwrap(), std::fs::read(&c).unwrap());
        // The file passes the full streaming validator.
        assert_eq!(scan(&a).unwrap(), sa);
        assert_eq!(sa.ports, 8);
        assert!(sa.horizon <= 50);
        assert!(sa.flows > 0, "rate 4 over 50 rounds is never empty");
    }

    #[test]
    fn bad_parameters_are_rejected() {
        let p = dir().join("never.jsonl");
        assert!(write_poisson_trace(&p, 0, 1.0, 10, 0).is_err());
        assert!(write_poisson_trace(&p, 4, f64::NAN, 10, 0).is_err());
        assert!(write_poisson_trace(&p, 4, -1.0, 10, 0).is_err());
    }
}
