//! `fss-trace`: the streaming giant-trace subsystem.
//!
//! Everything trace-shaped in the workspace flows through this crate:
//!
//! - **Wire format** ([`mod@line`]) — the `{"ports":N}` header and
//!   `{"release":R,"src":S,"dst":D}` arrival line grammar
//!   ([`parse_trace_event`]), shared by the in-memory loader
//!   (`fss_sim::ArrivalTrace`), the streaming reader, and the serve
//!   ingest loop; plus the [`TraceFileError`] every reader reports
//!   through.
//! - **Streaming replay** ([`stream`]) — [`StreamingTraceSource`], a
//!   chunk-buffered [`fss_engine::FlowSource`] replaying arbitrarily
//!   large trace files at O(chunk) memory with full incremental
//!   validation; [`scan`] runs the same validator over a whole file
//!   without keeping any of it.
//! - **Emission** ([`writer`]) — [`TraceWriter`], the validating sink
//!   the generator, converter, and morpher write through: anything
//!   this crate produces is guaranteed to load.
//! - **Ingestion** ([`convert`]) — [`convert_file`] turns coflow-CSV
//!   workloads (the datacenter-trace schema of the coflow literature)
//!   into arrival traces by deterministic port folding and byte →
//!   unit-flow quantization.
//! - **Morphing** ([`morph`]) — composable O(1)-memory transforms
//!   (rate scale, dilation, seeded Zipf skew, port fold,
//!   window/truncate) over files ([`morph_file`]) or live sources
//!   ([`MorphedSource`]).
//! - **Generation** ([`gen`]) — [`write_poisson_trace`] streams seeded
//!   synthetic workloads straight to disk, the manufacturing step for
//!   traces larger than RAM.
//! - **Statistics** ([`stats`]) — [`scan_stats`] one-pass summaries
//!   (flows, horizon, per-round burstiness histogram, hot ports) for
//!   `flowsched trace stats`.
//! - **Sharding** ([`split`]) — [`split_file`] fans one giant trace out
//!   into `N` release-sorted sub-traces, round-robin by port shard
//!   (`src % N`, the pipelined engine's sharding rule), at O(chunk)
//!   memory.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod convert;
pub mod gen;
pub mod line;
pub mod morph;
pub mod split;
pub mod stats;
pub mod stream;
pub mod writer;

pub use convert::{convert_file, convert_stream, units_per_pair, ConvertOptions};
pub use gen::write_poisson_trace;
pub use line::{arrival_line, header_line, parse_trace_event, TraceEvent, TraceFileError};
pub use morph::{morph_file, MorphPipeline, MorphSpec, MorphedSource};
pub use split::{shard_of, shard_path, split_file};
pub use stats::{scan_stats, TraceStats};
pub use stream::{
    scan, scan_with, StreamingTraceReader, StreamingTraceSource, TraceErrorHandle, TraceSummary,
    DEFAULT_CHUNK,
};
pub use writer::TraceWriter;
