//! One-pass streaming trace statistics.
//!
//! Backs `flowsched trace stats FILE`: a single O(chunk + ports) pass
//! over an arbitrarily large trace producing the summary an operator
//! wants before committing a bench run to it — how many flows, over
//! how many rounds, how bursty (a [`LatencyHisto`] of per-round
//! arrival counts), and which ports run hot.

use std::path::Path;

use fss_telemetry::LatencyHisto;

use crate::line::TraceFileError;
use crate::stream::{scan_with, TraceSummary};

/// Everything one streaming pass learns about a trace.
#[derive(Debug, Clone)]
pub struct TraceStats {
    /// Header/flow/horizon summary (what [`crate::scan`] returns).
    pub summary: TraceSummary,
    /// Rounds with at least one arrival.
    pub active_rounds: u64,
    /// Log-bucketed histogram of arrivals per *active* round — the
    /// burstiness profile (p50/p99/max arrivals in a round).
    pub per_round: LatencyHisto,
    /// Arrivals per source port (length = ports).
    pub src_counts: Vec<u64>,
    /// Arrivals per destination port (length = ports).
    pub dst_counts: Vec<u64>,
}

impl TraceStats {
    /// Hottest source port as `(port, arrivals)`, ties to the lowest
    /// port; `None` for an arrival-free trace.
    pub fn busiest_src(&self) -> Option<(usize, u64)> {
        busiest(&self.src_counts)
    }

    /// Hottest destination port as `(port, arrivals)`.
    pub fn busiest_dst(&self) -> Option<(usize, u64)> {
        busiest(&self.dst_counts)
    }

    /// Mean arrivals per round over the whole horizon (the empirical
    /// Poisson rate a synthetic equivalent would need).
    pub fn mean_rate(&self) -> f64 {
        if self.summary.horizon == 0 {
            0.0
        } else {
            self.summary.flows as f64 / self.summary.horizon as f64
        }
    }
}

fn busiest(counts: &[u64]) -> Option<(usize, u64)> {
    counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(p, &c)| (p, c))
}

/// Compute [`TraceStats`] for a trace file in one streaming pass.
/// Memory is O(chunk + ports), independent of trace length. Any
/// validation failure is reported exactly as loading would report it.
pub fn scan_stats(path: impl AsRef<Path>) -> Result<TraceStats, TraceFileError> {
    let mut per_round = LatencyHisto::default();
    let mut src_counts: Vec<u64> = Vec::new();
    let mut dst_counts: Vec<u64> = Vec::new();
    let mut active_rounds = 0u64;
    let mut cur_round = 0u64;
    let mut cur_count = 0u64;
    let summary = scan_with(&path, |a| {
        let src = a.src as usize;
        let dst = a.dst as usize;
        if src >= src_counts.len() {
            src_counts.resize(src + 1, 0);
        }
        if dst >= dst_counts.len() {
            dst_counts.resize(dst + 1, 0);
        }
        src_counts[src] += 1;
        dst_counts[dst] += 1;
        if cur_count == 0 {
            cur_round = a.release;
            cur_count = 1;
            active_rounds = 1;
        } else if a.release == cur_round {
            cur_count += 1;
        } else {
            per_round.record(cur_count);
            cur_round = a.release;
            cur_count = 1;
            active_rounds += 1;
        }
    })?;
    if cur_count > 0 {
        per_round.record(cur_count);
    }
    // Port-count vectors span the declared switch, not just ports seen.
    src_counts.resize(summary.ports, 0);
    dst_counts.resize(summary.ports, 0);
    Ok(TraceStats {
        summary,
        active_rounds,
        per_round,
        src_counts,
        dst_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(name: &str, text: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join("fss-trace-stats-tests");
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        std::fs::write(&p, text).unwrap();
        p
    }

    #[test]
    fn one_pass_summarizes_rates_and_hot_ports() {
        let p = write(
            "stats.jsonl",
            "{\"ports\":4}\n\
             {\"release\":0,\"src\":1,\"dst\":2}\n\
             {\"release\":0,\"src\":1,\"dst\":3}\n\
             {\"release\":0,\"src\":1,\"dst\":2}\n\
             {\"release\":4,\"src\":0,\"dst\":2}\n",
        );
        let stats = scan_stats(&p).unwrap();
        assert_eq!(stats.summary.ports, 4);
        assert_eq!(stats.summary.flows, 4);
        assert_eq!(stats.summary.horizon, 5);
        assert_eq!(stats.active_rounds, 2);
        assert_eq!(stats.per_round.count(), 2, "two active rounds recorded");
        assert_eq!(stats.per_round.max(), 3, "round 0 had 3 arrivals");
        assert_eq!(stats.busiest_src(), Some((1, 3)));
        assert_eq!(stats.busiest_dst(), Some((2, 3)));
        assert_eq!(stats.src_counts, vec![1, 3, 0, 0]);
        assert_eq!(stats.dst_counts, vec![0, 0, 3, 1]);
        assert!((stats.mean_rate() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_body_yields_zeroed_stats() {
        let p = write("empty.jsonl", "{\"ports\":3}\n");
        let stats = scan_stats(&p).unwrap();
        assert_eq!(stats.summary.flows, 0);
        assert_eq!(stats.active_rounds, 0);
        assert_eq!(stats.per_round.count(), 0);
        assert_eq!(stats.busiest_src(), None);
        assert_eq!(stats.mean_rate(), 0.0);
        assert_eq!(stats.src_counts.len(), 3);
    }

    #[test]
    fn validation_failures_surface_as_load_errors() {
        let p = write(
            "bad.jsonl",
            "{\"ports\":2}\n{\"release\":0,\"src\":0,\"dst\":1}\nnope\n",
        );
        assert!(matches!(
            scan_stats(&p),
            Err(TraceFileError::Parse { line: 3, .. })
        ));
    }
}
