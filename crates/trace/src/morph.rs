//! Composable streaming trace morphing.
//!
//! A [`MorphPipeline`] turns one workload into a family: take a
//! converted datacenter trace and produce a 2×-load variant, a
//! hotspot-skewed variant, a folded-down-to-32-ports variant, or a
//! one-day window — each a single reader→writer pass at O(1) memory,
//! so the transforms compose on traces far larger than RAM.
//!
//! Every transform maps arrivals *in order* and preserves release
//! sortedness (each release map is a nondecreasing function of the
//! input release), so the output of any pipeline is again a valid
//! trace. Skew injection is the only randomized transform and is
//! seeded: the same spec on the same input is bit-for-bit
//! deterministic.

use fss_core::prelude::*;
use fss_engine::FlowSource;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

use crate::line::TraceFileError;
use crate::stream::{StreamingTraceSource, TraceSummary};
use crate::writer::TraceWriter;

/// One streaming transform. Applied in sequence by [`MorphPipeline`],
/// in the order given (which is the CLI flag order for
/// `flowsched trace morph`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MorphSpec {
    /// Compress time: `release / factor` (a rate scale-up — the same
    /// flows arrive in fewer rounds). Factor must be ≥ 1.
    ScaleRate(f64),
    /// Stretch time: `release * factor` (a rate scale-down). Factor
    /// must be ≥ 1; integral factors keep rounds exact.
    Dilate(f64),
    /// Resample `src` and `dst` from a Zipf(theta) distribution over
    /// the current port range, seeded — injects hotspot ports while
    /// keeping releases (and hence load-in-time) intact.
    Skew {
        /// Zipf exponent (larger = more skewed). Must be > 0.
        theta: f64,
        /// RNG seed; same seed + input → identical output.
        seed: u64,
    },
    /// Fold onto a smaller switch: ports map to `p % m`, and the
    /// stream's declared port count becomes `m`.
    Fold(usize),
    /// Keep only releases in `[from, to)` and rebase them to start at
    /// 0. Exhausts the stream at `to` (sorted input), so windowing a
    /// giant trace reads only the prefix it needs.
    Window {
        /// First release kept (inclusive).
        from: u64,
        /// First release dropped (exclusive end).
        to: u64,
    },
    /// Keep only the first `n` arrivals.
    Truncate(u64),
}

impl MorphSpec {
    /// The declared port count downstream of this transform, given the
    /// count upstream.
    fn ports_out(&self, ports_in: usize) -> usize {
        match self {
            MorphSpec::Fold(m) => *m,
            _ => ports_in,
        }
    }

    fn validate(&self, ports_in: usize) -> Result<(), String> {
        match self {
            MorphSpec::ScaleRate(f) | MorphSpec::Dilate(f) => {
                if !f.is_finite() || *f < 1.0 {
                    return Err(format!("morph factor must be >= 1, got {f}"));
                }
            }
            MorphSpec::Skew { theta, .. } => {
                if !theta.is_finite() || *theta <= 0.0 {
                    return Err(format!("zipf theta must be > 0, got {theta}"));
                }
            }
            MorphSpec::Fold(m) => {
                if *m == 0 {
                    return Err("cannot fold onto a zero-port switch".into());
                }
                if *m > ports_in {
                    return Err(format!(
                        "fold target {m} exceeds current {ports_in} ports (folding only shrinks)"
                    ));
                }
            }
            MorphSpec::Window { from, to } => {
                if from >= to {
                    return Err(format!("empty window [{from}, {to})"));
                }
            }
            MorphSpec::Truncate(0) => return Err("truncate to zero flows".into()),
            MorphSpec::Truncate(_) => {}
        }
        Ok(())
    }
}

/// Zipf(theta) sampler over `0..n` by inverse-CDF lookup (binary
/// search over the cumulative weights). Built once per skew stage:
/// O(n) memory in the *port count*, never in the trace length.
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, theta: f64) -> ZipfSampler {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(theta);
            cdf.push(total);
        }
        for w in &mut cdf {
            *w /= total;
        }
        ZipfSampler { cdf }
    }

    fn sample(&self, rng: &mut SmallRng) -> u32 {
        let u: f64 = rng.gen();
        // First bucket whose cumulative weight covers u.
        self.cdf.partition_point(|&w| w < u) as u32
    }
}

/// Per-transform streaming state.
enum Stage {
    ScaleRate(f64),
    Dilate(f64),
    Skew { sampler: ZipfSampler, rng: SmallRng },
    Fold(u32),
    Window { from: u64, to: u64, exhausted: bool },
    Truncate { left: u64 },
}

impl Stage {
    fn new(spec: &MorphSpec, ports_in: usize) -> Stage {
        match *spec {
            MorphSpec::ScaleRate(f) => Stage::ScaleRate(f),
            MorphSpec::Dilate(f) => Stage::Dilate(f),
            MorphSpec::Skew { theta, seed } => Stage::Skew {
                sampler: ZipfSampler::new(ports_in, theta),
                rng: SmallRng::seed_from_u64(seed),
            },
            MorphSpec::Fold(m) => Stage::Fold(m as u32),
            MorphSpec::Window { from, to } => Stage::Window {
                from,
                to,
                exhausted: false,
            },
            MorphSpec::Truncate(n) => Stage::Truncate { left: n },
        }
    }

    /// Map one arrival. `None` drops it; setting `stop` ends the whole
    /// stream (sorted input means nothing later can pass).
    fn apply(&mut self, mut a: Arrival, stop: &mut bool) -> Option<Arrival> {
        match self {
            Stage::ScaleRate(f) => {
                a.release = (a.release as f64 / *f).floor() as u64;
                Some(a)
            }
            Stage::Dilate(f) => {
                a.release = (a.release as f64 * *f).floor() as u64;
                Some(a)
            }
            Stage::Skew { sampler, rng } => {
                a.src = sampler.sample(rng);
                a.dst = sampler.sample(rng);
                Some(a)
            }
            Stage::Fold(m) => {
                a.src %= *m;
                a.dst %= *m;
                Some(a)
            }
            Stage::Window {
                from,
                to,
                exhausted,
            } => {
                if a.release >= *to {
                    *exhausted = true;
                    *stop = true;
                    return None;
                }
                if a.release < *from {
                    return None;
                }
                a.release -= *from;
                Some(a)
            }
            Stage::Truncate { left } => {
                if *left == 0 {
                    *stop = true;
                    return None;
                }
                *left -= 1;
                Some(a)
            }
        }
    }
}

/// A validated, instantiated sequence of morph stages.
pub struct MorphPipeline {
    stages: Vec<Stage>,
    ports_out: usize,
    stopped: bool,
}

impl MorphPipeline {
    /// Build a pipeline over a stream currently declaring `ports_in`
    /// ports. Stages apply in the order given; each stage sees the
    /// port count left by the stages before it (a skew after a fold
    /// samples over the folded range).
    pub fn new(specs: &[MorphSpec], ports_in: usize) -> Result<MorphPipeline, String> {
        let mut ports = ports_in;
        let mut stages = Vec::with_capacity(specs.len());
        for spec in specs {
            spec.validate(ports)?;
            stages.push(Stage::new(spec, ports));
            ports = spec.ports_out(ports);
        }
        Ok(MorphPipeline {
            stages,
            ports_out: ports,
            stopped: false,
        })
    }

    /// The port count the morphed stream declares.
    pub fn ports_out(&self) -> usize {
        self.ports_out
    }

    /// True once a stage has ended the stream (window passed, truncate
    /// count reached) — the upstream reader can stop.
    pub fn stopped(&self) -> bool {
        self.stopped
    }

    /// Run one arrival through every stage. `None` means dropped (or
    /// stream over — check [`MorphPipeline::stopped`]).
    pub fn apply(&mut self, mut a: Arrival) -> Option<Arrival> {
        if self.stopped {
            return None;
        }
        for stage in &mut self.stages {
            let mut stop = false;
            let out = stage.apply(a, &mut stop);
            if stop {
                self.stopped = true;
            }
            a = out?;
        }
        Some(a)
    }
}

/// A [`FlowSource`] adapter running an upstream source through a morph
/// pipeline, reassigning dense sequence ids to the survivors.
pub struct MorphedSource<S: FlowSource> {
    inner: S,
    pipeline: MorphPipeline,
    next_id: u64,
}

impl<S: FlowSource> MorphedSource<S> {
    /// Wrap `inner` with the given morph specs.
    pub fn new(inner: S, specs: &[MorphSpec]) -> Result<MorphedSource<S>, String> {
        if inner.m_in() != inner.m_out() {
            return Err("morphing requires a square (m x m) source".into());
        }
        let pipeline = MorphPipeline::new(specs, inner.m_in())?;
        Ok(MorphedSource {
            inner,
            pipeline,
            next_id: 0,
        })
    }
}

impl<S: FlowSource> FlowSource for MorphedSource<S> {
    fn m_in(&self) -> usize {
        self.pipeline.ports_out()
    }

    fn m_out(&self) -> usize {
        self.pipeline.ports_out()
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        while !self.pipeline.stopped() {
            let a = self.inner.next_arrival()?;
            if let Some(mut out) = self.pipeline.apply(a) {
                out.id = self.next_id;
                self.next_id += 1;
                return Some(out);
            }
        }
        None
    }

    fn len_hint(&self) -> Option<usize> {
        // Stages drop and truncate; the upstream count is only an
        // upper bound, so claim nothing.
        None
    }
}

/// Stream `input` through a morph pipeline into `output`: one
/// reader→writer pass at O(1) memory (plus O(ports) for skew tables).
pub fn morph_file(
    input: impl AsRef<Path>,
    output: impl AsRef<Path>,
    specs: &[MorphSpec],
) -> Result<TraceSummary, TraceFileError> {
    let mut source = StreamingTraceSource::open(input)?;
    let mut pipeline = MorphPipeline::new(specs, source.ports())
        .map_err(|msg| TraceFileError::Parse { line: 0, msg })?;
    let mut writer = TraceWriter::create(output, pipeline.ports_out())?;
    while let Some(a) = source.next_arrival() {
        if let Some(out) = pipeline.apply(a) {
            writer.write_arrival(out.release, out.src, out.dst)?;
        }
        if pipeline.stopped() {
            break;
        }
    }
    if let Some(err) = source.error_handle().get() {
        return Err(err);
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals(pairs: &[(u64, u32, u32)]) -> Vec<Arrival> {
        pairs
            .iter()
            .enumerate()
            .map(|(i, &(release, src, dst))| Arrival {
                id: i as u64,
                src,
                dst,
                release,
            })
            .collect()
    }

    fn run(specs: &[MorphSpec], ports: usize, input: &[(u64, u32, u32)]) -> Vec<(u64, u32, u32)> {
        let mut p = MorphPipeline::new(specs, ports).unwrap();
        let mut out = Vec::new();
        for a in arrivals(input) {
            if let Some(b) = p.apply(a) {
                out.push((b.release, b.src, b.dst));
            }
            if p.stopped() {
                break;
            }
        }
        out
    }

    #[test]
    fn scale_and_dilate_remap_releases_monotonically() {
        let input = [(0, 0, 1), (1, 0, 1), (5, 1, 0), (9, 1, 0)];
        assert_eq!(
            run(&[MorphSpec::ScaleRate(2.0)], 2, &input),
            vec![(0, 0, 1), (0, 0, 1), (2, 1, 0), (4, 1, 0)]
        );
        assert_eq!(
            run(&[MorphSpec::Dilate(3.0)], 2, &input),
            vec![(0, 0, 1), (3, 0, 1), (15, 1, 0), (27, 1, 0)]
        );
    }

    #[test]
    fn fold_shrinks_ports_and_updates_declared_size() {
        let p = MorphPipeline::new(&[MorphSpec::Fold(2)], 8).unwrap();
        assert_eq!(p.ports_out(), 2);
        assert_eq!(
            run(&[MorphSpec::Fold(2)], 8, &[(0, 5, 6), (1, 2, 7)]),
            vec![(0, 1, 0), (1, 0, 1)]
        );
    }

    #[test]
    fn window_keeps_rebases_and_stops_early() {
        let input = [(0, 0, 1), (3, 0, 1), (4, 1, 0), (7, 1, 0), (9, 0, 1)];
        assert_eq!(
            run(&[MorphSpec::Window { from: 3, to: 8 }], 2, &input),
            vec![(0, 0, 1), (1, 1, 0), (4, 1, 0)]
        );
        let mut p = MorphPipeline::new(&[MorphSpec::Window { from: 0, to: 4 }], 2).unwrap();
        for a in arrivals(&input) {
            p.apply(a);
        }
        assert!(p.stopped(), "window end exhausts the stream");
    }

    #[test]
    fn truncate_stops_after_n() {
        let input = [(0, 0, 1), (1, 0, 1), (2, 1, 0)];
        assert_eq!(
            run(&[MorphSpec::Truncate(2)], 2, &input),
            vec![(0, 0, 1), (1, 0, 1)]
        );
    }

    #[test]
    fn skew_is_seed_deterministic_and_in_range() {
        let input: Vec<(u64, u32, u32)> = (0..200).map(|i| (i / 4, 0, 1)).collect();
        let spec = [MorphSpec::Skew {
            theta: 1.2,
            seed: 42,
        }];
        let a = run(&spec, 16, &input);
        let b = run(&spec, 16, &input);
        assert_eq!(a, b, "same seed, same skew");
        assert!(a.iter().all(|&(_, s, d)| s < 16 && d < 16));
        // Zipf concentrates mass on low ranks: port 0 must dominate.
        let zeros = a.iter().filter(|&&(_, s, _)| s == 0).count();
        assert!(zeros > a.len() / 4, "port 0 drew {zeros}/{}", a.len());
        let c = run(
            &[MorphSpec::Skew {
                theta: 1.2,
                seed: 43,
            }],
            16,
            &input,
        );
        assert_ne!(a, c, "different seed, different skew");
    }

    #[test]
    fn stages_compose_in_order_with_running_port_count() {
        // Fold-then-skew samples over the folded range.
        let specs = [
            MorphSpec::Fold(4),
            MorphSpec::Skew {
                theta: 1.0,
                seed: 1,
            },
        ];
        let input: Vec<(u64, u32, u32)> = (0..64).map(|i| (i, (i % 16) as u32, 0)).collect();
        let out = run(&specs, 16, &input);
        assert!(out.iter().all(|&(_, s, d)| s < 4 && d < 4));
        // Skew-then-fold must differ from fold-then-skew (order matters).
        let rev = [specs[1], specs[0]];
        assert_ne!(run(&rev, 16, &input), out);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(MorphPipeline::new(&[MorphSpec::ScaleRate(0.5)], 4).is_err());
        assert!(MorphPipeline::new(&[MorphSpec::Fold(8)], 4).is_err());
        assert!(MorphPipeline::new(&[MorphSpec::Fold(0)], 4).is_err());
        assert!(MorphPipeline::new(
            &[MorphSpec::Skew {
                theta: 0.0,
                seed: 0
            }],
            4
        )
        .is_err());
        assert!(MorphPipeline::new(&[MorphSpec::Window { from: 5, to: 5 }], 4).is_err());
        assert!(MorphPipeline::new(&[MorphSpec::Truncate(0)], 4).is_err());
        // Fold target validated against the *running* count.
        assert!(MorphPipeline::new(&[MorphSpec::Fold(2), MorphSpec::Fold(3)], 8).is_err());
    }

    #[test]
    fn morphed_source_reassigns_dense_ids() {
        use crate::stream::StreamingTraceReader;
        use std::io::Cursor;
        let text = "{\"ports\":4}\n{\"release\":0,\"src\":0,\"dst\":1}\n{\"release\":3,\"src\":2,\"dst\":3}\n{\"release\":6,\"src\":1,\"dst\":2}\n";
        let inner = StreamingTraceReader::from_reader(Cursor::new(text.as_bytes()), "<t>").unwrap();
        let mut src = MorphedSource::new(inner, &[MorphSpec::Window { from: 3, to: 7 }]).unwrap();
        let a = src.next_arrival().unwrap();
        let b = src.next_arrival().unwrap();
        assert_eq!((a.id, a.release), (0, 0));
        assert_eq!((b.id, b.release), (1, 3));
        assert!(src.next_arrival().is_none());
    }
}
