//! Streaming trace emission: header + canonical lines, validated as
//! they are written.
//!
//! [`TraceWriter`] is the single sink the generator, converter, and
//! morph pipeline all write through. It enforces the same invariants on
//! the way *out* that readers enforce on the way in — port range and
//! nondecreasing releases, cited by the on-disk 1-based line number —
//! so any file this crate produces is guaranteed to load (in-memory or
//! streaming) without error.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::line::{arrival_line, header_line, TraceFileError};
use crate::stream::TraceSummary;

/// A validating, buffered writer of arrival-trace JSONL.
pub struct TraceWriter<W: Write> {
    out: W,
    label: String,
    ports: usize,
    /// 1-based number of the line about to be written (header = 1).
    next_line: usize,
    prev_release: u64,
    flows: u64,
    horizon: u64,
}

impl TraceWriter<BufWriter<File>> {
    /// Create (truncate) `path` and write the `{"ports":N}` header.
    pub fn create(
        path: impl AsRef<Path>,
        ports: usize,
    ) -> Result<TraceWriter<BufWriter<File>>, TraceFileError> {
        let path = path.as_ref();
        let label = path.display().to_string();
        let file = File::create(path).map_err(|e| TraceFileError::io(&label, e))?;
        TraceWriter::from_writer(BufWriter::with_capacity(1 << 18, file), label, ports)
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wrap any writer; emits the header immediately. `label` names the
    /// sink in errors.
    pub fn from_writer(
        mut out: W,
        label: impl Into<String>,
        ports: usize,
    ) -> Result<TraceWriter<W>, TraceFileError> {
        let label = label.into();
        if ports == 0 {
            return Err(TraceFileError::Parse {
                line: 1,
                msg: "header declares zero ports".into(),
            });
        }
        writeln!(out, "{}", header_line(ports)).map_err(|e| TraceFileError::io(&label, e))?;
        Ok(TraceWriter {
            out,
            label,
            ports,
            next_line: 2,
            prev_release: 0,
            flows: 0,
            horizon: 0,
        })
    }

    /// Switch size this writer's header declared.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Arrivals written so far.
    pub fn flows(&self) -> u64 {
        self.flows
    }

    /// Append one arrival line, enforcing the reader-side invariants.
    pub fn write_arrival(
        &mut self,
        release: u64,
        src: u32,
        dst: u32,
    ) -> Result<(), TraceFileError> {
        if src as usize >= self.ports || dst as usize >= self.ports {
            return Err(TraceFileError::PortOutOfRange {
                line: self.next_line,
                port: src.max(dst),
                ports: self.ports,
            });
        }
        if release < self.prev_release {
            return Err(TraceFileError::UnsortedRelease {
                line: self.next_line,
                prev: self.prev_release,
                next: release,
            });
        }
        writeln!(self.out, "{}", arrival_line(release, src, dst))
            .map_err(|e| TraceFileError::io(&self.label, e))?;
        self.prev_release = release;
        self.horizon = release + 1;
        self.flows += 1;
        self.next_line += 1;
        Ok(())
    }

    /// Flush and return what was written.
    pub fn finish(mut self) -> Result<TraceSummary, TraceFileError> {
        self.out
            .flush()
            .map_err(|e| TraceFileError::io(&self.label, e))?;
        Ok(TraceSummary {
            ports: self.ports,
            flows: self.flows,
            horizon: self.horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StreamingTraceReader;
    use fss_engine::FlowSource;
    use std::io::Cursor;

    #[test]
    fn written_traces_read_back_verbatim() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::from_writer(&mut buf, "<buf>", 4).unwrap();
            w.write_arrival(0, 0, 3).unwrap();
            w.write_arrival(0, 1, 2).unwrap();
            w.write_arrival(5, 3, 0).unwrap();
            let s = w.finish().unwrap();
            assert_eq!(s.flows, 3);
            assert_eq!(s.horizon, 6);
        }
        let mut r =
            StreamingTraceReader::from_reader(Cursor::new(buf.as_slice()), "<buf>").unwrap();
        assert_eq!(r.ports(), 4);
        let mut n = 0;
        while let Some(a) = r.next_arrival() {
            assert!((a.src as usize) < 4 && (a.dst as usize) < 4);
            n += 1;
        }
        assert_eq!(r.error_handle().get(), None);
        assert_eq!(n, 3);
    }

    #[test]
    fn writer_rejects_what_readers_would_reject() {
        assert!(matches!(
            TraceWriter::from_writer(Vec::new(), "<buf>", 0),
            Err(TraceFileError::Parse { line: 1, .. })
        ));

        let mut w = TraceWriter::from_writer(Vec::new(), "<buf>", 2).unwrap();
        assert_eq!(
            w.write_arrival(0, 2, 0),
            Err(TraceFileError::PortOutOfRange {
                line: 2,
                port: 2,
                ports: 2
            })
        );
        w.write_arrival(4, 0, 1).unwrap();
        assert_eq!(
            w.write_arrival(3, 1, 0),
            Err(TraceFileError::UnsortedRelease {
                line: 3,
                prev: 4,
                next: 3
            })
        );
    }
}
