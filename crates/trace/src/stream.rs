//! Chunk-buffered streaming replay of arrival-trace files.
//!
//! [`StreamingTraceSource`] is a [`FlowSource`] over an on-disk JSONL
//! arrival trace that never materializes the file: it holds one
//! fixed-size chunk of parsed arrivals plus one line buffer, so a
//! 10⁸-flow trace replays at the same peak memory as a 10³-flow one.
//! Validation — header shape, port range, the sorted-release
//! [`FlowSource`] contract, 1-based line numbers — is performed
//! incrementally as chunks are refilled, carrying the running state
//! (previous release, line count) across chunk boundaries, so a
//! malformed file is rejected with the *same* diagnosis as the
//! in-memory loader (`fss_sim::ArrivalTrace::from_jsonl`).
//!
//! [`FlowSource::next_arrival`] cannot return an error, so a mid-stream
//! validation failure ends the stream and parks the error in a shared
//! [`TraceErrorHandle`] the caller keeps after boxing the source —
//! execution paths check it after the run and fail loudly instead of
//! silently truncating. Paths that want load-time errors (the scenario
//! layer, `bench --trace --stream`) use [`StreamingTraceSource::open_validated`]
//! or [`scan`], which stream the whole file through the same validator
//! first, still at O(chunk) memory.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::sync::{Arc, Mutex};

use fss_core::prelude::*;
use fss_engine::FlowSource;

use crate::line::{parse_trace_event, TraceEvent, TraceFileError};

/// Arrivals buffered per refill. Each entry is one [`Arrival`] (24
/// bytes), so the default chunk costs ~200 KiB — invisible next to the
/// engine's own queue state, large enough to amortize the per-chunk
/// bookkeeping.
pub const DEFAULT_CHUNK: usize = 8192;

/// What a full validation pass learned about a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Switch size declared by the header.
    pub ports: usize,
    /// Total arrivals.
    pub flows: u64,
    /// One past the last release round (0 for an arrival-free trace).
    pub horizon: u64,
}

/// Shared slot a [`StreamingTraceSource`] parks a mid-stream validation
/// error in. Clone it before boxing the source into an engine run, and
/// check it afterwards: `None` means the stream ended cleanly.
#[derive(Debug, Clone, Default)]
pub struct TraceErrorHandle(Arc<Mutex<Option<TraceFileError>>>);

impl TraceErrorHandle {
    /// The recorded error, if the stream failed validation mid-replay.
    pub fn get(&self) -> Option<TraceFileError> {
        self.0.lock().expect("trace error slot").clone()
    }

    fn set(&self, err: TraceFileError) {
        let mut slot = self.0.lock().expect("trace error slot");
        // First error wins: it names the first offending line.
        slot.get_or_insert(err);
    }
}

/// A [`FlowSource`] that replays a JSONL arrival trace from any
/// buffered reader at O(chunk) memory. Use the [`StreamingTraceSource`]
/// alias for the common file-backed case.
pub struct StreamingTraceReader<R: BufRead> {
    reader: R,
    label: String,
    ports: usize,
    /// 1-based number of the last line consumed from the reader.
    line_no: usize,
    prev_release: u64,
    next_id: u64,
    horizon: Option<u64>,
    len_hint: Option<usize>,
    chunk: VecDeque<Arrival>,
    chunk_cap: usize,
    line_buf: String,
    done: bool,
    error: TraceErrorHandle,
}

impl<R: BufRead> std::fmt::Debug for StreamingTraceReader<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingTraceReader")
            .field("label", &self.label)
            .field("ports", &self.ports)
            .field("line_no", &self.line_no)
            .field("buffered", &self.chunk.len())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

/// The file-backed streaming trace source.
pub type StreamingTraceSource = StreamingTraceReader<BufReader<File>>;

impl StreamingTraceSource {
    /// Open a trace file and validate its header (O(1) work). The body
    /// is validated incrementally during replay; see
    /// [`StreamingTraceSource::open_validated`] for load-time errors.
    pub fn open(path: impl AsRef<Path>) -> Result<StreamingTraceSource, TraceFileError> {
        let path = path.as_ref();
        let label = path.display().to_string();
        let file = File::open(path).map_err(|e| TraceFileError::io(&label, e))?;
        StreamingTraceReader::from_reader(BufReader::with_capacity(1 << 18, file), label)
    }

    /// Open a trace file *after* streaming a full validation pass over
    /// it ([`scan`]): any malformed line is reported now, exactly like
    /// the in-memory loader, and the replay gets a length hint so the
    /// engine can preallocate. Peak memory stays O(chunk); the file is
    /// read twice.
    pub fn open_validated(path: impl AsRef<Path>) -> Result<StreamingTraceSource, TraceFileError> {
        let path = path.as_ref();
        let summary = scan(path)?;
        let mut source = StreamingTraceSource::open(path)?;
        source.len_hint = Some(summary.flows as usize);
        Ok(source)
    }
}

impl<R: BufRead> StreamingTraceReader<R> {
    /// Wrap any buffered reader positioned at the start of a trace
    /// (header line first). `label` names the stream in errors.
    pub fn from_reader(
        reader: R,
        label: impl Into<String>,
    ) -> Result<StreamingTraceReader<R>, TraceFileError> {
        let mut s = StreamingTraceReader {
            reader,
            label: label.into(),
            ports: 0,
            line_no: 0,
            prev_release: 0,
            next_id: 0,
            horizon: None,
            len_hint: None,
            chunk: VecDeque::new(),
            chunk_cap: DEFAULT_CHUNK,
            line_buf: String::new(),
            done: false,
            error: TraceErrorHandle::default(),
        };
        s.read_header()?;
        Ok(s)
    }

    /// Replay only arrivals with `release < horizon` (`None` = all).
    /// Clears the length hint: counting under a horizon would cost a
    /// scan.
    pub fn with_horizon(mut self, horizon: Option<u64>) -> Self {
        self.horizon = horizon;
        if horizon.is_some() {
            self.len_hint = None;
        }
        self
    }

    /// Override the chunk size (arrivals buffered per refill).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk_cap = chunk.max(1);
        self
    }

    /// Switch size declared by the header.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// The shared error slot. Clone it before handing the source to an
    /// engine run, and check it afterwards: a mid-stream validation
    /// failure ends the stream early and records itself here.
    pub fn error_handle(&self) -> TraceErrorHandle {
        self.error.clone()
    }

    /// Read one raw line; `Ok(false)` at EOF. Tracks line numbers.
    fn next_line(&mut self) -> Result<bool, TraceFileError> {
        self.line_buf.clear();
        let n = self
            .reader
            .read_line(&mut self.line_buf)
            .map_err(|e| TraceFileError::io(&self.label, e))?;
        if n == 0 {
            return Ok(false);
        }
        self.line_no += 1;
        Ok(true)
    }

    /// Consume lines until the header, mirroring the in-memory loader's
    /// diagnostics (blank lines skipped, errors cite the real line).
    fn read_header(&mut self) -> Result<(), TraceFileError> {
        loop {
            if !self.next_line()? {
                return Err(TraceFileError::Parse {
                    line: 1,
                    msg: "empty trace file (expected a {\"ports\":N} header)".into(),
                });
            }
            if self.line_buf.trim().is_empty() {
                continue;
            }
            let line = self.line_no;
            return match parse_trace_event(self.line_buf.trim_end_matches(['\n', '\r'])) {
                Ok(TraceEvent::Header { ports: 0 }) => Err(TraceFileError::Parse {
                    line,
                    msg: "header declares zero ports".into(),
                }),
                Ok(TraceEvent::Header { ports }) => {
                    self.ports = ports;
                    Ok(())
                }
                Ok(TraceEvent::Arrival { .. }) => Err(TraceFileError::Parse {
                    line,
                    msg: "expected a {\"ports\":N} header before arrivals".into(),
                }),
                Err(e) => Err(TraceFileError::Parse {
                    line,
                    msg: format!("bad header: {e}"),
                }),
            };
        }
    }

    /// Parse and validate lines until the chunk is full or the stream
    /// ends. The validation state (previous release, line numbers, next
    /// id) lives on `self`, so it carries across chunk boundaries.
    fn refill(&mut self) {
        while self.chunk.len() < self.chunk_cap && !self.done {
            match self.next_line() {
                Err(e) => {
                    self.error.set(e);
                    self.done = true;
                    return;
                }
                Ok(false) => {
                    self.done = true;
                    return;
                }
                Ok(true) => {}
            }
            if self.line_buf.trim().is_empty() {
                continue;
            }
            let line = self.line_no;
            match parse_trace_event(self.line_buf.trim_end_matches(['\n', '\r'])) {
                Ok(TraceEvent::Arrival { release, src, dst }) => {
                    if src as usize >= self.ports || dst as usize >= self.ports {
                        self.error.set(TraceFileError::PortOutOfRange {
                            line,
                            port: src.max(dst),
                            ports: self.ports,
                        });
                        self.done = true;
                        return;
                    }
                    if release < self.prev_release {
                        self.error.set(TraceFileError::UnsortedRelease {
                            line,
                            prev: self.prev_release,
                            next: release,
                        });
                        self.done = true;
                        return;
                    }
                    self.prev_release = release;
                    if let Some(h) = self.horizon {
                        if release >= h {
                            // Sorted releases: nothing later can pass.
                            self.done = true;
                            return;
                        }
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    self.chunk.push_back(Arrival {
                        id,
                        src,
                        dst,
                        release,
                    });
                }
                Ok(TraceEvent::Header { .. }) => {
                    self.error.set(TraceFileError::Parse {
                        line,
                        msg: "unexpected second header".into(),
                    });
                    self.done = true;
                    return;
                }
                Err(msg) => {
                    self.error.set(TraceFileError::Parse { line, msg });
                    self.done = true;
                    return;
                }
            }
        }
    }
}

impl<R: BufRead> FlowSource for StreamingTraceReader<R> {
    fn m_in(&self) -> usize {
        self.ports
    }

    fn m_out(&self) -> usize {
        self.ports
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.chunk.is_empty() && !self.done {
            self.refill();
        }
        self.chunk.pop_front()
    }

    fn len_hint(&self) -> Option<usize> {
        self.len_hint
    }
}

/// Stream a full validation pass over a trace file at O(chunk) memory:
/// every line is parsed and checked exactly as replay would, and the
/// first violation is returned as the same error the in-memory loader
/// reports. On success, returns the file's [`TraceSummary`].
pub fn scan(path: impl AsRef<Path>) -> Result<TraceSummary, TraceFileError> {
    scan_with(path, |_| {})
}

/// [`scan`] with a per-arrival callback (in file order) — the one-pass
/// backbone behind `trace stats` and the converter's self-checks.
pub fn scan_with(
    path: impl AsRef<Path>,
    mut on_arrival: impl FnMut(&Arrival),
) -> Result<TraceSummary, TraceFileError> {
    let mut source = StreamingTraceSource::open(path)?;
    let mut flows = 0u64;
    let mut horizon = 0u64;
    while let Some(a) = source.next_arrival() {
        flows += 1;
        horizon = a.release + 1;
        on_arrival(&a);
    }
    if let Some(err) = source.error_handle().get() {
        return Err(err);
    }
    Ok(TraceSummary {
        ports: source.ports(),
        flows,
        horizon,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(text: &str) -> StreamingTraceReader<Cursor<&[u8]>> {
        StreamingTraceReader::from_reader(Cursor::new(text.as_bytes()), "<test>").unwrap()
    }

    fn try_reader(text: &str) -> Result<StreamingTraceReader<Cursor<&[u8]>>, TraceFileError> {
        StreamingTraceReader::from_reader(Cursor::new(text.as_bytes()), "<test>")
    }

    fn drain<R: BufRead>(mut s: StreamingTraceReader<R>) -> (Vec<Arrival>, Option<TraceFileError>) {
        let mut out = Vec::new();
        while let Some(a) = s.next_arrival() {
            out.push(a);
        }
        (out, s.error_handle().get())
    }

    #[test]
    fn replays_in_order_with_sequence_ids() {
        let s = reader("{\"ports\":4}\n{\"release\":0,\"src\":0,\"dst\":1}\n{\"release\":2,\"src\":3,\"dst\":2}\n");
        assert_eq!(s.ports(), 4);
        let (all, err) = drain(s);
        assert_eq!(err, None);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].id, 0);
        assert_eq!(all[1].id, 1);
        assert_eq!(all[1].release, 2);
    }

    #[test]
    fn blank_lines_and_missing_trailing_newline_are_tolerated() {
        let s = reader("\n{\"ports\":2}\n\n{\"release\":0,\"src\":0,\"dst\":1}\n\n{\"release\":1,\"src\":1,\"dst\":0}");
        let (all, err) = drain(s);
        assert_eq!(err, None);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn chunk_boundaries_do_not_break_validation_state() {
        // A 1-arrival chunk forces a refill per line; the sorted-release
        // check must still see across the boundary.
        let text = "{\"ports\":2}\n{\"release\":4,\"src\":0,\"dst\":1}\n{\"release\":3,\"src\":1,\"dst\":0}\n";
        let s = reader(text).with_chunk(1);
        let (all, err) = drain(s);
        assert_eq!(all.len(), 1, "valid prefix replays");
        assert_eq!(
            err,
            Some(TraceFileError::UnsortedRelease {
                line: 3,
                prev: 4,
                next: 3
            })
        );
    }

    #[test]
    fn header_diagnostics_match_the_in_memory_loader() {
        assert_eq!(
            try_reader("").unwrap_err(),
            TraceFileError::Parse {
                line: 1,
                msg: "empty trace file (expected a {\"ports\":N} header)".into()
            }
        );
        assert!(matches!(
            try_reader("{\"release\":0,\"src\":0,\"dst\":0}\n").unwrap_err(),
            TraceFileError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            try_reader("{\"ports\":0}\n").unwrap_err(),
            TraceFileError::Parse { line: 1, .. }
        ));
        assert!(matches!(
            try_reader("\n\nnot a header\n").unwrap_err(),
            TraceFileError::Parse { line: 3, .. }
        ));
    }

    #[test]
    fn body_violations_carry_line_numbers() {
        let s = reader("{\"ports\":2}\n{\"release\":0,\"src\":0,\"dst\":1}\n{\"release\":1,\"src\":2,\"dst\":0}\n");
        let (_, err) = drain(s);
        assert_eq!(
            err,
            Some(TraceFileError::PortOutOfRange {
                line: 3,
                port: 2,
                ports: 2
            })
        );

        let s = reader("{\"ports\":2}\n{\"release\":0,\"src\":0,\"dst\":1}\nnot json\n");
        let (_, err) = drain(s);
        assert!(matches!(err, Some(TraceFileError::Parse { line: 3, .. })));

        let s = reader("{\"ports\":2}\n{\"release\":0,\"src\":0,\"dst\":1}\n{\"ports\":2}\n");
        let (_, err) = drain(s);
        assert!(matches!(err, Some(TraceFileError::Parse { line: 3, .. })));
    }

    #[test]
    fn horizon_truncates_and_stops_reading() {
        let text = "{\"ports\":3}\n{\"release\":0,\"src\":0,\"dst\":1}\n{\"release\":2,\"src\":1,\"dst\":2}\n{\"release\":7,\"src\":2,\"dst\":0}\n";
        let s = reader(text).with_horizon(Some(3));
        let (all, err) = drain(s);
        assert_eq!(err, None);
        assert_eq!(all.len(), 2, "horizon drops the release-7 arrival");
        assert!(reader(text).with_horizon(Some(3)).len_hint().is_none());
    }

    #[test]
    fn scan_summarizes_files() {
        let dir = std::env::temp_dir().join("fss-trace-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.jsonl");
        std::fs::write(
            &path,
            "{\"ports\":5}\n{\"release\":1,\"src\":0,\"dst\":4}\n{\"release\":6,\"src\":2,\"dst\":3}\n",
        )
        .unwrap();
        let summary = scan(&path).unwrap();
        assert_eq!(
            summary,
            TraceSummary {
                ports: 5,
                flows: 2,
                horizon: 7
            }
        );
        let validated = StreamingTraceSource::open_validated(&path).unwrap();
        assert_eq!(validated.len_hint(), Some(2));

        std::fs::write(&path, "{\"ports\":5}\nbroken\n").unwrap();
        assert!(matches!(
            scan(&path),
            Err(TraceFileError::Parse { line: 2, .. })
        ));
        assert!(StreamingTraceSource::open_validated(&path).is_err());
    }

    #[test]
    fn missing_file_is_an_io_error() {
        assert!(matches!(
            StreamingTraceSource::open("/no/such/trace.jsonl"),
            Err(TraceFileError::Io { .. })
        ));
    }
}
