//! The trace wire format, one line at a time.
//!
//! This module owns the line-level grammar of arrival traces — the
//! `{"ports":N}` header and `{"release":R,"src":S,"dst":D}` arrival
//! shapes — and the error type every trace reader in the workspace
//! reports through. The in-memory loader (`fss_sim::ArrivalTrace`), the
//! streaming reader ([`crate::StreamingTraceSource`]), and the serve
//! ingest loop all recognize lines through [`parse_trace_event`], so a
//! file that loads as a trace replays identically as a live stream.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One trace arrival line (the on-disk form of an
/// [`fss_core::Arrival`]; ids are implicit sequence numbers, assigned
/// by the consumer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct TraceLine {
    pub(crate) release: u64,
    pub(crate) src: u32,
    pub(crate) dst: u32,
}

/// The trace header: the switch size the arrivals are addressed against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) struct TraceHeader {
    pub(crate) ports: usize,
}

/// One parsed line of the trace wire format — the trace → live event
/// bridge: the same JSONL lines that make up an on-disk trace can be
/// streamed to a live consumer (`flowsched serve`) one event at a time,
/// so a raw trace file *is* a valid ingest stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The `{"ports":N}` header line.
    Header {
        /// Declared switch size (`ports x ports`).
        ports: usize,
    },
    /// One `{"release":R,"src":S,"dst":D}` arrival line (the id is a
    /// sequence number, assigned by the consumer).
    Arrival {
        /// Release round.
        release: u64,
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
    },
}

/// Parse one line of the trace schema into a [`TraceEvent`].
///
/// This is the one place the line shapes are recognized: the in-memory
/// loader, the streaming reader, and the serve ingest loop all go
/// through it. Validation (port range, sorted releases) stays with the
/// consumer, which knows the stream context.
///
/// A line that parses as neither shape reports **both** candidate
/// errors: a malformed arrival (`{"release":0,"src":3}`, say) would
/// otherwise surface only the irrelevant header complaint, leaving the
/// actual field mistake undiagnosable.
pub fn parse_trace_event(line: &str) -> Result<TraceEvent, String> {
    // Arrivals outnumber the single header a million to one: try them
    // first.
    let arrival_err = match serde_json::from_str::<TraceLine>(line) {
        Ok(rec) => {
            return Ok(TraceEvent::Arrival {
                release: rec.release,
                src: rec.src,
                dst: rec.dst,
            })
        }
        Err(e) => e,
    };
    match serde_json::from_str::<TraceHeader>(line) {
        Ok(h) => Ok(TraceEvent::Header { ports: h.ports }),
        Err(header_err) => Err(format!(
            "not a trace event: as arrival {{\"release\":R,\"src\":S,\"dst\":D}}: {arrival_err}; \
             as header {{\"ports\":N}}: {header_err}"
        )),
    }
}

/// Render an arrival as its canonical trace line (no trailing newline).
pub fn arrival_line(release: u64, src: u32, dst: u32) -> String {
    serde_json::to_string(&TraceLine { release, src, dst }).expect("line is serializable")
}

/// Render the canonical `{"ports":N}` header line (no trailing newline).
pub fn header_line(ports: usize) -> String {
    serde_json::to_string(&TraceHeader { ports }).expect("header is serializable")
}

/// Errors raised while reading, validating, converting, or writing a
/// trace file.
///
/// The variants mirror `fss_sim::ScenarioError`'s trace subset exactly
/// (the sim crate converts losslessly), so the streaming reader rejects
/// a malformed file with the *same* diagnosis — down to the 1-based
/// line number — as the in-memory loader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// Reading or writing a file failed.
    Io {
        /// The offending path.
        path: String,
        /// The OS error.
        msg: String,
    },
    /// A line failed to parse (1-based line; 0 = whole file).
    Parse {
        /// Line the error was detected on.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// An arrival references a port outside the header's range.
    PortOutOfRange {
        /// Line the arrival is on.
        line: usize,
        /// The out-of-range port.
        port: u32,
        /// Ports declared by the header.
        ports: usize,
    },
    /// Releases must be nondecreasing (the `FlowSource` contract).
    UnsortedRelease {
        /// Line the violation is on.
        line: usize,
        /// The previous release round.
        prev: u64,
        /// The offending (smaller) release round.
        next: u64,
    },
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io { path, msg } => write!(f, "{path}: {msg}"),
            TraceFileError::Parse { line: 0, msg } => write!(f, "parse error: {msg}"),
            TraceFileError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            TraceFileError::PortOutOfRange { line, port, ports } => write!(
                f,
                "line {line}: port {port} out of range (trace declares {ports} ports)"
            ),
            TraceFileError::UnsortedRelease { line, prev, next } => write!(
                f,
                "line {line}: release {next} after {prev} (traces must be sorted by release)"
            ),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl TraceFileError {
    /// Wrap an I/O error with its path.
    pub fn io(path: impl fmt::Display, err: impl fmt::Display) -> TraceFileError {
        TraceFileError::Io {
            path: path.to_string(),
            msg: err.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_events_parse_line_by_line() {
        assert_eq!(
            parse_trace_event("{\"ports\":8}").unwrap(),
            TraceEvent::Header { ports: 8 }
        );
        assert_eq!(
            parse_trace_event("{\"release\":3,\"src\":1,\"dst\":7}").unwrap(),
            TraceEvent::Arrival {
                release: 3,
                src: 1,
                dst: 7
            }
        );
        assert!(parse_trace_event("{\"kind\":\"Finish\"}").is_err());
        assert!(parse_trace_event("not json").is_err());
    }

    #[test]
    fn malformed_arrival_reports_both_candidate_errors() {
        // A typo'd arrival line must surface the *arrival* shape's
        // complaint, not only the header's (the pre-fix behavior).
        let err = parse_trace_event("{\"release\":3,\"src\":1}").unwrap_err();
        assert!(err.contains("as arrival"), "{err}");
        assert!(err.contains("dst"), "must name the missing field: {err}");
        assert!(err.contains("as header"), "{err}");
    }

    #[test]
    fn canonical_lines_round_trip() {
        assert_eq!(header_line(8), "{\"ports\":8}");
        assert_eq!(arrival_line(3, 1, 7), "{\"release\":3,\"src\":1,\"dst\":7}");
        assert_eq!(
            parse_trace_event(&arrival_line(3, 1, 7)).unwrap(),
            TraceEvent::Arrival {
                release: 3,
                src: 1,
                dst: 7
            }
        );
        assert_eq!(
            parse_trace_event(&header_line(4)).unwrap(),
            TraceEvent::Header { ports: 4 }
        );
    }

    #[test]
    fn errors_render_with_line_context() {
        let e = TraceFileError::PortOutOfRange {
            line: 7,
            port: 9,
            ports: 4,
        };
        assert_eq!(
            e.to_string(),
            "line 7: port 9 out of range (trace declares 4 ports)"
        );
        let e = TraceFileError::UnsortedRelease {
            line: 3,
            prev: 5,
            next: 2,
        };
        assert!(e.to_string().contains("release 2 after 5"));
    }
}
