//! Property tests for the converter and the morph pipeline.
//!
//! Contracts: conversion and morphing are bit-for-bit deterministic
//! (same input + options + seeds → identical output, across runs and
//! across the file/in-memory code paths), and every pipeline output is
//! again a *valid* trace — sorted releases, ports in range — no matter
//! how transforms compose.

use std::sync::atomic::{AtomicUsize, Ordering};

use fss_core::prelude::Arrival;
use fss_trace::{
    convert_stream, scan_with, units_per_pair, ConvertOptions, MorphPipeline, MorphSpec,
    TraceWriter,
};
use proptest::prelude::*;

/// Strategy: a port count and a sorted arrival list on it.
fn arrivals_case() -> impl Strategy<Value = (usize, Vec<(u64, u32, u32)>)> {
    (
        2usize..=8,
        proptest::collection::vec((0u64..40, 0u32..8, 0u32..8), 0..80),
    )
        .prop_map(|(m, mut raw)| {
            for (_, s, d) in raw.iter_mut() {
                *s %= m as u32;
                *d %= m as u32;
            }
            raw.sort_by_key(|&(r, _, _)| r);
            (m, raw)
        })
}

/// Strategy: raw codes for a short transform chain; decoded against
/// the running port count by [`build_specs`] so folds always shrink.
fn spec_codes() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
    proptest::collection::vec((0u8..6, 0u64..100, 0u64..50), 0..5)
}

fn build_specs(codes: &[(u8, u64, u64)], ports_in: usize) -> Vec<MorphSpec> {
    let mut ports = ports_in;
    codes
        .iter()
        .map(|&(kind, a, b)| match kind {
            0 => MorphSpec::ScaleRate(1.0 + (a % 4) as f64),
            1 => MorphSpec::Dilate(1.0 + (a % 4) as f64),
            2 => MorphSpec::Skew {
                theta: 0.5 + (a % 5) as f64 * 0.5,
                seed: b,
            },
            3 => {
                ports = 1 + (a as usize % ports);
                MorphSpec::Fold(ports)
            }
            4 => MorphSpec::Window {
                from: a % 20,
                to: a % 20 + 1 + b % 30,
            },
            _ => MorphSpec::Truncate(1 + a % 40),
        })
        .collect()
}

fn to_arrivals(raw: &[(u64, u32, u32)]) -> Vec<Arrival> {
    raw.iter()
        .enumerate()
        .map(|(i, &(release, src, dst))| Arrival {
            id: i as u64,
            src,
            dst,
            release,
        })
        .collect()
}

fn apply_all(specs: &[MorphSpec], ports: usize, input: &[Arrival]) -> Vec<(u64, u32, u32)> {
    let mut pipeline = MorphPipeline::new(specs, ports).expect("generated specs validate");
    let mut out = Vec::new();
    for &a in input {
        if let Some(b) = pipeline.apply(a) {
            out.push((b.release, b.src, b.dst));
        }
        if pipeline.stopped() {
            break;
        }
    }
    out
}

fn case_path(tag: &str) -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("fss-morph-props");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "{tag}-{}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same specs, same input, same seeds → identical output; and the
    /// output always round-trips through a validating [`TraceWriter`]
    /// (sorted releases, ports within the declared count).
    #[test]
    fn morph_is_deterministic_and_emits_valid_traces(
        (m, raw) in arrivals_case(),
        codes in spec_codes(),
    ) {
        let specs = build_specs(&codes, m);
        let input = to_arrivals(&raw);
        let once = apply_all(&specs, m, &input);
        let twice = apply_all(&specs, m, &input);
        prop_assert_eq!(&once, &twice, "seeded pipeline must be deterministic");

        let ports_out = MorphPipeline::new(&specs, m).unwrap().ports_out();
        let mut sink = Vec::new();
        let mut writer = TraceWriter::from_writer(&mut sink, "morphed", ports_out)
            .expect("ports_out is nonzero");
        for &(release, src, dst) in &once {
            writer.write_arrival(release, src, dst).expect("morph output is a valid trace");
        }
        writer.finish().expect("morph output finalizes");
    }

    /// The streaming file path (`morph_file`) produces exactly what the
    /// in-memory pipeline produces on the same arrivals.
    #[test]
    fn morph_file_matches_in_memory_pipeline(
        (m, raw) in arrivals_case(),
        codes in spec_codes(),
    ) {
        let specs = build_specs(&codes, m);
        let input = case_path("in");
        let output = case_path("out");
        {
            let mut writer = fss_trace::TraceWriter::create(&input, m).unwrap();
            for &(release, src, dst) in &raw {
                writer.write_arrival(release, src, dst).unwrap();
            }
            writer.finish().unwrap();
        }
        let summary = fss_trace::morph_file(&input, &output, &specs).expect("morph_file runs");
        let mut streamed = Vec::new();
        let scanned = scan_with(&output, |a| streamed.push((a.release, a.src, a.dst)))
            .expect("morphed file validates");
        prop_assert_eq!(scanned.flows, summary.flows);
        prop_assert_eq!(streamed, apply_all(&specs, m, &to_arrivals(&raw)));
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    /// CSV conversion is deterministic, its output is a valid trace,
    /// and the flow count matches the quantization formula row by row.
    #[test]
    fn convert_is_deterministic_and_counts_match(
        rows in proptest::collection::vec(
            (0u64..5_000, proptest::collection::vec(0u32..200, 1..4),
             proptest::collection::vec(0u32..200, 1..4), 1u64..(48 << 20)),
            1..12,
        ),
        ports in 2usize..32,
        quantum_shift in 10u32..22,
        ms_per_round in 1u64..1_000,
    ) {
        let opts = ConvertOptions {
            ports,
            quantum_bytes: 1 << quantum_shift,
            ms_per_round,
        };
        let mut csv = String::from("coflow,release_ms,mappers,reducers,bytes\n");
        let mut release_ms = 0u64;
        let mut expected_flows = 0u64;
        for (i, (delta, mappers, reducers, bytes)) in rows.iter().enumerate() {
            release_ms += delta;
            let fmt = |ps: &[u32]| ps.iter().map(u32::to_string).collect::<Vec<_>>().join("|");
            csv.push_str(&format!(
                "{i},{release_ms},{},{},{bytes}\n",
                fmt(mappers),
                fmt(reducers)
            ));
            let pairs = (mappers.len() * reducers.len()) as u64;
            expected_flows += pairs * units_per_pair(*bytes, pairs, opts.quantum_bytes);
        }

        let convert = || {
            let mut jsonl = Vec::new();
            let writer = TraceWriter::from_writer(&mut jsonl, "csv", opts.ports).unwrap();
            let summary = convert_stream(std::io::Cursor::new(csv.as_bytes()), "csv", writer, opts)
                .expect("generated CSV converts");
            (summary, jsonl)
        };
        let (summary, jsonl) = convert();
        prop_assert_eq!(summary.flows, expected_flows, "quantization count formula");
        prop_assert_eq!(summary.ports, ports);
        let (summary2, jsonl2) = convert();
        prop_assert_eq!(summary, summary2);
        prop_assert_eq!(jsonl, jsonl2, "conversion must be bit-for-bit deterministic");
    }
}
