//! LP model builder: variables, linear constraints, minimize objective.

use crate::simplex::{self, SimplexOptions};
use crate::solution::{LpError, LpSolution};

/// Handle to a decision variable (nonnegative by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index into [`LpSolution::x`].
    #[inline]
    pub fn idx(self) -> usize {
        self.0
    }
}

/// Handle to a constraint row, in insertion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowId(pub(crate) usize);

impl RowId {
    /// Index into row-indexed solution data (e.g. tight-row queries).
    #[inline]
    pub fn idx(self) -> usize {
        self.0
    }
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

/// A constraint row stored sparsely as `(variable, coefficient)` terms.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Builder for a minimization LP over nonnegative variables.
///
/// All problem LPs in this workspace are naturally minimization problems
/// with `x >= 0`; upper bounds are expressed as rows.
#[derive(Debug, Clone, Default)]
pub struct LpBuilder {
    pub(crate) objective: Vec<f64>,
    pub(crate) rows: Vec<Row>,
}

impl LpBuilder {
    /// A fresh minimization model.
    pub fn minimize() -> Self {
        LpBuilder::default()
    }

    /// Add a nonnegative variable with the given objective coefficient.
    pub fn var(&mut self, obj: f64) -> VarId {
        self.objective.push(obj);
        VarId(self.objective.len() - 1)
    }

    /// Number of variables so far.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraint rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Add a constraint `sum(coef * var) cmp rhs`. Duplicate variable terms
    /// are accumulated. Panics on out-of-range variables.
    pub fn constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) -> RowId {
        let mut dense: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
        for &(v, c) in terms {
            assert!(v.0 < self.objective.len(), "variable out of range");
            if c != 0.0 {
                dense.push((v.0, c));
            }
        }
        dense.sort_unstable_by_key(|&(i, _)| i);
        // Accumulate duplicates.
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(dense.len());
        for (i, c) in dense {
            match merged.last_mut() {
                Some(&mut (j, ref mut acc)) if j == i => *acc += c,
                _ => merged.push((i, c)),
            }
        }
        self.rows.push(Row {
            terms: merged,
            cmp,
            rhs,
        });
        RowId(self.rows.len() - 1)
    }

    /// Convenience: `var <= bound`.
    pub fn upper_bound(&mut self, v: VarId, bound: f64) -> RowId {
        self.constraint(&[(v, 1.0)], Cmp::Le, bound)
    }

    /// Solve with default options.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solve with explicit options (iteration limits, tolerances).
    pub fn solve_with(&self, opts: &SimplexOptions) -> Result<LpSolution, LpError> {
        simplex::solve(self, opts)
    }

    /// Evaluate the objective at a point (for tests and diagnostics).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Row activity `sum(coef * x)` at a point.
    pub fn row_activity(&self, row: RowId, x: &[f64]) -> f64 {
        self.rows[row.0].terms.iter().map(|&(i, c)| c * x[i]).sum()
    }

    /// Whether `x` satisfies every row (and nonnegativity) within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.objective.len() || x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.rows.iter().enumerate().all(|(i, row)| {
            let a = self.row_activity(RowId(i), x);
            match row.cmp {
                Cmp::Le => a <= row.rhs + tol,
                Cmp::Ge => a >= row.rhs - tol,
                Cmp::Eq => (a - row.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_terms_accumulate() {
        let mut lp = LpBuilder::minimize();
        let x = lp.var(1.0);
        let r = lp.constraint(&[(x, 1.0), (x, 2.0)], Cmp::Le, 6.0);
        assert_eq!(lp.rows[r.0].terms, vec![(0, 3.0)]);
    }

    #[test]
    fn zero_coefficients_dropped() {
        let mut lp = LpBuilder::minimize();
        let x = lp.var(1.0);
        let y = lp.var(1.0);
        let r = lp.constraint(&[(x, 0.0), (y, 2.0)], Cmp::Ge, 1.0);
        assert_eq!(lp.rows[r.0].terms, vec![(1, 2.0)]);
    }

    #[test]
    fn feasibility_checker() {
        let mut lp = LpBuilder::minimize();
        let x = lp.var(1.0);
        let y = lp.var(1.0);
        lp.constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        assert!(lp.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0, 0.5], 1e-9));
        assert!(!lp.is_feasible(&[-1.0, 3.0], 1e-9));
        assert!(!lp.is_feasible(&[2.0], 1e-9));
    }

    #[test]
    fn objective_and_activity_evaluation() {
        let mut lp = LpBuilder::minimize();
        let x = lp.var(3.0);
        let y = lp.var(-1.0);
        let r = lp.constraint(&[(x, 2.0), (y, 1.0)], Cmp::Le, 10.0);
        assert_eq!(lp.objective_value(&[2.0, 4.0]), 2.0);
        assert_eq!(lp.row_activity(r, &[2.0, 4.0]), 8.0);
    }
}
