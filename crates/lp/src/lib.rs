//! # fss-lp — linear programming substrate
//!
//! The paper's experiments solve three LP families with Gurobi 8.1 (§5.2.2):
//! the average-response-time lower bound LP (1)–(4), the interval LPs of the
//! iterative rounding cascade (5)–(12), and the time-constrained feasibility
//! LP (19)–(21). This crate is the from-scratch replacement: a model builder
//! plus a two-phase dense tableau simplex.
//!
//! Design notes:
//! * **Vertex solutions.** The iterative rounding of §3.1 (Lemma 3.5) counts
//!   tight constraints at a *basic* optimal solution; a tableau simplex
//!   returns exactly that, which is why we implement simplex rather than an
//!   interior-point method.
//! * **Determinism.** Dantzig's rule with a Bland fallback after a stall,
//!   fixed tolerances, no randomization — results are reproducible.
//! * **Scale.** Dense tableaus comfortably handle the scaled-down instances
//!   this workspace solves (thousands of columns); see DESIGN.md §3.4 for
//!   the declared scale substitution versus the paper's Gurobi runs.
//!
//! ```
//! use fss_lp::{LpBuilder, Cmp, LpStatus};
//!
//! // min  x + 2y   s.t.  x + y >= 2,  y <= 5,  x,y >= 0
//! let mut lp = LpBuilder::minimize();
//! let x = lp.var(1.0);
//! let y = lp.var(2.0);
//! lp.constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0);
//! lp.constraint(&[(y, 1.0)], Cmp::Le, 5.0);
//! let sol = lp.solve().unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 2.0).abs() < 1e-7); // x = 2, y = 0
//! ```

pub mod model;
pub mod simplex;
pub mod solution;

pub use model::{Cmp, LpBuilder, RowId, VarId};
pub use simplex::SimplexOptions;
pub use solution::{LpError, LpSolution, LpStatus};

/// Numeric tolerance shared by the solver and its consumers.
pub const TOL: f64 = 1e-7;
