//! Solver outputs and errors.

/// Terminal status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// The constraints are infeasible.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// A solved LP. For `status != Optimal`, `x` is empty and `objective` is
/// meaningless (`f64::NAN`).
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Terminal status.
    pub status: LpStatus,
    /// Optimal objective value (minimization).
    pub objective: f64,
    /// Primal values per variable, a *basic* (vertex) solution.
    pub x: Vec<f64>,
    /// Simplex pivot count across both phases (diagnostics / benches).
    pub pivots: usize,
}

impl LpSolution {
    /// Convenience: `true` when the status is [`LpStatus::Optimal`].
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

/// Hard solver failures (distinct from infeasible/unbounded, which are
/// legitimate *answers*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The pivot limit was exhausted — numerical trouble or a degenerate
    /// cycle that Bland's rule could not break within the budget.
    IterationLimit { pivots: usize },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            LpError::IterationLimit { pivots } => {
                write!(f, "simplex exceeded the pivot budget ({pivots} pivots)")
            }
        }
    }
}

impl std::error::Error for LpError {}
