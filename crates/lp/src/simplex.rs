#![allow(clippy::needless_range_loop)] // parallel-array index loops are clearer here
//! Two-phase dense tableau simplex.
//!
//! Phase 1 minimizes the sum of artificial variables to find a basic
//! feasible solution; phase 2 minimizes the real objective. Entering
//! variables follow Dantzig's rule (most negative reduced cost) until a
//! degeneracy stall is detected, after which Bland's rule guarantees
//! termination. The leaving row is chosen by the minimum-ratio test with
//! smallest-basis-index tie-breaking.

use fss_linalg::Matrix;

use crate::model::{Cmp, LpBuilder};
use crate::solution::{LpError, LpSolution, LpStatus};
use crate::TOL;

/// Tuning knobs for the solver.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard pivot budget across both phases. `None` derives
    /// `50 * (rows + cols) + 10_000` from the problem size.
    pub max_pivots: Option<usize>,
    /// Consecutive non-improving pivots tolerated before switching to
    /// Bland's rule.
    pub stall_threshold: usize,
    /// Pivot-eligibility tolerance.
    pub pivot_tol: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_pivots: None,
            stall_threshold: 64,
            pivot_tol: 1e-9,
        }
    }
}

struct Tableau {
    /// `m x (ncols + 1)`; the last column is the rhs.
    t: Matrix,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Total number of variable columns (structural + slack + artificial).
    ncols: usize,
    /// First artificial column index (or `ncols` when none exist).
    art_start: usize,
    pivots: usize,
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.t[(r, self.ncols)]
    }

    /// Pivot on (row, col): scale the pivot row, eliminate the column from
    /// all other rows and from `cost`.
    fn pivot(&mut self, row: usize, col: usize, cost: &mut [f64]) {
        let m = self.t.rows();
        let width = self.ncols + 1;
        let piv = self.t[(row, col)];
        debug_assert!(piv.abs() > 1e-12);
        for j in 0..width {
            self.t[(row, j)] /= piv;
        }
        self.t[(row, col)] = 1.0;
        for i in 0..m {
            if i == row {
                continue;
            }
            let factor = self.t[(i, col)];
            if factor == 0.0 {
                continue;
            }
            let (target, pivot_row) = self.t.two_rows_mut(i, row);
            for (tv, pv) in target.iter_mut().zip(pivot_row.iter()) {
                *tv -= factor * pv;
            }
            self.t[(i, col)] = 0.0;
        }
        let factor = cost[col];
        if factor != 0.0 {
            for j in 0..width {
                cost[j] -= factor * self.t[(row, j)];
            }
            cost[col] = 0.0;
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// Reduced-cost row for objective `c` (length `ncols`) given the current
    /// basis: `rc_j = c_j - c_B^T (B^-1 A)_j`, with the objective value in
    /// the rhs slot (negated, tableau convention).
    fn reduced_costs(&self, c: &[f64]) -> Vec<f64> {
        let width = self.ncols + 1;
        let mut rc = vec![0.0; width];
        rc[..self.ncols].copy_from_slice(c);
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = c[b];
            if cb == 0.0 {
                continue;
            }
            let row = self.t.row(r);
            for j in 0..width {
                rc[j] -= cb * row[j];
            }
        }
        rc
    }

    /// Run simplex minimizing the objective encoded in `cost` (a reduced
    /// cost row kept in sync by pivoting). `allowed` limits entering
    /// columns. Returns `Ok(true)` at optimality, `Ok(false)` when
    /// unbounded.
    fn run(
        &mut self,
        cost: &mut [f64],
        allowed_end: usize,
        opts: &SimplexOptions,
        budget: usize,
    ) -> Result<bool, LpError> {
        let m = self.t.rows();
        let mut stall = 0usize;
        let mut last_obj = f64::INFINITY;
        loop {
            if self.pivots >= budget {
                return Err(LpError::IterationLimit {
                    pivots: self.pivots,
                });
            }
            let bland = stall >= opts.stall_threshold;
            // Entering column.
            let mut enter: Option<usize> = None;
            if bland {
                for j in 0..allowed_end {
                    if cost[j] < -TOL {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -TOL;
                for j in 0..allowed_end {
                    if cost[j] < best {
                        best = cost[j];
                        enter = Some(j);
                    }
                }
            }
            let Some(col) = enter else {
                return Ok(true); // optimal
            };
            // Leaving row: min ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                let a = self.t[(i, col)];
                if a > opts.pivot_tol {
                    let ratio = self.rhs(i) / a;
                    let better = ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(row) = leave else {
                return Ok(false); // unbounded in this direction
            };
            self.pivot(row, col, cost);
            let obj = -cost[self.ncols];
            if obj < last_obj - TOL {
                stall = 0;
                last_obj = obj;
            } else {
                stall += 1;
            }
        }
    }
}

/// Solve the builder's LP. See crate docs for the overall contract.
pub fn solve(lp: &LpBuilder, opts: &SimplexOptions) -> Result<LpSolution, LpError> {
    let n = lp.objective.len();
    let m = lp.rows.len();

    // Count slack and artificial columns after normalizing rhs >= 0.
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    // Per-row normalized sense (after possibly flipping for negative rhs).
    let mut senses = Vec::with_capacity(m);
    for row in &lp.rows {
        let (sign, cmp) = if row.rhs < 0.0 {
            let flipped = match row.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
            (-1.0, flipped)
        } else {
            (1.0, row.cmp)
        };
        match cmp {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
        senses.push((sign, cmp));
    }

    let ncols = n + n_slack + n_art;
    let art_start = n + n_slack;
    let mut t = Matrix::zeros(m, ncols + 1);
    let mut basis = vec![0usize; m];
    let mut slack_at = n;
    let mut art_at = art_start;
    for (i, row) in lp.rows.iter().enumerate() {
        let (sign, cmp) = senses[i];
        for &(v, c) in &row.terms {
            t[(i, v)] = sign * c;
        }
        t[(i, ncols)] = sign * row.rhs;
        match cmp {
            Cmp::Le => {
                t[(i, slack_at)] = 1.0;
                basis[i] = slack_at;
                slack_at += 1;
            }
            Cmp::Ge => {
                t[(i, slack_at)] = -1.0;
                slack_at += 1;
                t[(i, art_at)] = 1.0;
                basis[i] = art_at;
                art_at += 1;
            }
            Cmp::Eq => {
                t[(i, art_at)] = 1.0;
                basis[i] = art_at;
                art_at += 1;
            }
        }
    }

    let mut tab = Tableau {
        t,
        basis,
        ncols,
        art_start,
        pivots: 0,
    };
    let budget = opts.max_pivots.unwrap_or(50 * (m + ncols) + 10_000);

    // Phase 1: minimize the sum of artificials (skippable when none exist).
    if n_art > 0 {
        let mut c1 = vec![0.0; ncols];
        for j in art_start..ncols {
            c1[j] = 1.0;
        }
        let mut cost = tab.reduced_costs(&c1);
        let optimal = tab.run(&mut cost, ncols, opts, budget)?;
        debug_assert!(optimal, "phase 1 cannot be unbounded (objective >= 0)");
        let phase1_obj = -cost[ncols];
        if phase1_obj > 1e-6 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: f64::NAN,
                x: Vec::new(),
                pivots: tab.pivots,
            });
        }
        // Drive any remaining artificials (basic at value ~0) out of the basis.
        for r in 0..m {
            if tab.basis[r] >= art_start {
                let col = (0..art_start).find(|&j| tab.t[(r, j)].abs() > opts.pivot_tol);
                if let Some(j) = col {
                    let mut dummy = vec![0.0; ncols + 1];
                    tab.pivot(r, j, &mut dummy);
                } // else: redundant row; the artificial stays basic at 0.
            }
        }
    }

    // Phase 2: minimize the real objective over non-artificial columns.
    let mut c2 = vec![0.0; ncols];
    c2[..n].copy_from_slice(&lp.objective);
    let mut cost = tab.reduced_costs(&c2);
    let optimal = tab.run(&mut cost, tab.art_start, opts, budget)?;
    if !optimal {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            objective: f64::NAN,
            x: Vec::new(),
            pivots: tab.pivots,
        });
    }

    let mut x = vec![0.0; n];
    for (r, &b) in tab.basis.iter().enumerate() {
        if b < n {
            // Clamp tiny negative noise; callers treat x as nonnegative.
            x[b] = tab.rhs(r).max(0.0);
        }
    }
    let objective = lp.objective_value(&x);
    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        pivots: tab.pivots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LpBuilder;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn trivial_no_constraints() {
        let mut lp = LpBuilder::minimize();
        let _x = lp.var(1.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 0.0);
        assert_close(sol.x[0], 0.0);
    }

    #[test]
    fn unbounded_detection() {
        let mut lp = LpBuilder::minimize();
        let _x = lp.var(-1.0); // min -x, x >= 0, no upper bound
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_after_adding_row() {
        let mut lp = LpBuilder::minimize();
        let x = lp.var(-1.0);
        lp.upper_bound(x, 3.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -3.0);
        assert_close(sol.x[0], 3.0);
    }

    #[test]
    fn classic_two_var_problem() {
        // min -3x - 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Dantzig's
        // textbook example); optimum -36 at (2, 6).
        let mut lp = LpBuilder::minimize();
        let x = lp.var(-3.0);
        let y = lp.var(-5.0);
        lp.constraint(&[(x, 1.0)], Cmp::Le, 4.0);
        lp.constraint(&[(y, 2.0)], Cmp::Le, 12.0);
        lp.constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, -36.0);
        assert_close(sol.x[x.idx()], 2.0);
        assert_close(sol.x[y.idx()], 6.0);
    }

    #[test]
    fn ge_rows_need_phase_one() {
        // min x + y  s.t. x + 2y >= 4, 3x + y >= 6; optimum at intersection
        // (8/5, 6/5) with value 14/5.
        let mut lp = LpBuilder::minimize();
        let x = lp.var(1.0);
        let y = lp.var(1.0);
        lp.constraint(&[(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        lp.constraint(&[(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 14.0 / 5.0);
        assert_close(sol.x[x.idx()], 8.0 / 5.0);
        assert_close(sol.x[y.idx()], 6.0 / 5.0);
    }

    #[test]
    fn equality_rows() {
        // min 2x + 3y  s.t. x + y = 10, x - y <= 2; optimum at y as large as
        // possible? No: cost of y is higher, so push x up: x - y <= 2 and
        // x + y = 10 give x <= 6; optimum (6, 4): 12 + 12 = 24.
        let mut lp = LpBuilder::minimize();
        let x = lp.var(2.0);
        let y = lp.var(3.0);
        lp.constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        lp.constraint(&[(x, 1.0), (y, -1.0)], Cmp::Le, 2.0);
        let sol = lp.solve().unwrap();
        assert_close(sol.objective, 24.0);
        assert_close(sol.x[x.idx()], 6.0);
        assert_close(sol.x[y.idx()], 4.0);
    }

    #[test]
    fn infeasible_detection() {
        let mut lp = LpBuilder::minimize();
        let x = lp.var(1.0);
        lp.constraint(&[(x, 1.0)], Cmp::Ge, 5.0);
        lp.constraint(&[(x, 1.0)], Cmp::Le, 3.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn negative_rhs_normalization() {
        // x - y <= -2 with rhs < 0 must flip correctly: equivalent to
        // y - x >= 2. min y s.t. that and x >= 0 gives y = 2 at x = 0.
        let mut lp = LpBuilder::minimize();
        let x = lp.var(0.0);
        let y = lp.var(1.0);
        lp.constraint(&[(x, 1.0), (y, -1.0)], Cmp::Le, -2.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, 2.0);
        assert_close(sol.x[y.idx()], 2.0);
    }

    #[test]
    fn redundant_equality_rows_survive_phase1() {
        // x + y = 2 listed twice (redundant), plus x = 1.
        let mut lp = LpBuilder::minimize();
        let x = lp.var(1.0);
        let y = lp.var(1.0);
        lp.constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        lp.constraint(&[(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        lp.constraint(&[(x, 1.0)], Cmp::Eq, 1.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.x[x.idx()], 1.0);
        assert_close(sol.x[y.idx()], 1.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Multiple constraints meeting at the origin: classic degeneracy.
        let mut lp = LpBuilder::minimize();
        let x = lp.var(-1.0);
        let y = lp.var(-1.0);
        lp.constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        lp.constraint(&[(x, 1.0)], Cmp::Le, 1.0);
        lp.constraint(&[(y, 1.0)], Cmp::Le, 1.0);
        lp.constraint(&[(x, 1.0), (y, -1.0)], Cmp::Le, 0.0);
        lp.constraint(&[(x, -1.0), (y, 1.0)], Cmp::Le, 0.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_close(sol.objective, -1.0);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut lp = LpBuilder::minimize();
        let x = lp.var(1.0);
        let y = lp.var(2.0);
        let z = lp.var(0.5);
        lp.constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Ge, 3.0);
        lp.constraint(&[(x, 2.0), (z, -1.0)], Cmp::Le, 4.0);
        lp.constraint(&[(y, 1.0), (z, 2.0)], Cmp::Eq, 2.0);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(lp.is_feasible(&sol.x, 1e-6));
    }
}
