//! Property tests: the simplex result must agree with brute-force vertex
//! enumeration on small random LPs.
//!
//! For an LP `min c x, rows, x >= 0` whose feasible region is nonempty and
//! pointed (guaranteed by `x >= 0`), the optimum — when bounded — is
//! attained at a vertex defined by `n` linearly independent tight
//! constraints drawn from the rows and the axes. Enumerating all such
//! candidate vertices gives an oracle for both feasibility and optimality.

use fss_linalg::Matrix;
use fss_lp::{Cmp, LpBuilder, LpStatus};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawLp {
    nvars: usize,
    obj: Vec<f64>,
    rows: Vec<(Vec<f64>, Cmp, f64)>,
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![Just(Cmp::Le), Just(Cmp::Ge), Just(Cmp::Eq)]
}

fn raw_lp() -> impl Strategy<Value = RawLp> {
    (1usize..=3, 1usize..=4).prop_flat_map(|(nvars, nrows)| {
        let coef = proptest::collection::vec(-3i32..=3, nvars);
        let row = (coef, cmp_strategy(), -4i32..=6).prop_map(|(c, cmp, rhs)| {
            (
                c.into_iter().map(f64::from).collect::<Vec<f64>>(),
                cmp,
                f64::from(rhs),
            )
        });
        let rows = proptest::collection::vec(row, nrows);
        let obj = proptest::collection::vec(0i32..=4, nvars)
            .prop_map(|o| o.into_iter().map(f64::from).collect::<Vec<f64>>());
        (Just(nvars), obj, rows).prop_map(|(nvars, obj, rows)| RawLp { nvars, obj, rows })
    })
}

fn build(raw: &RawLp) -> LpBuilder {
    let mut lp = LpBuilder::minimize();
    let vars: Vec<_> = raw.obj.iter().map(|&c| lp.var(c)).collect();
    for (coefs, cmp, rhs) in &raw.rows {
        let terms: Vec<_> = vars.iter().copied().zip(coefs.iter().copied()).collect();
        lp.constraint(&terms, *cmp, *rhs);
    }
    lp
}

/// All candidate vertices: solutions of n tight constraints chosen among
/// rows (as equalities) and axes (`x_i = 0`), filtered for feasibility.
fn enumerate_vertices(raw: &RawLp) -> Vec<Vec<f64>> {
    let n = raw.nvars;
    // Constraint pool: (normal vector, rhs).
    let mut pool: Vec<(Vec<f64>, f64)> = Vec::new();
    for (coefs, _, rhs) in &raw.rows {
        pool.push((coefs.clone(), *rhs));
    }
    for i in 0..n {
        let mut axis = vec![0.0; n];
        axis[i] = 1.0;
        pool.push((axis, 0.0));
    }
    let lp = build(raw);
    let mut verts = Vec::new();
    let k = pool.len();
    let mut choose = vec![0usize; n];
    // Iterate over all n-subsets of the pool (k is tiny).
    fn rec(
        pool: &[(Vec<f64>, f64)],
        lp: &LpBuilder,
        n: usize,
        start: usize,
        choose: &mut Vec<usize>,
        depth: usize,
        verts: &mut Vec<Vec<f64>>,
    ) {
        if depth == n {
            let mut a = Matrix::zeros(n, n);
            let mut b = vec![0.0; n];
            for (r, &ci) in choose.iter().enumerate() {
                for j in 0..n {
                    a[(r, j)] = pool[ci].0[j];
                }
                b[r] = pool[ci].1;
            }
            if let Some(x) = fss_linalg::solve(&a, &b, 1e-9) {
                if lp.is_feasible(&x, 1e-6) {
                    verts.push(x);
                }
            }
            return;
        }
        for i in start..pool.len() {
            choose[depth] = i;
            rec(pool, lp, n, i + 1, choose, depth + 1, verts);
        }
    }
    rec(&pool, &lp, n, 0, &mut choose, 0, &mut verts);
    let _ = k;
    verts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn simplex_matches_vertex_enumeration(raw in raw_lp()) {
        let lp = build(&raw);
        let sol = lp.solve().expect("pivot budget must suffice on tiny LPs");
        let verts = enumerate_vertices(&raw);
        match sol.status {
            LpStatus::Optimal => {
                prop_assert!(lp.is_feasible(&sol.x, 1e-6),
                    "optimal point must be feasible: {:?}", sol.x);
                // Objective must match the best vertex (the region is
                // pointed, so a bounded optimum sits on a vertex).
                let best = verts.iter()
                    .map(|v| lp.objective_value(v))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(best.is_finite(),
                    "simplex found an optimum but no vertex is feasible");
                prop_assert!((sol.objective - best).abs() < 1e-5,
                    "objective {} != best vertex {}", sol.objective, best);
            }
            LpStatus::Infeasible => {
                prop_assert!(verts.is_empty(),
                    "simplex says infeasible but a feasible vertex exists: {:?}", verts);
            }
            LpStatus::Unbounded => {
                // Unboundedness requires at least one feasible point.
                prop_assert!(!verts.is_empty() || feasible_by_sampling(&lp),
                    "unbounded claim with no feasible evidence");
            }
        }
    }
}

/// Cheap feasibility evidence for the unbounded case: scan a coarse grid.
fn feasible_by_sampling(lp: &LpBuilder) -> bool {
    let n = lp.num_vars();
    let vals = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0];
    let mut idx = vec![0usize; n];
    loop {
        let x: Vec<f64> = idx.iter().map(|&i| vals[i]).collect();
        if lp.is_feasible(&x, 1e-6) {
            return true;
        }
        // Odometer increment.
        let mut d = 0;
        loop {
            if d == n {
                return false;
            }
            idx[d] += 1;
            if idx[d] < vals.len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}
