//! Failure-path tests: pivot budgets, empty models, pathological inputs.

use fss_lp::{Cmp, LpBuilder, LpError, LpStatus, SimplexOptions};

#[test]
fn tiny_pivot_budget_reports_iteration_limit() {
    // A problem guaranteed to need more than one pivot.
    let mut lp = LpBuilder::minimize();
    let vars: Vec<_> = (0..10).map(|_| lp.var(-1.0)).collect();
    for w in vars.windows(2) {
        lp.constraint(&[(w[0], 1.0), (w[1], 1.0)], Cmp::Le, 1.0);
    }
    let opts = SimplexOptions {
        max_pivots: Some(1),
        ..Default::default()
    };
    let err = lp.solve_with(&opts).unwrap_err();
    assert!(matches!(err, LpError::IterationLimit { .. }));
    assert!(err.to_string().contains("pivot"));
}

#[test]
fn generous_budget_succeeds_on_same_problem() {
    let mut lp = LpBuilder::minimize();
    let vars: Vec<_> = (0..10).map(|_| lp.var(-1.0)).collect();
    for w in vars.windows(2) {
        lp.constraint(&[(w[0], 1.0), (w[1], 1.0)], Cmp::Le, 1.0);
    }
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    // Alternate 1, 0, 1, ...: five ones.
    assert!((sol.objective + 5.0).abs() < 1e-6);
}

#[test]
fn empty_model_solves_trivially() {
    let lp = LpBuilder::minimize();
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_eq!(sol.objective, 0.0);
    assert!(sol.x.is_empty());
}

#[test]
fn constraint_on_nothing_is_checked() {
    // A row with no terms: "0 <= -1" is infeasible, "0 <= 1" is vacuous.
    let mut lp = LpBuilder::minimize();
    let _x = lp.var(1.0);
    lp.constraint(&[], Cmp::Le, 1.0);
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);

    let mut lp2 = LpBuilder::minimize();
    let _x = lp2.var(1.0);
    lp2.constraint(&[], Cmp::Ge, 1.0);
    let sol2 = lp2.solve().unwrap();
    assert_eq!(sol2.status, LpStatus::Infeasible);
}

#[test]
fn zero_rhs_equalities() {
    // x - y = 0, x + y >= 4, min x: optimum (2, 2).
    let mut lp = LpBuilder::minimize();
    let x = lp.var(1.0);
    let y = lp.var(0.0);
    lp.constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0);
    lp.constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.x[x.idx()] - 2.0).abs() < 1e-6);
}

#[test]
fn many_redundant_rows_stay_stable() {
    let mut lp = LpBuilder::minimize();
    let x = lp.var(1.0);
    for k in 1..=50 {
        lp.constraint(&[(x, 1.0)], Cmp::Ge, f64::from(k) / 50.0);
    }
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 1.0).abs() < 1e-6, "tightest row wins");
}

#[test]
fn pivots_counter_is_reported() {
    let mut lp = LpBuilder::minimize();
    let x = lp.var(-1.0);
    lp.upper_bound(x, 1.0);
    let sol = lp.solve().unwrap();
    assert!(sol.pivots >= 1, "at least one pivot to move off the origin");
}
