//! Hard and classic LP solver cases: degeneracy/cycling, scaling, and
//! structured problems with known optima.

use fss_lp::{Cmp, LpBuilder, LpStatus};

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() < tol, "{a} != {b}");
}

/// Beale's classic cycling example: Dantzig's rule cycles on it without an
/// anti-cycling safeguard. Our solver must terminate at the optimum.
///
/// min -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
/// s.t. 0.25 x4 - 60 x5 - 0.04 x6 + 9 x7 <= 0
///      0.5  x4 - 90 x5 - 0.02 x6 + 3 x7 <= 0
///      x6 <= 1
/// Optimum: -0.05 at x6 = 1 (x4 = x5 = x7 = 0 after degeneracy resolves
/// to x4 = 0.04/... the classic optimum value is -1/20).
#[test]
fn beale_cycling_example_terminates() {
    let mut lp = LpBuilder::minimize();
    let x4 = lp.var(-0.75);
    let x5 = lp.var(150.0);
    let x6 = lp.var(-0.02);
    let x7 = lp.var(6.0);
    lp.constraint(
        &[(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)],
        Cmp::Le,
        0.0,
    );
    lp.constraint(
        &[(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)],
        Cmp::Le,
        0.0,
    );
    lp.constraint(&[(x6, 1.0)], Cmp::Le, 1.0);
    let sol = lp.solve().expect("must not cycle forever");
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.objective, -0.05, 1e-6);
}

/// Kuhn's cycling example (another classic degenerate LP).
#[test]
fn kuhn_degenerate_example() {
    // min -2x1 - 3x2 + x3 + 12 x4
    // s.t. -2x1 - 9x2 + x3 + 9x4 <= 0
    //       x1/3 + x2 - x3/3 - 2x4 <= 0
    // Unbounded in exact arithmetic? No: Kuhn's example is degenerate at
    // the origin; the optimum is unbounded. Our solver must detect that
    // rather than loop.
    let mut lp = LpBuilder::minimize();
    let x1 = lp.var(-2.0);
    let x2 = lp.var(-3.0);
    let x3 = lp.var(1.0);
    let x4 = lp.var(12.0);
    lp.constraint(
        &[(x1, -2.0), (x2, -9.0), (x3, 1.0), (x4, 9.0)],
        Cmp::Le,
        0.0,
    );
    lp.constraint(
        &[(x1, 1.0 / 3.0), (x2, 1.0), (x3, -1.0 / 3.0), (x4, -2.0)],
        Cmp::Le,
        0.0,
    );
    let sol = lp.solve().expect("must terminate");
    // Both constraints pass through the origin with a recession direction
    // of negative cost (e.g. grow x2 with x3 = 9 x2/... ): unbounded.
    assert_eq!(sol.status, LpStatus::Unbounded);
}

/// Transportation problem with a hand-computable optimum.
#[test]
fn transportation_problem_known_optimum() {
    // 2 supplies (10, 20), 3 demands (5, 15, 10); costs:
    //   [2 3 1]
    //   [5 4 8]
    // Optimal: route s1: 10 to d3 (cost 10)? Check: classic LP; solve and
    // verify against an enumerated optimum computed by hand:
    // x13=10 (10), x21=5 (25), x22=15 (60), x23=0 -> total 95. Alternative
    // x11=5(10),x12=5(15),... let the assertions below pin the solver's
    // optimum against a brute-force grid check instead of trusting hand
    // arithmetic: we assert feasibility + objective <= any grid candidate.
    let supplies = [10.0, 20.0];
    let demands = [5.0, 15.0, 10.0];
    let costs = [[2.0, 3.0, 1.0], [5.0, 4.0, 8.0]];
    let mut lp = LpBuilder::minimize();
    let mut vars = [[None; 3]; 2];
    for i in 0..2 {
        for j in 0..3 {
            vars[i][j] = Some(lp.var(costs[i][j]));
        }
    }
    for i in 0..2 {
        let row: Vec<_> = (0..3).map(|j| (vars[i][j].unwrap(), 1.0)).collect();
        lp.constraint(&row, Cmp::Le, supplies[i]);
    }
    for j in 0..3 {
        let col: Vec<_> = (0..2).map(|i| (vars[i][j].unwrap(), 1.0)).collect();
        lp.constraint(&col, Cmp::Ge, demands[j]);
    }
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(lp.is_feasible(&sol.x, 1e-6));
    // Hand-checked optimum: x13 = 10, x11 = 5, x12 = 0? supply1 = 10 only;
    // route: s1 -> d3: 10 (cost 10); s2 -> d1: 5 (25); s2 -> d2: 15 (60).
    // Total 95.
    assert_close(sol.objective, 95.0, 1e-6);
}

/// Large diagonal-dominant system: stresses pivot count and numerics.
#[test]
fn large_sparse_chain() {
    // min sum x_i subject to x_i + x_{i+1} >= 1 for a chain of 60:
    // optimum = 30 (alternating 1, 0, 1, 0, ...).
    let n = 60;
    let mut lp = LpBuilder::minimize();
    let vars: Vec<_> = (0..n).map(|_| lp.var(1.0)).collect();
    for i in 0..n - 1 {
        lp.constraint(&[(vars[i], 1.0), (vars[i + 1], 1.0)], Cmp::Ge, 1.0);
    }
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    // The 30 pairwise-disjoint constraints (i = 0, 2, ..., 58) force
    // sum x >= 30, and x = 1/2 everywhere attains it.
    assert_close(sol.objective, n as f64 / 2.0, 1e-5);
}

/// Badly scaled coefficients should still solve within tolerance.
#[test]
fn badly_scaled_coefficients() {
    let mut lp = LpBuilder::minimize();
    let x = lp.var(1e-4);
    let y = lp.var(1e4);
    lp.constraint(&[(x, 1e3), (y, 1e-3)], Cmp::Ge, 10.0);
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    // Cheapest: push x (tiny cost, huge row coefficient): x = 0.01,
    // objective 1e-6.
    assert!(sol.objective < 1e-4);
    assert!(lp.is_feasible(&sol.x, 1e-5));
}

/// Equality-only square system: simplex must reproduce linear solve.
#[test]
fn equality_square_system() {
    let mut lp = LpBuilder::minimize();
    let x = lp.var(0.0);
    let y = lp.var(0.0);
    let z = lp.var(0.0);
    lp.constraint(&[(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Eq, 6.0);
    lp.constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0);
    lp.constraint(&[(z, 1.0)], Cmp::Eq, 2.0);
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert_close(sol.x[x.idx()], 2.0, 1e-8);
    assert_close(sol.x[y.idx()], 2.0, 1e-8);
    assert_close(sol.x[z.idx()], 2.0, 1e-8);
}
