//! Null-space directions.
//!
//! The Beck–Fiala style rounding walk (see `fss-rounding`) repeatedly needs a
//! nonzero vector `x` with `A x = 0`, where `A` collects the currently
//! *active* constraint rows restricted to the *floating* variables. Whenever
//! `A` has more columns than its rank, such a vector exists; this module
//! computes one from the reduced row echelon form.

use crate::elim::rref;
use crate::matrix::Matrix;

/// A nonzero vector in the null space of `m`, or `None` when `m` has full
/// column rank (at tolerance `tol`).
///
/// The returned vector sets one free variable to 1 and back-substitutes the
/// pivot variables, then normalizes to unit ∞-norm.
pub fn kernel_vector(m: &Matrix, tol: f64) -> Option<Vec<f64>> {
    let cols = m.cols();
    if cols == 0 {
        return None;
    }
    if m.rows() == 0 {
        // Everything is in the kernel; pick the first coordinate axis.
        let mut x = vec![0.0; cols];
        x[0] = 1.0;
        return Some(x);
    }
    let mut red = m.clone();
    let pivots = rref(&mut red, tol);
    if pivots.len() == cols {
        return None; // full column rank
    }
    // First free (non-pivot) column.
    let mut is_pivot = vec![false; cols];
    for &c in &pivots {
        is_pivot[c] = true;
    }
    let free = (0..cols)
        .find(|&c| !is_pivot[c])
        .expect("rank < cols implies a free column");

    let mut x = vec![0.0; cols];
    x[free] = 1.0;
    // Each pivot row reads: x[pivot_col] + sum_{j > pivot, non-pivot} a_j x_j = 0.
    for (row, &pc) in pivots.iter().enumerate() {
        x[pc] = -red[(row, free)];
    }
    // Normalize to unit infinity norm for numerical stability downstream.
    let norm = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    debug_assert!(norm > 0.0);
    for v in &mut x {
        *v /= norm;
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EPS;

    fn assert_in_kernel(m: &Matrix, x: &[f64]) {
        let r = m.matvec(x);
        for v in r {
            assert!(v.abs() < 1e-7, "Ax != 0: residual {v}");
        }
        assert!(x.iter().any(|v| v.abs() > 1e-9), "kernel vector is zero");
    }

    #[test]
    fn wide_matrix_always_has_kernel() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = kernel_vector(&m, EPS).unwrap();
        assert_in_kernel(&m, &x);
    }

    #[test]
    fn full_rank_square_has_no_kernel() {
        let m = Matrix::identity(3);
        assert!(kernel_vector(&m, EPS).is_none());
    }

    #[test]
    fn rank_deficient_square_has_kernel() {
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let x = kernel_vector(&m, EPS).unwrap();
        assert_in_kernel(&m, &x);
    }

    #[test]
    fn zero_rows_returns_axis() {
        let m = Matrix::zeros(0, 4);
        let x = kernel_vector(&m, EPS).unwrap();
        assert_eq!(x, vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn zero_cols_returns_none() {
        let m = Matrix::zeros(3, 0);
        assert!(kernel_vector(&m, EPS).is_none());
    }

    #[test]
    fn normalized_to_unit_inf_norm() {
        let m = Matrix::from_rows(&[&[1.0, -1.0, 0.0]]);
        let x = kernel_vector(&m, EPS).unwrap();
        let norm = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!((norm - 1.0).abs() < 1e-12);
        assert_in_kernel(&m, &x);
    }

    #[test]
    fn random_wide_matrices_proptestish() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..50 {
            let rows = rng.gen_range(0..6);
            let cols = rng.gen_range(rows + 1..rows + 6);
            let mut m = Matrix::zeros(rows, cols);
            for i in 0..rows {
                for j in 0..cols {
                    m[(i, j)] = rng.gen_range(-3.0..3.0);
                }
            }
            let x = kernel_vector(&m, EPS).expect("wide matrix must have kernel");
            assert_in_kernel(&m, &x);
        }
    }
}
