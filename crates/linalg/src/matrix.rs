//! Dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zero `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row slices; panics on ragged input.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "ragged row {i}");
            m.row_mut(i).copy_from_slice(row);
        }
        m
    }

    /// Build from a flat row-major vector; panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "flat data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Two disjoint mutable row views; panics if `a == b`.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [f64], &mut [f64]) {
        assert_ne!(a, b, "rows must be distinct");
        let c = self.cols;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * c);
            (&mut lo[a * c..(a + 1) * c], &mut hi[..c])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * c);
            let (bl, al) = (&mut lo[b * c..(b + 1) * c], &mut hi[..c]);
            (al, bl)
        }
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Max absolute entry (∞-norm of the flattened matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(16) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 16 {
            writeln!(f, "  ... ({} more rows)", self.rows - 16)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!((z.rows(), z.cols()), (2, 3));
        assert_eq!(z.max_abs(), 0.0);
        let i = Matrix::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
    }

    #[test]
    fn from_rows_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.matvec(&[1.0, -1.0]), vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!((t.rows(), t.cols()), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn two_rows_mut_both_orders() {
        let mut m = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        {
            let (a, b) = m.two_rows_mut(0, 2);
            a[0] = 9.0;
            b[1] = 8.0;
        }
        assert_eq!(m[(0, 0)], 9.0);
        assert_eq!(m[(2, 1)], 8.0);
        {
            let (a, b) = m.two_rows_mut(2, 0); // reversed order
            a[0] = 7.0;
            b[0] = 6.0;
        }
        assert_eq!(m[(2, 0)], 7.0);
        assert_eq!(m[(0, 0)], 6.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }
}
