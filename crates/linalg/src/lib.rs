//! # fss-linalg — dense linear algebra substrate
//!
//! A small, dependency-free dense linear algebra toolkit backing the
//! workspace's LP solver and dependent-rounding engines:
//!
//! * [`Matrix`] — dense row-major `f64` matrix;
//! * [`elim`] — Gaussian elimination with partial pivoting: linear solves,
//!   rank, reduced row echelon form;
//! * [`kernel`] — null-space directions (the kernel walks of Beck–Fiala
//!   style rounding need a nonzero vector in the null space of the active
//!   constraint rows).
//!
//! Everything is `f64` with explicit tolerances; the LP layer owns the
//! decisions about what counts as zero.

pub mod elim;
pub mod kernel;
pub mod matrix;

pub use elim::{rank, rref, solve};
pub use kernel::kernel_vector;
pub use matrix::Matrix;

/// Default comparison tolerance used across the workspace's numeric code.
pub const EPS: f64 = 1e-9;
