//! Gaussian elimination: solves, rank, reduced row echelon form.

use crate::matrix::Matrix;

/// Reduce `m` to reduced row echelon form in place, returning the pivot
/// column of each pivot row (in row order). Entries below `tol` in absolute
/// value are treated as zero.
pub fn rref(m: &mut Matrix, tol: f64) -> Vec<usize> {
    let (rows, cols) = (m.rows(), m.cols());
    let mut pivots = Vec::new();
    let mut r = 0;
    for c in 0..cols {
        if r == rows {
            break;
        }
        // Partial pivoting: largest |entry| in column c at rows >= r.
        let (mut best_row, mut best_val) = (r, m[(r, c)].abs());
        for i in r + 1..rows {
            let v = m[(i, c)].abs();
            if v > best_val {
                best_row = i;
                best_val = v;
            }
        }
        if best_val <= tol {
            continue;
        }
        if best_row != r {
            let (a, b) = m.two_rows_mut(r, best_row);
            a.swap_with_slice(b);
        }
        let piv = m[(r, c)];
        for j in 0..cols {
            m[(r, j)] /= piv;
        }
        m[(r, c)] = 1.0; // exact
        for i in 0..rows {
            if i == r {
                continue;
            }
            let factor = m[(i, c)];
            if factor.abs() <= tol {
                continue;
            }
            let (target, pivot_row) = m.two_rows_mut(i, r);
            for (t, p) in target.iter_mut().zip(pivot_row.iter()) {
                *t -= factor * p;
            }
            m[(i, c)] = 0.0; // exact
        }
        pivots.push(c);
        r += 1;
    }
    pivots
}

/// Numerical rank of `m` under tolerance `tol`.
pub fn rank(m: &Matrix, tol: f64) -> usize {
    let mut copy = m.clone();
    rref(&mut copy, tol).len()
}

/// Solve `A x = b` for square, nonsingular `A`. Returns `None` when `A` is
/// singular at tolerance `tol`.
pub fn solve(a: &Matrix, b: &[f64], tol: f64) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "solve requires a square matrix");
    assert_eq!(a.rows(), b.len(), "rhs length mismatch");
    let n = a.rows();
    // Augment [A | b] and reduce.
    let mut aug = Matrix::zeros(n, n + 1);
    for i in 0..n {
        aug.row_mut(i)[..n].copy_from_slice(a.row(i));
        aug[(i, n)] = b[i];
    }
    let pivots = rref(&mut aug, tol);
    // A pivot in the rhs column means the system is inconsistent; fewer
    // than n structural pivots means A is singular.
    if pivots.contains(&n) || pivots.len() < n {
        return None;
    }
    let mut x = vec![0.0; n];
    for (row, &col) in pivots.iter().enumerate() {
        x[col] = aug[(row, n)];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EPS;

    #[test]
    fn rref_of_identity_is_identity() {
        let mut m = Matrix::identity(3);
        let p = rref(&mut m, EPS);
        assert_eq!(p, vec![0, 1, 2]);
        assert_eq!(m, Matrix::identity(3));
    }

    #[test]
    fn rank_detects_dependent_rows() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(rank(&m, EPS), 1);
        let m2 = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert_eq!(rank(&m2, EPS), 2);
    }

    #[test]
    fn solve_simple_system() {
        // x + y = 3, x - y = 1  =>  x = 2, y = 1
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, -1.0]]);
        let x = solve(&a, &[3.0, 1.0], EPS).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn solve_returns_none_for_singular() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        assert!(solve(&a, &[1.0, 2.0], EPS).is_none());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[5.0, 7.0], EPS).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-10);
        assert!((x[1] - 5.0).abs() < 1e-10);
    }

    #[test]
    fn residual_is_small_on_random_systems() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.gen_range(1..8);
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-5.0..5.0);
                }
            }
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            if let Some(x) = solve(&a, &b, EPS) {
                let r = a.matvec(&x);
                for (ri, bi) in r.iter().zip(&b) {
                    assert!((ri - bi).abs() < 1e-6, "residual too large");
                }
            }
        }
    }
}
