//! Property tests for [`fss_telemetry::LatencyHisto`]: quantile-estimate
//! error bounds against exact sorted quantiles, merge associativity, and
//! snapshot round-trips through JSON.

use fss_telemetry::{LatencyHisto, TelemetrySnapshot};
use proptest::prelude::*;

/// Exact `q`-quantile of a sample set via sorting (rank = ceil(q·n),
/// 1-based — the same rank convention the histogram uses).
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let rank = ((q * n).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn histo_of(samples: &[u64]) -> LatencyHisto {
    let mut h = LatencyHisto::new();
    for &v in samples {
        h.record(v);
    }
    h
}

/// Samples spanning many octaves (0 .. 2^40), non-empty.
fn samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..(1u64 << 40), 1..=200)
}

proptest! {
    /// The estimate brackets the exact quantile from above, within one
    /// octave: `exact <= est < 2·max(exact, 1)`, and the exact value
    /// lies inside the reported bucket bounds.
    #[test]
    fn quantile_estimate_error_is_bounded(vals in samples(), qi in 0u32..=100) {
        let q = qi as f64 / 100.0;
        let h = histo_of(&vals);
        let exact = exact_quantile(&vals, q);
        let est = h.quantile(q);
        prop_assert!(est >= exact, "estimate {est} below exact {exact} at q={q}");
        prop_assert!(
            est < 2 * exact.max(1),
            "estimate {est} beyond one octave of exact {exact} at q={q}"
        );
        let (lo, hi) = h.quantile_bounds(q);
        prop_assert!(lo <= exact && exact <= hi,
            "exact {exact} outside bucket bounds [{lo}, {hi}]");
    }

    /// Merging is associative and commutative, and equals recording the
    /// concatenated sample stream directly.
    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ha, hb, hc) = (histo_of(&a), histo_of(&b), histo_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b (commutativity)
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Equal to single-stream recording.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &histo_of(&all));
    }

    /// Quantile estimates survive the snapshot: a histogram rebuilt
    /// from its snapshot answers every quantile identically.
    #[test]
    fn snapshot_preserves_quantiles(vals in samples(), qi in 0u32..=100) {
        let q = qi as f64 / 100.0;
        let h = histo_of(&vals);
        let back = LatencyHisto::from_snapshot(&h.snapshot());
        prop_assert_eq!(back.quantile(q), h.quantile(q));
        prop_assert_eq!(back.count(), h.count());
        prop_assert_eq!(back.min(), h.min());
        prop_assert_eq!(back.max(), h.max());
    }

    /// A full `TelemetrySnapshot` round-trips through JSON bit-exactly.
    #[test]
    fn snapshot_json_round_trip(vals in samples(), flows in 0u64..1_000_000) {
        let mut s = TelemetrySnapshot::new();
        s.add_counter("flows_dispatched", flows);
        s.add_counter("rounds", vals.len() as u64);
        s.max_gauge("peak_queue_depth", flows / 2 + 1);
        s.add_stage_ns("ingest", flows.wrapping_mul(3));
        s.add_stage_ns("match_repair", flows.wrapping_mul(7));
        s.merge_histo("decision_latency_ns", &histo_of(&vals).snapshot());

        let json = serde_json::to_string(&s).expect("serializable");
        let back: TelemetrySnapshot = serde_json::from_str(&json).expect("deserializable");
        prop_assert_eq!(back, s);
    }
}
