//! Log2-bucketed latency histogram: fixed storage, mergeable, quantile
//! estimation with a bucket-width error bound.

use serde::{Deserialize, Serialize};

/// Number of buckets in a [`LatencyHisto`]. Bucket `0` holds the value
/// `0`; bucket `i` (for `1 <= i < 63`) holds values whose bit length is
/// `i`, i.e. `[2^(i-1), 2^i)`; bucket `63` holds everything from `2^62`
/// up to `u64::MAX`.
pub const HISTO_BUCKETS: usize = 64;

/// A log2-bucketed histogram over `u64` samples (nanoseconds by
/// convention).
///
/// All storage is a fixed `[u64; 64]` array: recording is an index
/// computation plus an increment, with no allocation and no atomics —
/// the histogram is owned behind a `&mut` handle on the hot path.
/// Histograms merge elementwise, so per-worker or per-cell histograms
/// aggregate into run-level ones without losing quantile fidelity.
///
/// Quantile estimates return the upper bound of the bucket containing
/// the requested rank, clamped to the observed maximum. Since a bucket
/// spans at most one octave, the estimate `e` of an exact quantile `x`
/// satisfies `x <= e < 2·max(x, 1)` for samples below `2^62`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHisto {
    buckets: [u64; HISTO_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHisto {
    fn default() -> Self {
        LatencyHisto::new()
    }
}

/// Bucket index for a sample (see [`HISTO_BUCKETS`]).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTO_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i == HISTO_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHisto {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHisto {
            buckets: [0; HISTO_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) as the upper bound of
    /// the bucket containing rank `ceil(q·count)`, clamped to the
    /// observed maximum. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_hi(i).min(self.max);
            }
        }
        self.max
    }

    /// Inclusive `[lo, hi]` range of the bucket containing the
    /// `q`-quantile rank; the exact quantile is guaranteed to lie in
    /// this range. Returns `(0, 0)` on an empty histogram.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return (bucket_lo(i), bucket_hi(i));
            }
        }
        (self.min(), self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram into this one (elementwise; associative
    /// and commutative).
    pub fn merge(&mut self, other: &LatencyHisto) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Freeze into the serializable snapshot form.
    pub fn snapshot(&self) -> HistoSnapshot {
        let mut buckets = self.buckets.to_vec();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistoSnapshot {
            count: self.count,
            sum_ns: self.sum,
            min_ns: self.min(),
            max_ns: self.max,
            p50_ns: self.p50(),
            p90_ns: self.p90(),
            p99_ns: self.p99(),
            buckets,
        }
    }

    /// Rebuild a histogram from a snapshot (quantile fields are
    /// recomputed from the buckets; min/max are restored exactly).
    pub fn from_snapshot(s: &HistoSnapshot) -> LatencyHisto {
        let mut h = LatencyHisto::new();
        for (i, &c) in s.buckets.iter().take(HISTO_BUCKETS).enumerate() {
            h.buckets[i] = c;
        }
        h.count = s.count;
        h.sum = s.sum_ns;
        h.min = if s.count == 0 { u64::MAX } else { s.min_ns };
        h.max = s.max_ns;
        h
    }

    /// Iterate `(inclusive_upper_bound, count)` over non-empty buckets.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_hi(i), c))
    }
}

/// Serialized form of a [`LatencyHisto`]: summary statistics,
/// pre-computed quantile estimates, and the bucket counts (trailing
/// zero buckets trimmed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of samples, ns.
    pub sum_ns: u64,
    /// Minimum sample, ns (0 when empty).
    pub min_ns: u64,
    /// Maximum sample, ns.
    pub max_ns: u64,
    /// Median estimate, ns.
    pub p50_ns: u64,
    /// 90th-percentile estimate, ns.
    pub p90_ns: u64,
    /// 99th-percentile estimate, ns.
    pub p99_ns: u64,
    /// Per-bucket counts, trailing zeros trimmed (see [`HISTO_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistoSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        LatencyHisto::new().snapshot()
    }

    /// Merge another snapshot into this one (rebuilds through the
    /// histogram form so quantile estimates stay consistent).
    pub fn merge(&mut self, other: &HistoSnapshot) {
        let mut h = LatencyHisto::from_snapshot(self);
        h.merge(&LatencyHisto::from_snapshot(other));
        *self = h.snapshot();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 0..HISTO_BUCKETS {
            assert_eq!(bucket_of(bucket_lo(i)), i);
            assert_eq!(bucket_of(bucket_hi(i)), i);
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let mut h = LatencyHisto::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        // Exact p50 is 50 (bucket [32,63]); the estimate is the bucket
        // upper bound.
        let p50 = h.p50();
        assert!((50..=100).contains(&p50), "p50 estimate {p50}");
        assert!(h.p99() >= 99);
        assert_eq!(h.max(), 100);
        assert_eq!(h.min(), 1);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = LatencyHisto::new();
        let mut b = LatencyHisto::new();
        let mut c = LatencyHisto::new();
        for v in [3u64, 9, 120, 4096, 0, 77] {
            a.record(v);
            c.record(v);
        }
        for v in [1u64, 2, 1_000_000] {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn snapshot_round_trip() {
        let mut h = LatencyHisto::new();
        for v in [5u64, 17, 17, 300, 12_345] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = LatencyHisto::from_snapshot(&s);
        assert_eq!(back, h);
        assert_eq!(back.snapshot(), s);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHisto::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.snapshot().buckets, Vec::<u64>::new());
    }
}
