//! Zero-allocation observability primitives for the flow-switch stack.
//!
//! The crate is deliberately tiny and dependency-free (the in-tree `serde`
//! shim is its only dependency, for artifact persistence). It provides:
//!
//! - [`Counter`] / [`Gauge`]: lock-free atomic cells for cross-thread
//!   metrics (flows/s, queue depth) registered in a [`Registry`].
//! - [`LatencyHisto`]: a log2-bucketed histogram over a fixed 64-bucket
//!   array — zero allocation after construction, mergeable, with
//!   p50/p90/p99 estimation whose error is bounded by the bucket width
//!   (an estimate never exceeds 2x the exact quantile; proptested in
//!   `tests/histo_props.rs`).
//! - [`EngineTelemetry`] + [`span!`]: a `&mut`-handle stage timer for the
//!   engine's round loop (ingest → queue update → matching repair →
//!   dispatch). A disabled handle skips every `Instant::now()` call, so
//!   uninstrumented runs pay one branch per stage — measured-zero
//!   overhead — and produce bit-identical schedules.
//! - [`TelemetrySnapshot`]: the serializable, mergeable export format that
//!   rides in `BENCH_*.json` cells and dist heartbeats, renderable as a
//!   Prometheus text-format export via [`to_prometheus`].
//!
//! Stage taxonomy (fixed, see [`Stage`]): `ingest`, `queue_update`,
//! `match_repair`, `dispatch`.
//!
//! Span-level tracing (the *when*, not just the *how much*) lives in
//! the sibling `fss-flight` crate; [`EngineTelemetry`] carries an
//! optional [`FlightHandle`] so stage activations, rounds, and channel
//! waits record as spans under the same one-branch-when-disabled
//! contract. The handle types are re-exported here so the engine only
//! depends on this crate.

#![deny(missing_docs)]

mod histo;
mod prom;
mod registry;
mod snapshot;
mod stage;

pub use histo::{HistoSnapshot, LatencyHisto, HISTO_BUCKETS};
pub use prom::to_prometheus;
pub use registry::{Counter, Gauge, Registry};
pub use snapshot::{StageStat, TelemetrySnapshot};
pub use stage::{EngineTelemetry, Stage};

pub use fss_flight::{ChanId, FlightHandle, FlightRecorder, SpanKind, TraceSink, WaitDir};
