//! Prometheus text-format rendering of a [`TelemetrySnapshot`].

use std::fmt::Write as _;

use crate::snapshot::TelemetrySnapshot;

/// Sanitize a metric-name fragment to `[a-zA-Z0-9_]`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and line feed must be escaped (`\\`, `\"`, `\n`) — a literal
/// newline would split the sample line and emit invalid exposition
/// text.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a label set (`{k="v",...}`), empty string when no labels.
fn label_str(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Merge extra labels onto a base label set.
fn with(labels: &[(&str, &str)], extra: (&str, &str)) -> String {
    let mut all: Vec<(&str, &str)> = labels.to_vec();
    all.push(extra);
    label_str(&all)
}

/// Render a snapshot in the Prometheus text exposition format.
///
/// Counters become `fss_<name>_total`, gauges `fss_<name>`, stage
/// totals a single `fss_stage_ns_total{stage="..."}` family, and each
/// histogram a `fss_<name>` family with cumulative `_bucket{le="..."}`
/// lines plus `_sum` and `_count`. `labels` (e.g. `cell_id`) are
/// attached to every sample line.
pub fn to_prometheus(snap: &TelemetrySnapshot, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    let ls = label_str(labels);
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE fss_{n}_total counter");
        let _ = writeln!(out, "fss_{n}_total{ls} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE fss_{n} gauge");
        let _ = writeln!(out, "fss_{n}{ls} {v}");
    }
    if !snap.stages.is_empty() {
        let _ = writeln!(out, "# TYPE fss_stage_ns_total counter");
        for s in &snap.stages {
            let l = with(labels, ("stage", &s.stage));
            let _ = writeln!(out, "fss_stage_ns_total{l} {}", s.total_ns);
        }
    }
    for (name, h) in &snap.histos {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE fss_{n} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let hi = if i == 0 {
                0
            } else if i >= 63 {
                u64::MAX
            } else {
                (1u64 << i) - 1
            };
            let l = with(labels, ("le", &hi.to_string()));
            let _ = writeln!(out, "fss_{n}_bucket{l} {cum}");
        }
        let l = with(labels, ("le", "+Inf"));
        let _ = writeln!(out, "fss_{n}_bucket{l} {}", h.count);
        let _ = writeln!(out, "fss_{n}_sum{ls} {}", h.sum_ns);
        let _ = writeln!(out, "fss_{n}_count{ls} {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyHisto;

    #[test]
    fn renders_all_families() {
        let mut s = TelemetrySnapshot::new();
        s.add_counter("rounds", 12);
        s.max_gauge("peak_queue_depth", 4);
        s.add_stage_ns("ingest", 1000);
        let mut h = LatencyHisto::new();
        h.record(5);
        h.record(300);
        s.merge_histo("decision_latency_ns", &h.snapshot());

        let text = to_prometheus(&s, &[("cell_id", "fig6/a")]);
        assert!(text.contains("# TYPE fss_rounds_total counter"));
        assert!(text.contains("fss_rounds_total{cell_id=\"fig6/a\"} 12"));
        assert!(text.contains("fss_peak_queue_depth{cell_id=\"fig6/a\"} 4"));
        assert!(text.contains("fss_stage_ns_total{cell_id=\"fig6/a\",stage=\"ingest\"} 1000"));
        assert!(text.contains("fss_decision_latency_ns_bucket{cell_id=\"fig6/a\",le=\"+Inf\"} 2"));
        assert!(text.contains("fss_decision_latency_ns_count{cell_id=\"fig6/a\"} 2"));
    }

    #[test]
    fn label_values_escape_quotes_backslashes_and_newlines() {
        let mut s = TelemetrySnapshot::new();
        s.add_counter("rounds", 1);
        s.add_stage_ns("weird\"stage\\with\nnewline", 5);
        let text = to_prometheus(&s, &[("artifact", "runs/\"q1\"\\cell\nline2")]);
        // Every sample stays on one physical line...
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.contains(' '),
                "torn sample line: {line:?}"
            );
        }
        // ...and the value is escaped exactly per the exposition format.
        assert!(
            text.contains(r#"artifact="runs/\"q1\"\\cell\nline2""#),
            "{text}"
        );
        assert!(
            text.contains(r#"stage="weird\"stage\\with\nnewline""#),
            "{text}"
        );
        // No raw newline survives inside any label value.
        assert_eq!(text.matches("line2").count(), 2);
        for line in text.lines() {
            let quotes = line.matches('"').count() - line.matches("\\\"").count();
            assert!(quotes % 2 == 0, "unbalanced quotes in {line:?}");
        }
    }

    #[test]
    fn bucket_lines_are_cumulative() {
        let mut h = LatencyHisto::new();
        for v in [1u64, 2, 2, 900] {
            h.record(v);
        }
        let mut s = TelemetrySnapshot::new();
        s.merge_histo("lat", &h.snapshot());
        let text = to_prometheus(&s, &[]);
        assert!(text.contains("fss_lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("fss_lat_bucket{le=\"3\"} 3"));
        assert!(text.contains("fss_lat_bucket{le=\"1023\"} 4"));
        assert!(text.contains("fss_lat_bucket{le=\"+Inf\"} 4"));
    }
}
