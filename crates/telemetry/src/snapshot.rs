//! The serializable, mergeable export format.

use serde::{Deserialize, Serialize};

use crate::histo::HistoSnapshot;

/// Accumulated time of one round-loop stage (see
/// [`crate::Stage`] for the taxonomy).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageStat {
    /// Stage name (`ingest`, `queue_update`, `match_repair`,
    /// `dispatch`).
    pub stage: String,
    /// Total wall time spent in the stage, ns.
    pub total_ns: u64,
}

/// A frozen, serializable view of every metric a run produced.
///
/// Snapshots are what cross process boundaries: they ride in
/// `BENCH_*.json` cells (schema v3), in dist heartbeats, and out of
/// `flowsched telemetry dump`. They merge associatively — counters and
/// stage totals add, gauges take the max, histograms merge bucketwise —
/// so per-cell snapshots roll up into per-worker and run-level ones.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TelemetrySnapshot {
    /// Monotonic counters, `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges, `(name, value)`; merge keeps the max.
    pub gauges: Vec<(String, u64)>,
    /// Per-stage wall-time totals.
    pub stages: Vec<StageStat>,
    /// Latency histograms, `(name, snapshot)`.
    pub histos: Vec<(String, HistoSnapshot)>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        TelemetrySnapshot::default()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.stages.is_empty()
            && self.histos.is_empty()
    }

    /// Add `v` to counter `name` (creating it at 0).
    pub fn add_counter(&mut self, name: &str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, cur)) => *cur += v,
            None => {
                self.counters.push((name.to_string(), v));
                self.counters.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
    }

    /// Raise gauge `name` to at least `v` (creating it).
    pub fn max_gauge(&mut self, name: &str, v: u64) {
        match self.gauges.iter_mut().find(|(n, _)| n == name) {
            Some((_, cur)) => *cur = (*cur).max(v),
            None => {
                self.gauges.push((name.to_string(), v));
                self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
    }

    /// Add `ns` to stage `name`'s total.
    pub fn add_stage_ns(&mut self, name: &str, ns: u64) {
        match self.stages.iter_mut().find(|s| s.stage == name) {
            Some(s) => s.total_ns += ns,
            None => self.stages.push(StageStat {
                stage: name.to_string(),
                total_ns: ns,
            }),
        }
    }

    /// Merge histogram `h` into the histo named `name` (creating it).
    pub fn merge_histo(&mut self, name: &str, h: &HistoSnapshot) {
        match self.histos.iter_mut().find(|(n, _)| n == name) {
            Some((_, cur)) => cur.merge(h),
            None => {
                self.histos.push((name.to_string(), h.clone()));
                self.histos.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
    }

    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Stage total by name, ns.
    pub fn stage_ns(&self, name: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|s| s.stage == name)
            .map(|s| s.total_ns)
    }

    /// Histogram snapshot by name.
    pub fn histo(&self, name: &str) -> Option<&HistoSnapshot> {
        self.histos.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// The stage with the largest accumulated time, if any.
    pub fn slowest_stage(&self) -> Option<&StageStat> {
        self.stages.iter().max_by_key(|s| s.total_ns)
    }

    /// Fold `other` into `self`: counters and stage totals add, gauges
    /// keep the max, histograms merge bucketwise. Associative and
    /// commutative, so roll-ups are order-independent.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (n, v) in &other.counters {
            self.add_counter(n, *v);
        }
        for (n, v) in &other.gauges {
            self.max_gauge(n, *v);
        }
        for s in &other.stages {
            self.add_stage_ns(&s.stage, s.total_ns);
        }
        for (n, h) in &other.histos {
            self.merge_histo(n, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyHisto;

    #[test]
    fn merge_with_disjoint_stage_sets_is_total_not_intersecting() {
        // Worker A only ever entered ingest + match_repair; worker B
        // only queue_update + dispatch (say, it ran the shard threads).
        // The run-level merge must carry *every* stage either worker
        // saw, at its full total — not just the intersection.
        let mut a = TelemetrySnapshot::new();
        a.add_stage_ns("ingest", 100);
        a.add_stage_ns("match_repair", 40);
        let mut b = TelemetrySnapshot::new();
        b.add_stage_ns("queue_update", 70);
        b.add_stage_ns("dispatch", 25);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.stages.len(), 4, "union, not intersection");
        assert_eq!(merged.stage_ns("ingest"), Some(100));
        assert_eq!(merged.stage_ns("match_repair"), Some(40));
        assert_eq!(merged.stage_ns("queue_update"), Some(70));
        assert_eq!(merged.stage_ns("dispatch"), Some(25));

        // Merging the other way yields the same multiset of totals.
        let mut other = b.clone();
        other.merge(&a);
        for s in &merged.stages {
            assert_eq!(other.stage_ns(&s.stage), Some(s.total_ns));
        }

        // Partially-overlapping sets: shared stages add, exclusive
        // stages pass through.
        let mut c = TelemetrySnapshot::new();
        c.add_stage_ns("ingest", 1);
        c.add_stage_ns("dispatch", 2);
        merged.merge(&c);
        assert_eq!(merged.stage_ns("ingest"), Some(101));
        assert_eq!(merged.stage_ns("dispatch"), Some(27));
        assert_eq!(merged.stages.len(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = TelemetrySnapshot::new();
        a.add_counter("flows", 10);
        a.max_gauge("peak_queue_depth", 5);
        a.add_stage_ns("ingest", 100);
        let mut h = LatencyHisto::new();
        h.record(7);
        a.merge_histo("decision_latency_ns", &h.snapshot());

        let mut b = TelemetrySnapshot::new();
        b.add_counter("flows", 3);
        b.add_counter("rounds", 2);
        b.max_gauge("peak_queue_depth", 2);
        b.add_stage_ns("ingest", 50);
        b.add_stage_ns("dispatch", 25);

        a.merge(&b);
        assert_eq!(a.counter("flows"), Some(13));
        assert_eq!(a.counter("rounds"), Some(2));
        assert_eq!(a.gauge("peak_queue_depth"), Some(5));
        assert_eq!(a.stage_ns("ingest"), Some(150));
        assert_eq!(a.stage_ns("dispatch"), Some(25));
        assert_eq!(a.histo("decision_latency_ns").unwrap().count, 1);
    }

    #[test]
    fn slowest_stage_is_argmax() {
        let mut s = TelemetrySnapshot::new();
        s.add_stage_ns("ingest", 10);
        s.add_stage_ns("match_repair", 99);
        s.add_stage_ns("dispatch", 5);
        assert_eq!(s.slowest_stage().unwrap().stage, "match_repair");
    }
}
