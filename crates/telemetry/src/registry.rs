//! Lock-free metric cells and the registry that snapshots them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::snapshot::TelemetrySnapshot;

/// A monotonic, lock-free counter cell (relaxed atomics — counters are
/// statistics, not synchronization).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `v`.
    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free point-in-time gauge cell.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the value to at least `v`.
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named collection of shared [`Counter`]/[`Gauge`] cells that
/// freezes into a [`TelemetrySnapshot`].
///
/// Cells are handed out as `Arc`s so producer threads update them
/// lock-free while the owner snapshots at any time. A registry built
/// with [`Registry::disabled`] hands out unregistered cells and
/// snapshots empty, so instrumented code needs no branches of its own.
#[derive(Debug, Default)]
pub struct Registry {
    on: bool,
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
}

impl Registry {
    /// A recording registry.
    pub fn new() -> Self {
        Registry {
            on: true,
            counters: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// A no-op registry: cells still work (they are plain atomics) but
    /// are not retained, and [`Registry::snapshot`] is always empty.
    pub fn disabled() -> Self {
        Registry {
            on: false,
            counters: Vec::new(),
            gauges: Vec::new(),
        }
    }

    /// Whether this registry retains cells.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&mut self, name: &str) -> Arc<Counter> {
        if !self.on {
            return Arc::new(Counter::new());
        }
        if let Some((_, c)) = self.counters.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        self.counters.push((name.to_string(), Arc::clone(&c)));
        self.counters.sort_by(|a, b| a.0.cmp(&b.0));
        c
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&mut self, name: &str) -> Arc<Gauge> {
        if !self.on {
            return Arc::new(Gauge::new());
        }
        if let Some((_, g)) = self.gauges.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        self.gauges.push((name.to_string(), Arc::clone(&g)));
        self.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        g
    }

    /// Freeze every registered cell into a snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        for (n, c) in &self.counters {
            s.add_counter(n, c.get());
        }
        for (n, g) in &self.gauges {
            s.max_gauge(n, g.get());
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cells_feed_the_snapshot() {
        let mut r = Registry::new();
        let flows = r.counter("flows");
        let depth = r.gauge("queue_depth");
        let h = {
            let flows = Arc::clone(&flows);
            std::thread::spawn(move || {
                for _ in 0..1000 {
                    flows.inc();
                }
            })
        };
        flows.add(5);
        depth.record_max(3);
        depth.record_max(2);
        h.join().unwrap();
        let s = r.snapshot();
        assert_eq!(s.counter("flows"), Some(1005));
        assert_eq!(s.gauge("queue_depth"), Some(3));
    }

    #[test]
    fn registering_twice_returns_the_same_cell() {
        let mut r = Registry::new();
        r.counter("x").inc();
        r.counter("x").inc();
        assert_eq!(r.snapshot().counter("x"), Some(2));
    }

    #[test]
    fn disabled_registry_snapshots_empty() {
        let mut r = Registry::disabled();
        r.counter("x").inc();
        r.gauge("y").set(9);
        assert!(r.snapshot().is_empty());
    }
}
