//! The round-loop stage taxonomy and the `&mut`-handle stage timer the
//! engine threads through its drive loops.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::histo::LatencyHisto;
use crate::snapshot::TelemetrySnapshot;
use fss_flight::{ChanId, FlightHandle, SpanKind, WaitDir};

/// The four stages of one engine round (the taxonomy the pipelined
/// multi-core engine will split along).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Pulling arrivals from the source and enqueueing flows.
    Ingest,
    /// Queue maintenance: peak tracking, emptied-port cleanup.
    QueueUpdate,
    /// Matching repair / selection — the per-round scheduling decision.
    MatchRepair,
    /// Releasing matched flows and recording response times.
    Dispatch,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 4;

    /// All stages, in round order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Ingest,
        Stage::QueueUpdate,
        Stage::MatchRepair,
        Stage::Dispatch,
    ];

    /// Stable snake_case name (used in snapshots and Prometheus
    /// exports).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::QueueUpdate => "queue_update",
            Stage::MatchRepair => "match_repair",
            Stage::Dispatch => "dispatch",
        }
    }

    /// Dense index into per-stage arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Stage::Ingest => 0,
            Stage::QueueUpdate => 1,
            Stage::MatchRepair => 2,
            Stage::Dispatch => 3,
        }
    }

    /// The fss-flight span kind for this stage (same discriminant
    /// order; pinned by tests in both crates).
    #[inline]
    pub fn span_kind(self) -> SpanKind {
        match self {
            Stage::Ingest => SpanKind::Ingest,
            Stage::QueueUpdate => SpanKind::QueueUpdate,
            Stage::MatchRepair => SpanKind::MatchRepair,
            Stage::Dispatch => SpanKind::Dispatch,
        }
    }
}

/// The hot-path telemetry handle the engine's drive loops carry.
///
/// All state is inline (`[u64; 4]` stage totals plus one
/// [`LatencyHisto`]): recording allocates nothing. A handle built with
/// [`EngineTelemetry::disabled`] skips every `Instant::now()` call —
/// each instrumentation point costs one predictable branch — so
/// uninstrumented runs are measured-zero overhead and produce
/// bit-identical schedules (the engine's differential tests pin this
/// down).
#[derive(Debug)]
pub struct EngineTelemetry {
    on: bool,
    stage_ns: [u64; Stage::COUNT],
    rounds: u64,
    decision: LatencyHisto,
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    publish: Option<(u64, Arc<Mutex<TelemetrySnapshot>>)>,
    /// Span recording (fss-flight). Disabled by default: one branch
    /// per instrumentation point, no clock reads, no ring.
    flight: FlightHandle,
}

impl EngineTelemetry {
    /// A recording handle.
    pub fn enabled() -> Self {
        EngineTelemetry {
            on: true,
            stage_ns: [0; Stage::COUNT],
            rounds: 0,
            decision: LatencyHisto::new(),
            counters: Vec::new(),
            gauges: Vec::new(),
            publish: None,
            flight: FlightHandle::disabled(),
        }
    }

    /// A no-op handle: every instrumentation point reduces to one
    /// branch, and [`EngineTelemetry::snapshot`] stays empty.
    pub fn disabled() -> Self {
        EngineTelemetry {
            on: false,
            ..EngineTelemetry::enabled()
        }
    }

    /// Whether this handle records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Time `f` under `stage` (no-op timing when disabled). With a
    /// live flight handle the activation is also recorded as a span
    /// tagged with the current round.
    #[inline]
    pub fn stage<R>(&mut self, stage: Stage, f: impl FnOnce() -> R) -> R {
        if !self.on {
            return f();
        }
        if self.flight.is_enabled() {
            if stage == Stage::MatchRepair {
                // CI fault injection: the armed FSS_FLIGHT_FAIL_STALL
                // sleep lives in the match stage.
                self.flight.maybe_stall();
            }
            let t0 = Instant::now();
            let r = f();
            let t1 = Instant::now();
            self.stage_ns[stage.index()] += t1.duration_since(t0).as_nanos() as u64;
            self.flight.record(stage.span_kind(), t0, t1);
            return r;
        }
        let t0 = Instant::now();
        let r = f();
        self.stage_ns[stage.index()] += t0.elapsed().as_nanos() as u64;
        r
    }

    /// Time `f` as the round's scheduling decision: accrues under
    /// [`Stage::MatchRepair`] *and* records one sample in the
    /// decision-latency histogram.
    #[inline]
    pub fn decision<R>(&mut self, f: impl FnOnce() -> R) -> R {
        if !self.on {
            return f();
        }
        if self.flight.is_enabled() {
            // The decision *is* the match stage in every drive loop, so
            // the CI fault injection and the match_repair span both
            // live here.
            self.flight.maybe_stall();
            let t0 = Instant::now();
            let r = f();
            let t1 = Instant::now();
            let ns = t1.duration_since(t0).as_nanos() as u64;
            self.stage_ns[Stage::MatchRepair.index()] += ns;
            self.decision.record(ns);
            self.flight.record(SpanKind::MatchRepair, t0, t1);
            return r;
        }
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as u64;
        self.stage_ns[Stage::MatchRepair.index()] += ns;
        self.decision.record(ns);
        r
    }

    /// Publish a [`TelemetrySnapshot`] into `slot` every `every`
    /// completed rounds, so long-running drives (the `flowsched serve`
    /// engine thread) expose live progress without a channel in the hot
    /// path. Publishing is observation only — it never changes what the
    /// handle records — and costs one modulo per round plus a snapshot
    /// on the cadence. No-op on a disabled handle or `every == 0`.
    pub fn publish_every(&mut self, every: u64, slot: Arc<Mutex<TelemetrySnapshot>>) {
        if self.on && every > 0 {
            self.publish = Some((every, slot));
        }
    }

    /// Count one completed round.
    #[inline]
    pub fn round(&mut self) {
        if !self.on {
            return;
        }
        self.rounds += 1;
        if let Some((every, slot)) = &self.publish {
            if self.rounds.is_multiple_of(*every) {
                if let Ok(mut s) = slot.lock() {
                    *s = self.snapshot();
                }
            }
        }
    }

    /// Add `v` to the named counter (cold path: called at loop exit,
    /// not per round).
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        if !self.on {
            return;
        }
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, cur)) => *cur += v,
            None => self.counters.push((name, v)),
        }
    }

    /// Raise the named gauge to at least `v` (cold path).
    pub fn gauge_max(&mut self, name: &'static str, v: u64) {
        if !self.on {
            return;
        }
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, cur)) => *cur = (*cur).max(v),
            None => self.gauges.push((name, v)),
        }
    }

    /// Rounds counted so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total ns accrued under `stage`.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage.index()]
    }

    /// The per-round decision-latency histogram.
    pub fn decision_histo(&self) -> &LatencyHisto {
        &self.decision
    }

    /// Fold another handle's totals into this one.
    pub fn merge(&mut self, other: &EngineTelemetry) {
        if !self.on {
            return;
        }
        for (a, b) in self.stage_ns.iter_mut().zip(&other.stage_ns) {
            *a += b;
        }
        self.rounds += other.rounds;
        self.decision.merge(&other.decision);
        for (n, v) in &other.counters {
            self.counter_add(n, *v);
        }
        for (n, v) in &other.gauges {
            self.gauge_max(n, *v);
        }
    }

    /// Attach a span-recording flight handle. Tracing rides on an
    /// enabled handle (stage spans are recorded inside the timed
    /// path), so attaching a live handle forces `on`; attaching a
    /// disabled one changes nothing.
    pub fn with_flight(mut self, flight: FlightHandle) -> Self {
        if flight.is_enabled() {
            self.on = true;
        }
        self.flight = flight;
        self
    }

    /// The flight handle (disabled by default).
    pub fn flight(&mut self) -> &mut FlightHandle {
        &mut self.flight
    }

    /// Is span tracing live on this handle?
    #[inline]
    pub fn flight_enabled(&self) -> bool {
        self.flight.is_enabled()
    }

    /// A fork of this handle for a worker thread: same enabled-ness,
    /// fresh totals, and (when tracing) its own span ring labelled
    /// `name`. Merge the fork back with [`EngineTelemetry::merge`] at
    /// join.
    pub fn sibling(&self, name: &str) -> EngineTelemetry {
        let mut t = if self.on {
            EngineTelemetry::enabled()
        } else {
            EngineTelemetry::disabled()
        };
        t.flight = self.flight.sibling(name);
        t
    }

    /// Mark the start of engine round `t` (the `Frontier` round stamp):
    /// closes the previous round's span and tags subsequent spans on
    /// this thread with `t`. One branch when tracing is off.
    #[inline]
    pub fn flight_round(&mut self, t: u64) {
        self.flight.round_start(t);
    }

    /// Tag-only round stamp for threads that learn rounds second-hand
    /// (ingest batch heads, dispatch manifests): no round span, no
    /// watchdog progress.
    #[inline]
    pub fn flight_round_tag(&mut self, t: u64) {
        self.flight.round_tag(t);
    }

    /// Close the final round span when a drive finishes.
    pub fn flight_round_finish(&mut self) {
        self.flight.round_finish();
    }

    /// Register a channel for watchdog depth accounting.
    pub fn flight_chan(&mut self, name: &str) -> ChanId {
        self.flight.chan(name)
    }

    /// Record a blocking receive as a `chan_recv` span (one branch
    /// when tracing is off).
    #[inline]
    pub fn chan_recv<R>(&mut self, chan: ChanId, f: impl FnOnce() -> R) -> R {
        self.flight.wait(WaitDir::Recv, chan, f)
    }

    /// Record a blocking send as a `chan_send` span (one branch when
    /// tracing is off).
    #[inline]
    pub fn chan_send<R>(&mut self, chan: ChanId, f: impl FnOnce() -> R) -> R {
        self.flight.wait(WaitDir::Send, chan, f)
    }

    /// Freeze into the serializable snapshot form. A disabled handle
    /// snapshots empty.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        if !self.on {
            return s;
        }
        s.add_counter("rounds", self.rounds);
        for (n, v) in &self.counters {
            s.add_counter(n, *v);
        }
        for (n, v) in &self.gauges {
            s.max_gauge(n, *v);
        }
        for st in Stage::ALL {
            s.add_stage_ns(st.name(), self.stage_ns[st.index()]);
        }
        if self.decision.count() > 0 {
            s.merge_histo("decision_latency_ns", &self.decision.snapshot());
        }
        s
    }
}

/// Time a block under a [`Stage`] through an [`EngineTelemetry`] handle:
///
/// ```
/// use fss_telemetry::{span, EngineTelemetry, Stage};
/// let mut tele = EngineTelemetry::enabled();
/// let sum = span!(tele, Stage::Ingest, { 1 + 1 });
/// assert_eq!(sum, 2);
/// ```
#[macro_export]
macro_rules! span {
    ($tele:expr, $stage:expr, $body:expr) => {
        $tele.stage($stage, || $body)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_snapshots_empty() {
        let mut t = EngineTelemetry::disabled();
        let v = t.stage(Stage::Ingest, || 41) + 1;
        assert_eq!(v, 42);
        t.decision(|| ());
        t.round();
        t.counter_add("flows_dispatched", 9);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn enabled_handle_accrues() {
        let mut t = EngineTelemetry::enabled();
        t.stage(Stage::Dispatch, || {
            std::thread::sleep(std::time::Duration::from_micros(50))
        });
        t.decision(|| std::thread::sleep(std::time::Duration::from_micros(50)));
        t.round();
        t.counter_add("flows_dispatched", 3);
        t.gauge_max("peak_queue_depth", 7);
        let s = t.snapshot();
        assert_eq!(s.counter("rounds"), Some(1));
        assert_eq!(s.counter("flows_dispatched"), Some(3));
        assert_eq!(s.gauge("peak_queue_depth"), Some(7));
        assert!(s.stage_ns("dispatch").unwrap() > 0);
        assert!(s.stage_ns("match_repair").unwrap() > 0);
        assert_eq!(s.histo("decision_latency_ns").unwrap().count, 1);
    }

    #[test]
    fn span_macro_forwards_value() {
        let mut t = EngineTelemetry::enabled();
        let mut acc = 0u64;
        let out = span!(t, Stage::QueueUpdate, {
            acc += 5;
            acc
        });
        assert_eq!(out, 5);
        t.round();
        assert_eq!(t.snapshot().counter("rounds"), Some(1));
    }

    #[test]
    fn publish_every_updates_the_shared_slot_on_cadence() {
        let slot = Arc::new(Mutex::new(TelemetrySnapshot::new()));
        let mut t = EngineTelemetry::enabled();
        t.publish_every(2, Arc::clone(&slot));
        t.round();
        assert!(slot.lock().unwrap().is_empty(), "off-cadence round");
        t.round();
        assert_eq!(slot.lock().unwrap().counter("rounds"), Some(2));
        t.counter_add("flows_dispatched", 5);
        t.round();
        t.round();
        let s = slot.lock().unwrap().clone();
        assert_eq!(
            s.counter("rounds"),
            Some(4),
            "slot holds the latest snapshot"
        );
        assert_eq!(s.counter("flows_dispatched"), Some(5));
    }

    #[test]
    fn disabled_handle_never_publishes() {
        let slot = Arc::new(Mutex::new(TelemetrySnapshot::new()));
        let mut t = EngineTelemetry::disabled();
        t.publish_every(1, Arc::clone(&slot));
        t.round();
        assert!(slot.lock().unwrap().is_empty());
    }

    #[test]
    fn merge_adds_rounds_and_stages() {
        let mut a = EngineTelemetry::enabled();
        let mut b = EngineTelemetry::enabled();
        a.round();
        b.round();
        b.round();
        b.counter_add("flows_dispatched", 2);
        a.merge(&b);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.snapshot().counter("flows_dispatched"), Some(2));
    }
}
