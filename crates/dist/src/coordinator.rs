//! The coordinator: shards the flat cell list across worker processes,
//! merges their result streams into the checkpoint log and the final
//! artifacts, and survives both worker death (reassignment) and its own
//! death (`--resume` replays the checkpoint and re-executes only what
//! is missing).
//!
//! Fault model:
//!
//! * **Worker dies** (crash, OOM-kill, `kill -9`): its stdout pipe hits
//!   EOF. Cells it completed are already checkpointed (results stream
//!   per cell); its unfinished cells are re-dealt round-robin onto the
//!   surviving workers. When no worker survives, the run fails with the
//!   checkpoint intact and a `--resume` hint.
//! * **Coordinator dies**: the append-only `BENCH_cells.jsonl` stream
//!   is the checkpoint. `--resume` replays it (tolerating a truncated
//!   final line from the crash), keeps every cell whose fingerprint is
//!   in the current universe, and schedules only the rest.
//! * **Version/registry skew**: workers echo their universe size in the
//!   `Ready` handshake; a mismatch aborts the run before any cell is
//!   wasted, and an unknown assigned fingerprint aborts the worker.
//!
//! There are no timeouts: liveness is pipe-EOF (process death closes
//! the pipe), and heartbeats are logged context, not a failure
//! detector — a deliberate choice that keeps the protocol free of
//! false-positive kills on machines where a paper-tier LP cell can
//! legitimately run for an hour. A slow-but-heartbeating worker keeps
//! its cells; nothing is re-dealt until its pipe actually closes.
//! Heartbeat *payloads* (sequence number + cumulative worker snapshot)
//! feed the live `--progress` line only; the run-level telemetry in
//! [`DistSummary`] is folded from the checkpointed cells, which cannot
//! double-count.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::time::Instant;

use fss_bench::{
    assemble_reports, flatten, scale_of, select_experiments, write_reports, BenchOptions, FlatCell,
    ProgressLine, CELLS_STREAM_NAME,
};
use fss_sim::report::{bench_cell_to_jsonl, read_cells_jsonl, BenchCell, BenchReport};
use fss_telemetry::TelemetrySnapshot;

use fss_flight::{read_spool, to_chrome_merged, Spool, TraceSource};

use crate::partition::round_robin;
use crate::proto::{MsgKind, RunConfig, WireMsg, PROTO_VERSION};

/// Options for one coordinated run.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// The underlying bench selection/scale/output options.
    pub bench: BenchOptions,
    /// Worker processes to spawn (>= 1; capped at the pending cell
    /// count).
    pub workers: usize,
    /// Replay an existing `BENCH_cells.jsonl` checkpoint and execute
    /// only the cells it is missing.
    pub resume: bool,
    /// Worker command line (program + args), e.g.
    /// `["/path/to/flowsched", "bench-worker"]`.
    pub worker_cmd: Vec<String>,
    /// Fault injection for tests/CI: `(worker_index, fail_after)` makes
    /// that worker crash without goodbye after that many results.
    pub fail_worker: Option<(usize, u64)>,
    /// Override the worker heartbeat interval in milliseconds (`None` =
    /// the worker default). Mostly for tests that need many beats per
    /// cell.
    pub heartbeat_ms: Option<u64>,
    /// Fault injection for tests/CI: `(worker_index, sleep_ms)` makes
    /// that worker sleep before each cell — slow but alive, still
    /// heartbeating. Exercises the no-timeout fault model: a stalled
    /// worker must not get its cells re-dealt.
    pub slow_worker: Option<(usize, u64)>,
    /// Write a merged Chrome Trace Format JSON here (`--flight-trace`):
    /// workers spool span traces locally under `<out_dir>/flight/`,
    /// ship the spool path in their `Done` goodbye, and the coordinator
    /// merges every spool — including those of crashed workers, read
    /// from the conventional path — with `w<id>/` track prefixes.
    pub flight_trace: Option<std::path::PathBuf>,
}

/// What a coordinated run did.
#[derive(Debug)]
pub struct DistSummary {
    /// The merged, validated reports (also persisted as artifacts).
    pub reports: Vec<BenchReport>,
    /// Cells in the selected universe.
    pub total_cells: usize,
    /// Cells satisfied from the replayed checkpoint (resume).
    pub skipped: usize,
    /// Cells executed by workers this run.
    pub executed: usize,
    /// Cells re-dealt from dead workers onto survivors.
    pub reassigned: usize,
    /// Worker processes spawned.
    pub workers_spawned: usize,
    /// Worker processes that died before finishing.
    pub workers_lost: usize,
    /// Heartbeats received (liveness context, not a gate).
    pub heartbeats: u64,
    /// Highest heartbeat sequence number seen from any worker.
    pub max_heartbeat_seq: u64,
    /// Run-level telemetry: the merge of every completed cell's
    /// snapshot (empty unless the run was instrumented via
    /// `BenchOptions::progress`). Authoritative — folded from the
    /// checkpointed cells, not from heartbeat payloads.
    pub telemetry: TelemetrySnapshot,
    /// Where the merged flight trace was written (`--flight-trace`).
    pub flight_trace: Option<std::path::PathBuf>,
    /// Span events across every merged worker spool.
    pub flight_spans: u64,
    /// Span events lost across every merged worker spool (ring laps +
    /// spool truncation).
    pub flight_dropped: u64,
}

enum Event {
    Msg(usize, Box<WireMsg>),
    /// The worker wrote something unparseable; treat it as dead.
    Corrupt(usize, String),
    Eof(usize),
}

struct WorkerProc {
    child: Child,
    stdin: Option<ChildStdin>,
    outstanding: HashSet<String>,
    alive: bool,
    /// Highest heartbeat sequence number received from this worker.
    last_seq: u64,
    /// The latest cumulative snapshot this worker heartbeat. Replaced,
    /// never added: the payload is cumulative, so adding would double-
    /// count. Display-only — the run-level merge comes from the
    /// checkpointed cells.
    snapshot: Option<TelemetrySnapshot>,
}

impl WorkerProc {
    /// Send a message; on failure the worker is marked dead (the
    /// caller requeues its outstanding work via the EOF path or
    /// directly).
    fn send(&mut self, msg: &WireMsg) -> bool {
        let Some(stdin) = self.stdin.as_mut() else {
            return false;
        };
        let ok = writeln!(stdin, "{}", msg.to_line())
            .and_then(|()| stdin.flush())
            .is_ok();
        if !ok {
            self.alive = false;
        }
        ok
    }
}

/// Kill every still-running child on every exit path.
struct WorkerSet {
    workers: Vec<WorkerProc>,
}

impl Drop for WorkerSet {
    fn drop(&mut self) {
        for w in &mut self.workers {
            drop(w.stdin.take()); // EOF lets clean workers exit on their own
            let _ = w.child.kill();
            let _ = w.child.wait();
        }
    }
}

/// Run the distributed bench: shard, execute, checkpoint, merge.
pub fn run_dist(opts: &DistOptions) -> Result<DistSummary, String> {
    if opts.workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if opts.worker_cmd.is_empty() {
        return Err("no worker command configured".into());
    }
    let started = Instant::now();
    let selected = select_experiments(&opts.bench)?;
    let universe = flatten(&selected, &scale_of(&opts.bench))?;
    let by_fp: HashMap<&str, usize> = universe
        .iter()
        .enumerate()
        .map(|(pos, fc)| (fc.fingerprint.as_str(), pos))
        .collect();

    std::fs::create_dir_all(&opts.bench.out_dir)
        .map_err(|e| format!("create {}: {e}", opts.bench.out_dir.display()))?;
    let stream_path = opts.bench.out_dir.join(CELLS_STREAM_NAME);

    // Checkpoint replay: cells already in the stream (and still in the
    // universe) are done; everything else runs. The stream is rewritten
    // with only its valid lines so a truncated crash tail can never
    // corrupt the lines appended after it.
    let mut done: HashMap<String, BenchCell> = HashMap::new();
    if opts.resume && stream_path.exists() {
        let replay = read_cells_jsonl(&stream_path)?;
        if let Some(warning) = &replay.truncated_tail {
            eprintln!("bench --resume: {}: {warning}", stream_path.display());
        }
        let mut preserved = String::new();
        let mut foreign = 0usize;
        for cell in replay.cells {
            let in_universe = by_fp.contains_key(cell.fingerprint.as_str());
            let duplicate = in_universe && done.contains_key(&cell.fingerprint);
            if duplicate {
                continue;
            }
            preserved.push_str(&bench_cell_to_jsonl(&cell));
            preserved.push('\n');
            if in_universe {
                done.insert(cell.fingerprint.clone(), cell);
            } else {
                foreign += 1;
            }
        }
        if foreign > 0 {
            eprintln!(
                "bench --resume: {foreign} checkpointed cell(s) in {} do not belong to this \
                 selection/scale; kept in the stream, ignored for this run",
                stream_path.display()
            );
        }
        // Atomic rewrite (temp file + rename): the checkpoint is the
        // only thing standing between a crash and hours of redone
        // work, so a crash *during this rewrite* must not destroy it.
        let tmp_path = stream_path.with_extension("jsonl.rewrite");
        std::fs::write(&tmp_path, preserved)
            .map_err(|e| format!("write {}: {e}", tmp_path.display()))?;
        std::fs::rename(&tmp_path, &stream_path)
            .map_err(|e| format!("replace {}: {e}", stream_path.display()))?;
    } else {
        std::fs::write(&stream_path, "")
            .map_err(|e| format!("create {}: {e}", stream_path.display()))?;
    }
    let mut stream = std::fs::OpenOptions::new()
        .append(true)
        .open(&stream_path)
        .map_err(|e| format!("open {}: {e}", stream_path.display()))?;

    let pending: Vec<usize> = (0..universe.len())
        .filter(|&pos| !done.contains_key(universe[pos].fingerprint.as_str()))
        .collect();
    let skipped = done.len();
    let mut summary = DistSummary {
        reports: Vec::new(),
        total_cells: universe.len(),
        skipped,
        executed: 0,
        reassigned: 0,
        workers_spawned: 0,
        workers_lost: 0,
        heartbeats: 0,
        max_heartbeat_seq: 0,
        telemetry: TelemetrySnapshot::new(),
        flight_trace: None,
        flight_spans: 0,
        flight_dropped: 0,
    };
    if pending.is_empty() {
        summary.reports = finish(&selected, opts, &universe, &done, started)?;
        summary.telemetry = merged_telemetry(&summary.reports);
        return Ok(summary);
    }

    // Spawn the workers and wire their stdout into one event channel.
    let n_workers = opts.workers.min(pending.len());
    summary.workers_spawned = n_workers;
    let mut config = RunConfig::from_bench(&opts.bench)?;
    config.heartbeat_ms = opts.heartbeat_ms;
    // Flight tracing: workers spool locally under <out_dir>/flight/;
    // only the spool path + accounting come back over the pipe.
    let flight_dir = match &opts.flight_trace {
        None => None,
        Some(_) => {
            let dir = opts.bench.out_dir.join("flight");
            std::fs::create_dir_all(&dir)
                .map_err(|e| format!("create flight dir {}: {e}", dir.display()))?;
            config.flight_dir = Some(
                dir.to_str()
                    .ok_or_else(|| format!("non-UTF-8 flight dir {}", dir.display()))?
                    .to_string(),
            );
            Some(dir)
        }
    };
    let mut progress = opts
        .bench
        .progress
        .then(|| ProgressLine::new(pending.len()));
    let mut set = WorkerSet {
        workers: Vec::with_capacity(n_workers),
    };
    let (tx, rx) = mpsc::channel::<Event>();
    for i in 0..n_workers {
        let mut cmd = Command::new(&opts.worker_cmd[0]);
        cmd.args(&opts.worker_cmd[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        // Workers run one cell at a time, but cell closures may fan out
        // internally (the experiment grids use rayon), and the rayon
        // shim defaults each *process* to the machine's full
        // parallelism. Forward --jobs as the per-worker thread cap so
        // `--workers 8 --jobs 2` means 8 processes x 2 threads, not
        // 8 x available_parallelism of oversubscription.
        if opts.bench.jobs > 0 {
            cmd.env("RAYON_NUM_THREADS", opts.bench.jobs.to_string());
        }
        let mut child = cmd
            .spawn()
            .map_err(|e| format!("spawn worker {i} ({}): {e}", opts.worker_cmd.join(" ")))?;
        let stdin = child.stdin.take();
        let stdout = child.stdout.take().expect("stdout was piped");
        let tx = tx.clone();
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        let trimmed = line.trim();
                        if trimmed.is_empty() {
                            continue;
                        }
                        match WireMsg::parse(trimmed) {
                            Ok(msg) => {
                                if tx.send(Event::Msg(i, Box::new(msg))).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                let _ = tx.send(Event::Corrupt(i, e));
                                break;
                            }
                        }
                    }
                }
            }
            let _ = tx.send(Event::Eof(i));
        });
        set.workers.push(WorkerProc {
            child,
            stdin,
            outstanding: HashSet::new(),
            alive: true,
            last_seq: 0,
            snapshot: None,
        });
    }
    drop(tx); // the readers hold the only senders now

    // Handshake + initial deal. A worker that dies this early is
    // handled like any other death: its share is requeued.
    let mut initial_queue: Vec<String> = Vec::new();
    let shards = round_robin(pending.len(), n_workers);
    for (i, shard) in shards.iter().enumerate() {
        let fps: Vec<String> = shard
            .iter()
            .map(|&k| universe[pending[k]].fingerprint.clone())
            .collect();
        let fail_after = match opts.fail_worker {
            Some((w, n)) if w == i => Some(n),
            _ => None,
        };
        let slow_ms = match opts.slow_worker {
            Some((w, ms)) if w == i => Some(ms),
            _ => None,
        };
        let hello = WireMsg::hello(i as u64, config.clone(), fail_after).with_slow_ms(slow_ms);
        let w = &mut set.workers[i];
        if w.send(&hello) && w.send(&WireMsg::assign(fps.clone())) {
            w.outstanding.extend(fps);
        } else {
            summary.workers_lost += 1;
            initial_queue.extend(fps);
        }
    }
    if !initial_queue.is_empty() {
        summary.reassigned += initial_queue.len();
        redistribute(&mut set.workers, initial_queue, &mut summary)
            .map_err(|e| no_survivors_msg(&e, &stream_path, pending.len()))?;
    }

    // Merge loop: every event is a worker message, a corrupt line, or a
    // pipe EOF. Results are checkpointed the moment they arrive.
    let mut remaining = pending.len();
    while remaining > 0 {
        let event = rx
            .recv()
            .map_err(|_| "event channel closed with cells still pending".to_string())?;
        match event {
            Event::Msg(i, msg) => match msg.kind {
                MsgKind::Ready => {
                    if msg.proto != Some(PROTO_VERSION) {
                        return Err(format!(
                            "worker {i} speaks protocol {:?}, coordinator speaks {PROTO_VERSION}",
                            msg.proto
                        ));
                    }
                    if msg.cells != Some(universe.len() as u64) {
                        return Err(format!(
                            "worker {i} expanded {:?} cells, coordinator expanded {} — \
                             worker binary or registry has diverged",
                            msg.cells,
                            universe.len()
                        ));
                    }
                }
                MsgKind::Result => {
                    let cell = msg
                        .cell
                        .ok_or_else(|| format!("worker {i} sent a Result without a cell"))?;
                    if !by_fp.contains_key(cell.fingerprint.as_str()) {
                        return Err(format!(
                            "worker {i} returned cell {} with unknown fingerprint {}",
                            cell.cell_id, cell.fingerprint
                        ));
                    }
                    set.workers[i].outstanding.remove(&cell.fingerprint);
                    if done.contains_key(&cell.fingerprint) {
                        continue; // late duplicate after a reassignment race
                    }
                    writeln!(stream, "{}", bench_cell_to_jsonl(&cell))
                        .map_err(|e| format!("append {}: {e}", stream_path.display()))?;
                    if let Some(p) = &mut progress {
                        let status = p.record(&cell);
                        eprintln!("[fss-dist] {status} · {} (w{i})", cell.cell_id);
                    }
                    done.insert(cell.fingerprint.clone(), cell);
                    summary.executed += 1;
                    remaining -= 1;
                }
                MsgKind::Heartbeat => {
                    summary.heartbeats += 1;
                    let w = &mut set.workers[i];
                    if let Some(seq) = msg.seq {
                        // The payload is cumulative, so only a *newer*
                        // beat replaces the stored snapshot; a stale or
                        // reordered one is dropped.
                        if seq > w.last_seq {
                            w.last_seq = seq;
                            w.snapshot = msg.snapshot;
                            summary.max_heartbeat_seq = summary.max_heartbeat_seq.max(seq);
                        }
                    }
                    if let Some(p) = &progress {
                        let at_worker = set.workers[i]
                            .snapshot
                            .as_ref()
                            .and_then(|s| s.counter("worker_cells_done"))
                            .unwrap_or(0);
                        eprintln!(
                            "[fss-dist] {} · hb w{i} #{} ({at_worker} done at worker)",
                            p.line(),
                            set.workers[i].last_seq
                        );
                    }
                }
                MsgKind::Error => {
                    eprintln!(
                        "bench worker {i}: {}",
                        msg.error.as_deref().unwrap_or("unknown error")
                    );
                    // The worker exits after reporting; EOF follows and
                    // triggers the reassignment below.
                }
                MsgKind::Done => {} // goodbye after Shutdown
                other => {
                    return Err(format!("worker {i} sent unexpected {other:?}"));
                }
            },
            Event::Corrupt(i, e) => {
                eprintln!("bench worker {i}: unparseable output ({e}); treating it as dead");
                bury(&mut set.workers, i, &mut summary, &stream_path, remaining)?;
            }
            Event::Eof(i) => {
                if set.workers[i].alive || !set.workers[i].outstanding.is_empty() {
                    bury(&mut set.workers, i, &mut summary, &stream_path, remaining)?;
                }
            }
        }
    }

    // All cells merged: ask the survivors to exit cleanly, then reap
    // them (WorkerSet::drop also closes stdin, so even a worker that
    // missed the Shutdown message exits on EOF).
    for w in set.workers.iter_mut().filter(|w| w.alive) {
        w.send(&WireMsg::shutdown());
    }

    // Flighted runs wait for the goodbyes: `Done` carries each
    // worker's spool path and accounting, and arrives only after the
    // worker finalized its spool. Liveness is still pipe-EOF — a
    // worker that dies instead of saying goodbye just closes its pipe,
    // and its spool is read from the conventional path below.
    let mut goodbyes: Vec<Option<(String, u64, u64)>> = vec![None; n_workers];
    if flight_dir.is_some() {
        let mut awaiting: HashSet<usize> =
            (0..n_workers).filter(|&k| set.workers[k].alive).collect();
        while !awaiting.is_empty() {
            let Ok(event) = rx.recv() else { break };
            match event {
                Event::Msg(i, msg) if msg.kind == MsgKind::Done => {
                    if let Some(spool) = msg.flight_spool {
                        goodbyes[i] = Some((
                            spool,
                            msg.flight_spans.unwrap_or(0),
                            msg.flight_dropped.unwrap_or(0),
                        ));
                    }
                    awaiting.remove(&i);
                }
                Event::Msg(..) => {} // late heartbeats
                Event::Eof(i) | Event::Corrupt(i, _) => {
                    awaiting.remove(&i);
                }
            }
        }
    }
    drop(set);
    drop(stream);

    if let (Some(dir), Some(out)) = (&flight_dir, &opts.flight_trace) {
        let mut parsed: Vec<(usize, Spool)> = Vec::new();
        for (i, goodbye) in goodbyes.iter().enumerate() {
            let path = match goodbye {
                Some((p, _, _)) => std::path::PathBuf::from(p),
                // No goodbye (crashed or pre-v3 worker): the per-cell
                // drains still left a readable spool at the
                // conventional path, if tracing got far enough.
                None => dir.join(format!("w{i}.spool.jsonl")),
            };
            if !path.exists() {
                continue;
            }
            match read_spool(&path) {
                Ok(s) => parsed.push((i, s)),
                Err(e) => eprintln!(
                    "bench --flight-trace: skipping unreadable spool {}: {e}",
                    path.display()
                ),
            }
        }
        for (_, s) in &parsed {
            summary.flight_spans += s.events.len() as u64;
            summary.flight_dropped += s.dropped + s.truncated;
        }
        let sources: Vec<TraceSource<'_>> = parsed
            .iter()
            .map(|(i, s)| TraceSource {
                pid: *i as u32 + 1,
                prefix: format!("w{i}/"),
                spool: s,
            })
            .collect();
        std::fs::write(out, to_chrome_merged(&sources))
            .map_err(|e| format!("write {}: {e}", out.display()))?;
        summary.flight_trace = Some(out.clone());
    }

    summary.reports = finish(&selected, opts, &universe, &done, started)?;
    summary.telemetry = merged_telemetry(&summary.reports);
    Ok(summary)
}

/// The authoritative run-level telemetry merge: fold every completed
/// cell's snapshot from the assembled reports. Heartbeat payloads are
/// deliberately *not* part of this — they are cumulative per-worker
/// views for live display, and mixing them in would double-count.
fn merged_telemetry(reports: &[BenchReport]) -> TelemetrySnapshot {
    let mut merged = TelemetrySnapshot::new();
    for report in reports {
        for cell in &report.cells {
            if let Some(t) = &cell.telemetry {
                merged.merge(t);
            }
        }
    }
    merged
}

/// Mark worker `i` dead and redistribute its unfinished cells.
fn bury(
    workers: &mut [WorkerProc],
    i: usize,
    summary: &mut DistSummary,
    stream_path: &std::path::Path,
    remaining: usize,
) -> Result<(), String> {
    let w = &mut workers[i];
    if w.alive {
        w.alive = false;
        summary.workers_lost += 1;
    }
    drop(w.stdin.take());
    let _ = w.child.kill();
    let _ = w.child.wait();
    let orphans: Vec<String> = w.outstanding.drain().collect();
    if orphans.is_empty() {
        return Ok(());
    }
    eprintln!(
        "bench worker {i} died with {} cell(s) unfinished; redistributing to survivors",
        orphans.len()
    );
    summary.reassigned += orphans.len();
    redistribute(workers, orphans, summary)
        .map_err(|e| no_survivors_msg(&e, stream_path, remaining))
}

/// Deal `queue` round-robin across the live workers, retrying until the
/// queue is empty or nobody is left.
fn redistribute(
    workers: &mut [WorkerProc],
    mut queue: Vec<String>,
    summary: &mut DistSummary,
) -> Result<(), String> {
    while !queue.is_empty() {
        let alive: Vec<usize> = (0..workers.len()).filter(|&k| workers[k].alive).collect();
        if alive.is_empty() {
            return Err(format!("{} cell(s) could not be reassigned", queue.len()));
        }
        let shards = round_robin(queue.len(), alive.len());
        let mut requeue: Vec<String> = Vec::new();
        for (slot, shard) in shards.iter().enumerate() {
            if shard.is_empty() {
                continue;
            }
            let fps: Vec<String> = shard.iter().map(|&k| queue[k].clone()).collect();
            let w = &mut workers[alive[slot]];
            if w.send(&WireMsg::assign(fps.clone())) {
                w.outstanding.extend(fps);
            } else {
                // This worker is dying too; its own EOF event will
                // handle anything it already held.
                summary.workers_lost += 1;
                requeue.extend(fps);
            }
        }
        queue = requeue;
    }
    Ok(())
}

fn no_survivors_msg(inner: &str, stream_path: &std::path::Path, remaining: usize) -> String {
    format!(
        "all workers died with {remaining} cell(s) still pending ({inner}); completed cells \
         are checkpointed in {} — rerun with --resume to pick up where this run stopped",
        stream_path.display()
    )
}

/// Assemble the merged reports from the done-map and persist them.
fn finish(
    selected: &[fss_bench::Experiment],
    opts: &DistOptions,
    universe: &[FlatCell],
    done: &HashMap<String, BenchCell>,
    started: Instant,
) -> Result<Vec<BenchReport>, String> {
    let mut executed: Vec<(usize, usize, BenchCell)> = Vec::with_capacity(universe.len());
    for fc in universe {
        let cell = done
            .get(fc.fingerprint.as_str())
            .ok_or_else(|| format!("cell {} finished nowhere", fc.spec.id))?;
        executed.push((fc.exp, fc.idx, cell.clone()));
    }
    let reports = assemble_reports(
        selected,
        opts.bench.smoke,
        opts.workers as u64,
        started.elapsed().as_secs_f64(),
        executed,
    )?;
    write_reports(&reports, &opts.bench.out_dir)?;
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(workers: usize) -> DistOptions {
        DistOptions {
            bench: BenchOptions::default(),
            workers,
            resume: false,
            worker_cmd: vec!["true".into()],
            fail_worker: None,
            heartbeat_ms: None,
            slow_worker: None,
            flight_trace: None,
        }
    }

    #[test]
    fn zero_workers_and_empty_command_are_rejected() {
        let err = run_dist(&opts(0)).unwrap_err();
        assert!(err.contains("--workers"), "{err}");
        let mut o = opts(2);
        o.worker_cmd.clear();
        let err = run_dist(&o).unwrap_err();
        assert!(err.contains("worker command"), "{err}");
    }

    #[test]
    fn unknown_filter_fails_before_spawning_anything() {
        let mut o = opts(2);
        o.bench.filter = Some("no-such-experiment".into());
        let err = run_dist(&o).unwrap_err();
        assert!(err.contains("no experiment matches"), "{err}");
    }

    #[test]
    fn workers_that_speak_no_protocol_fail_the_run_with_resume_hint() {
        // `true` exits immediately: every worker EOFs with its whole
        // shard outstanding and nobody survives.
        let mut o = opts(2);
        o.bench.filter = Some("table_gaps".into());
        o.bench.smoke = true;
        o.bench.out_dir = std::env::temp_dir().join("fss-dist-test-noproto");
        let _ = std::fs::remove_dir_all(&o.bench.out_dir);
        let err = run_dist(&o).unwrap_err();
        assert!(err.contains("--resume"), "{err}");
        assert!(err.contains("all workers died"), "{err}");
    }
}
