//! Deterministic shard assignment.
//!
//! Cells are dealt round-robin: shard `s` of `n` gets items
//! `s, s+n, s+2n, ...` of the pending list. Dumb on purpose — the
//! assignment is reproducible from the cell list alone (no load
//! estimation, no negotiation), per-shard imbalance is at most one
//! cell, and because cell *runners* are deterministic the merged result
//! is identical however the shards are cut. Dynamic balance across
//! heavy cells comes from the list already being flat (an experiment's
//! heavy and light cells interleave across shards) and from
//! reassignment when a worker dies.

/// Deal `count` items round-robin across `shards` non-empty-capable
/// shards: returns `shards` index lists (some possibly empty when
/// `count < shards`). Panics if `shards == 0`.
pub fn round_robin(count: usize, shards: usize) -> Vec<Vec<usize>> {
    assert!(shards > 0, "cannot partition across zero shards");
    let mut out = vec![Vec::with_capacity(count.div_ceil(shards)); shards];
    for i in 0..count {
        out[i % shards].push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once() {
        for count in [0usize, 1, 2, 7, 16] {
            for shards in [1usize, 2, 3, 5, 8] {
                let parts = round_robin(count, shards);
                assert_eq!(parts.len(), shards);
                let mut all: Vec<usize> = parts.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..count).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn imbalance_is_at_most_one() {
        let parts = round_robin(17, 5);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 17);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(round_robin(9, 4), round_robin(9, 4));
        assert_eq!(
            round_robin(5, 2),
            vec![vec![0, 2, 4], vec![1, 3]],
            "the dealing order is part of the protocol contract"
        );
    }

    #[test]
    fn more_shards_than_items_leaves_trailing_shards_empty() {
        let parts = round_robin(2, 4);
        assert_eq!(parts[0], vec![0]);
        assert_eq!(parts[1], vec![1]);
        assert!(parts[2].is_empty() && parts[3].is_empty());
    }
}
