//! Newline-delimited JSON framing, shared by every line-oriented
//! transport in the workspace.
//!
//! The dist worker/coordinator pair and the `flowsched serve` event
//! loop all speak the same wire discipline: one JSON object per line,
//! writes flushed eagerly (a line is either fully on the wire or not
//! sent), blank lines ignored on read, EOF reported as `None` rather
//! than an error. This module is that discipline, extracted from the
//! worker so new services cannot drift from it.
//!
//! Two layers:
//!
//! - **Line level** ([`write_line`], [`next_line`]): transport-agnostic
//!   string in / string out, for protocols with their own message
//!   types (fss-serve).
//! - **Message level** ([`send_msg`], [`read_msg`]): the same helpers
//!   specialized to the dist [`WireMsg`] protocol.
//!
//! Writers are addressed through a `Mutex` because every real producer
//! is multi-threaded (the worker's heartbeat thread, serve's engine
//! thread) and a torn line is a protocol error on the far side.

use std::io::{BufRead, Write};
use std::sync::Mutex;

use crate::proto::WireMsg;

/// Write one frame (`line` must not contain `\n`) and flush, so the
/// frame is on the wire before the caller proceeds.
pub fn write_line<W: Write>(output: &Mutex<W>, line: &str) -> Result<(), String> {
    let mut w = output.lock().map_err(|_| "output mutex poisoned")?;
    writeln!(w, "{line}").map_err(|e| format!("write line: {e}"))?;
    w.flush().map_err(|e| format!("flush line: {e}"))
}

/// Read the next non-blank line, trimmed; `None` on EOF.
pub fn next_line<R: BufRead>(input: &mut R) -> Result<Option<String>, String> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = input
            .read_line(&mut line)
            .map_err(|e| format!("read line: {e}"))?;
        if n == 0 {
            return Ok(None);
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        return Ok(Some(trimmed.to_string()));
    }
}

/// Send one dist protocol message ([`write_line`] of its JSONL form).
pub fn send_msg<W: Write>(output: &Mutex<W>, msg: &WireMsg) -> Result<(), String> {
    write_line(output, &msg.to_line())
}

/// Read the next dist protocol message, skipping blank lines; `None`
/// on EOF.
pub fn read_msg<R: BufRead>(input: &mut R) -> Result<Option<WireMsg>, String> {
    match next_line(input)? {
        None => Ok(None),
        Some(line) => WireMsg::parse(&line).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MsgKind;
    use std::io::Cursor;

    #[test]
    fn lines_round_trip_and_blanks_are_skipped() {
        let out = Mutex::new(Vec::new());
        write_line(&out, r#"{"kind":"Ready"}"#).unwrap();
        write_line(&out, r#"{"kind":"Done"}"#).unwrap();
        let mut bytes = out.into_inner().unwrap();
        bytes.splice(0..0, b"\n  \n".iter().copied()); // leading blank noise
        let mut input = Cursor::new(bytes);
        assert_eq!(
            next_line(&mut input).unwrap().as_deref(),
            Some(r#"{"kind":"Ready"}"#)
        );
        assert_eq!(
            next_line(&mut input).unwrap().as_deref(),
            Some(r#"{"kind":"Done"}"#)
        );
        assert_eq!(next_line(&mut input).unwrap(), None);
        assert_eq!(next_line(&mut input).unwrap(), None, "EOF is sticky");
    }

    #[test]
    fn messages_round_trip_through_the_frame_helpers() {
        let out = Mutex::new(Vec::new());
        send_msg(&out, &WireMsg::ready(7)).unwrap();
        send_msg(&out, &WireMsg::shutdown()).unwrap();
        let mut input = Cursor::new(out.into_inner().unwrap());
        let first = read_msg(&mut input).unwrap().unwrap();
        assert_eq!(first.kind, MsgKind::Ready);
        assert_eq!(first.cells, Some(7));
        assert_eq!(
            read_msg(&mut input).unwrap().unwrap().kind,
            MsgKind::Shutdown
        );
        assert!(read_msg(&mut input).unwrap().is_none());
    }

    #[test]
    fn garbage_line_is_a_parse_error_not_a_panic() {
        let mut input = Cursor::new(b"not json\n".to_vec());
        assert!(read_msg(&mut input).is_err());
    }
}
