//! # fss-dist — the distributed sharded bench runner
//!
//! Scales the experiment registry past what one process can finish in
//! one sitting: a **coordinator** shards the flattened cell list across
//! `flowsched bench-worker` child **processes** over a stdin/stdout
//! JSONL protocol, merges the per-cell results into the same
//! schema-versioned `BENCH_<experiment>.json` artifacts the in-process
//! orchestrator writes, and checkpoints every finished cell into
//! `BENCH_cells.jsonl` so interrupted runs resume instead of restarting
//! — the piece that makes the registry's `--paper` tier (150x150 grids,
//! 10 trials, 100k-round saturation horizons) feasible on real
//! machines.
//!
//! Design (after worker/coordinator dataflow systems like
//! TimelyDataflow): the shard assignment is a dumb deterministic
//! round-robin deal and the progress log is append-only. Because every
//! cell runner derives its RNG streams from the cell's own values, the
//! merged artifact is cell-for-cell identical to a single-process run
//! no matter how cells were sharded, reassigned, or resumed — only
//! wall-clock fields differ. `tests/dist_bench.rs` (workspace root)
//! asserts exactly that, end to end, against real child processes.
//!
//! * [`proto`] — the wire protocol (handshake, assignment, results,
//!   heartbeats) and the serializable [`proto::RunConfig`];
//! * [`framing`] — the shared JSONL line discipline (flushed writes,
//!   blank-tolerant reads, EOF as `None`), reused by `flowsched serve`;
//! * [`partition`] — the deterministic round-robin deal;
//! * [`worker`] — the executor loop behind `flowsched bench-worker`,
//!   generic over its transport so tests drive it in-process;
//! * [`coordinator`] — process spawning, checkpoint replay, result
//!   merging, dead-worker reassignment, artifact assembly.
//!
//! Entry points: `flowsched bench --workers N [--resume]` (CLI) or
//! [`run_dist`] (library).

#![deny(missing_docs)]

pub mod coordinator;
pub mod framing;
pub mod partition;
pub mod proto;
pub mod worker;

pub use coordinator::{run_dist, DistOptions, DistSummary};
pub use proto::{MsgKind, RunConfig, WireMsg, PROTO_VERSION};
pub use worker::{run_worker, worker_main};
