//! The worker side of the protocol: `flowsched bench-worker`.
//!
//! A worker is a dumb executor. It reads `Hello`, expands the *same*
//! flat cell list the coordinator did (same binary, same registry, same
//! fingerprints), answers `Ready` with the universe size so version
//! skew is caught at handshake time, then executes `Assign`ed
//! fingerprints one at a time, streaming each `Result` back as soon as
//! the cell finishes. A background thread heartbeats so the coordinator
//! can tell "long LP cell" from "hung worker" in its logs; each
//! heartbeat carries a strictly increasing sequence number and the
//! worker's *cumulative* telemetry snapshot (completed-cell telemetry
//! plus a `worker_cells_done` counter), so the coordinator can show
//! live progress without waiting on the result stream. Workers
//! never write results to the filesystem — checkpointing is the
//! coordinator's job. The one local artifact is the v3 flight spool:
//! when the run config carries a `flight_dir`, the worker records one
//! `Cell` span per executed cell (round-tagged with the execution
//! index) into `<flight_dir>/w<id>.spool.jsonl`, drained after every
//! cell so a crashed worker still leaves a readable post-mortem, and
//! ships only the spool path + accounting in its `Done` goodbye.
//!
//! The loop is generic over its transport (`BufRead` in, `Write` out),
//! so tests drive it in-process over byte buffers; production wires it
//! to stdin/stdout via [`worker_main`].

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use fss_bench::{execute_cell, flatten, scale_of, select_experiments, FlatCell};
use fss_flight::{FlightHandle, FlightRecorder, SpanKind, TraceSink, DEFAULT_SPOOL_MAX_EVENTS};
use fss_telemetry::TelemetrySnapshot;

use crate::framing::{read_msg, send_msg as send};
use crate::proto::{MsgKind, WireMsg, PROTO_VERSION};

/// How often the background thread emits `Heartbeat` messages, unless
/// the run config overrides it (`RunConfig::heartbeat_ms`).
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(500);

/// Error marker for injected crashes (`fail_after` in `Hello`): the
/// worker dies *without* a protocol goodbye, like a `kill -9`, so the
/// coordinator's EOF/reassignment path — not the polite `Error` path —
/// is what gets exercised.
pub const INJECTED_CRASH: &str = "injected worker crash (fail_after reached)";

/// Run the worker protocol over the given transport until `Shutdown`,
/// EOF, or a fatal error. On error (other than an injected crash) a
/// best-effort `Error` message is sent before returning.
pub fn run_worker<R: BufRead, W: Write + Send + 'static>(
    mut input: R,
    output: W,
) -> Result<(), String> {
    let output = Arc::new(Mutex::new(output));

    // Handshake: Hello carries the config; Ready answers with the
    // universe size.
    let hello = match read_msg(&mut input)? {
        Some(m) if m.kind == MsgKind::Hello => m,
        Some(m) => return Err(format!("expected Hello, got {:?}", m.kind)),
        None => return Err("EOF before Hello".into()),
    };
    if hello.proto != Some(PROTO_VERSION) {
        let err = format!(
            "protocol version mismatch: coordinator speaks {:?}, worker speaks {PROTO_VERSION}",
            hello.proto
        );
        let _ = send(&output, &WireMsg::error(&err));
        return Err(err);
    }
    let config = hello.config.ok_or("Hello carried no run config")?;
    let worker_id = hello.worker.unwrap_or(0);
    let fail_after = hello.fail_after;
    let slow_ms = hello.slow_ms;
    let interval = config
        .heartbeat_ms
        .map(Duration::from_millis)
        .unwrap_or(HEARTBEAT_INTERVAL);

    // Flight tracing (proto v3): spool Cell spans locally, drained
    // after every cell so even a crashed worker leaves a readable
    // post-mortem. Only the path + accounting travel on the wire.
    let mut flight: Option<(TraceSink, FlightHandle)> = match &config.flight_dir {
        None => None,
        Some(dir) => {
            let setup = (|| -> Result<(TraceSink, FlightHandle), String> {
                let dir = std::path::Path::new(dir);
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("create flight dir {}: {e}", dir.display()))?;
                let spool = dir.join(format!("w{worker_id}.spool.jsonl"));
                let recorder = FlightRecorder::new();
                let sink = TraceSink::create(&recorder, &spool, DEFAULT_SPOOL_MAX_EVENTS)
                    .map_err(|e| format!("create flight spool {}: {e}", spool.display()))?;
                let handle = recorder.handle("cells");
                Ok((sink, handle))
            })();
            match setup {
                Ok(f) => Some(f),
                Err(e) => {
                    let _ = send(&output, &WireMsg::error(&e));
                    return Err(e);
                }
            }
        }
    };

    let universe = (|| -> Result<Vec<FlatCell>, String> {
        let opts = config.to_bench();
        let selected = select_experiments(&opts)?;
        flatten(&selected, &scale_of(&opts))
    })();
    let universe = match universe {
        Ok(u) => u,
        Err(e) => {
            let err = format!("worker could not expand the cell universe: {e}");
            let _ = send(&output, &WireMsg::error(&err));
            return Err(err);
        }
    };
    let index: HashMap<&str, &FlatCell> = universe
        .iter()
        .map(|fc| (fc.fingerprint.as_str(), fc))
        .collect();
    send(&output, &WireMsg::ready(universe.len() as u64))?;

    // Heartbeats: cells can run for minutes (paper-tier LP solves), so
    // liveness comes from a background thread, not the result stream.
    // Each beat snapshots the shared accumulator (completed-cell
    // telemetry + `worker_cells_done`) under a fresh sequence number.
    let stop = Arc::new(AtomicBool::new(false));
    let accum = Arc::new(Mutex::new(TelemetrySnapshot::new()));
    let seq = Arc::new(AtomicU64::new(0));
    let beat = {
        let output = Arc::clone(&output);
        let stop = Arc::clone(&stop);
        let accum = Arc::clone(&accum);
        let seq = Arc::clone(&seq);
        std::thread::spawn(move || {
            let slice = Duration::from_millis(interval.as_millis().clamp(1, 50) as u64);
            let slices = (interval.as_millis() / slice.as_millis()).max(1) as u32;
            'outer: loop {
                for _ in 0..slices {
                    if stop.load(Ordering::Relaxed) {
                        break 'outer;
                    }
                    std::thread::sleep(slice);
                }
                let snapshot = match accum.lock() {
                    Ok(a) => a.clone(),
                    Err(_) => break,
                };
                let n = seq.fetch_add(1, Ordering::Relaxed) + 1;
                if send(&output, &WireMsg::heartbeat(n, snapshot)).is_err() {
                    break; // coordinator is gone; the main loop will see it too
                }
            }
        })
    };

    let result = (|| -> Result<(), String> {
        let mut executed = 0u64;
        while let Some(msg) = read_msg(&mut input)? {
            match msg.kind {
                MsgKind::Assign => {
                    for fp in msg.assign.unwrap_or_default() {
                        let fc = index.get(fp.as_str()).ok_or_else(|| {
                            format!("assigned unknown fingerprint {fp} (registry skew?)")
                        })?;
                        if let Some(ms) = slow_ms {
                            // Fault injection: a slow-but-alive worker,
                            // for exercising the heartbeats-are-not-a-
                            // failure-detector invariant in tests.
                            std::thread::sleep(Duration::from_millis(ms));
                        }
                        let cell_t0 = Instant::now();
                        let cell = execute_cell(fc);
                        if let Some((sink, h)) = flight.as_mut() {
                            // Round-tag with the execution index so the
                            // merged trace orders cells per worker.
                            h.round_tag(executed);
                            h.record(SpanKind::Cell, cell_t0, Instant::now());
                            sink.drain();
                        }
                        {
                            let mut a = accum.lock().map_err(|_| "telemetry mutex poisoned")?;
                            if let Some(t) = &cell.telemetry {
                                a.merge(t);
                            }
                            a.add_counter("worker_cells_done", 1);
                        }
                        send(&output, &WireMsg::result(cell))?;
                        executed += 1;
                        if Some(executed) == fail_after {
                            return Err(INJECTED_CRASH.into());
                        }
                    }
                }
                MsgKind::Shutdown => {
                    let goodbye = match flight.as_ref() {
                        None => WireMsg::done(),
                        Some((sink, _)) => {
                            let s = sink.finish();
                            WireMsg::done().with_flight(
                                s.path.display().to_string(),
                                s.events,
                                s.dropped,
                            )
                        }
                    };
                    send(&output, &goodbye)?;
                    return Ok(());
                }
                other => return Err(format!("unexpected {other:?} from coordinator")),
            }
        }
        Ok(()) // EOF: coordinator exited; nothing left to do
    })();

    stop.store(true, Ordering::Relaxed);
    let _ = beat.join();
    // EOF/crash exits skipped the Shutdown goodbye: drain whatever the
    // rings still hold so the on-disk spool is a complete post-mortem.
    // (No finalize — the Shutdown path already finalized, and doing it
    // twice would double-write the accounting metas.)
    if let Some((sink, _)) = &flight {
        sink.drain();
    }
    if let Err(e) = &result {
        if e != INJECTED_CRASH {
            let _ = send(&output, &WireMsg::error(e));
        }
    }
    result
}

/// Entry point for the hidden `flowsched bench-worker` subcommand:
/// run the protocol over stdin/stdout.
pub fn worker_main() -> Result<(), String> {
    run_worker(std::io::stdin().lock(), std::io::stdout())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::RunConfig;
    use fss_sim::report::{cells_eq_modulo_timing, BenchCell};
    use std::io::Cursor;

    /// A `Write` handle tests can inspect after the worker returns.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn gaps_config() -> RunConfig {
        RunConfig {
            filter: Some("table_gaps".into()),
            smoke: true,
            paper: false,
            trials: Some(1),
            trace: None,
            stream_trace: false,
            progress: false,
            heartbeat_ms: None,
            flight_dir: None,
        }
    }

    fn gaps_universe() -> Vec<FlatCell> {
        let opts = gaps_config().to_bench();
        let selected = select_experiments(&opts).unwrap();
        flatten(&selected, &scale_of(&opts)).unwrap()
    }

    fn script(msgs: &[WireMsg]) -> Cursor<Vec<u8>> {
        let mut text = String::new();
        for m in msgs {
            text.push_str(&m.to_line());
            text.push('\n');
        }
        Cursor::new(text.into_bytes())
    }

    fn drive(msgs: &[WireMsg]) -> (Result<(), String>, Vec<WireMsg>) {
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let result = run_worker(script(msgs), buf.clone());
        let bytes = buf.0.lock().unwrap().clone();
        let out = String::from_utf8(bytes).unwrap();
        let parsed = out
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| WireMsg::parse(l).expect("worker emits valid protocol lines"))
            .collect();
        (result, parsed)
    }

    #[test]
    fn scripted_session_executes_assignments_and_says_goodbye() {
        let universe = gaps_universe();
        let fps: Vec<String> = universe.iter().map(|f| f.fingerprint.clone()).collect();
        let (result, out) = drive(&[
            WireMsg::hello(0, gaps_config(), None),
            WireMsg::assign(fps.clone()),
            WireMsg::shutdown(),
        ]);
        result.expect("clean session");
        // Ignore heartbeats (timing-dependent); the rest is fully
        // deterministic: Ready, one Result per assigned cell, Done.
        let solid: Vec<&WireMsg> = out
            .iter()
            .filter(|m| m.kind != MsgKind::Heartbeat)
            .collect();
        assert_eq!(solid[0].kind, MsgKind::Ready);
        assert_eq!(solid[0].cells, Some(universe.len() as u64));
        assert_eq!(solid.last().unwrap().kind, MsgKind::Done);
        let results: Vec<&BenchCell> = solid
            .iter()
            .filter(|m| m.kind == MsgKind::Result)
            .map(|m| m.cell.as_ref().expect("results carry a cell"))
            .collect();
        assert_eq!(results.len(), fps.len());
        for (fp, cell) in fps.iter().zip(&results) {
            assert_eq!(
                &cell.fingerprint, fp,
                "results come back in assignment order"
            );
        }
        // The cells match a direct in-process execution modulo timing.
        for (fc, got) in universe.iter().zip(&results) {
            let want = execute_cell(fc);
            assert!(cells_eq_modulo_timing(&want, got));
        }
    }

    #[test]
    fn heartbeats_carry_sequenced_cumulative_snapshots() {
        let mut cfg = gaps_config();
        cfg.heartbeat_ms = Some(1);
        let fps: Vec<String> = gaps_universe()
            .iter()
            .map(|f| f.fingerprint.clone())
            .collect();
        // slow_ms stretches each cell so the 1ms beat loop observably
        // outpaces the result stream.
        let (result, out) = drive(&[
            WireMsg::hello(0, cfg, None).with_slow_ms(Some(10)),
            WireMsg::assign(fps),
            WireMsg::shutdown(),
        ]);
        result.expect("clean session");
        let beats: Vec<&WireMsg> = out
            .iter()
            .filter(|m| m.kind == MsgKind::Heartbeat)
            .collect();
        assert!(
            !beats.is_empty(),
            "30ms of injected work at a 1ms interval must produce beats"
        );
        let seqs: Vec<u64> = beats
            .iter()
            .map(|m| m.seq.expect("v2 heartbeats carry a sequence number"))
            .collect();
        assert!(
            seqs.windows(2).all(|w| w[0] < w[1]),
            "heartbeat sequence numbers are strictly increasing: {seqs:?}"
        );
        // The payload is the cumulative snapshot: once a cell finishes,
        // later beats report it via the worker_cells_done counter.
        let max_done = beats
            .iter()
            .filter_map(|m| m.snapshot.as_ref())
            .filter_map(|s| s.counter("worker_cells_done"))
            .max()
            .unwrap_or(0);
        assert!(
            (1..=3).contains(&max_done),
            "beats after the first completed cell carry its count, got {max_done}"
        );
    }

    #[test]
    fn a_flighted_worker_spools_cell_spans_and_ships_the_accounting() {
        let dir = std::env::temp_dir().join("fss-dist-test-worker-flight");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = gaps_config();
        cfg.flight_dir = Some(dir.to_str().unwrap().to_string());
        let universe = gaps_universe();
        let fps: Vec<String> = universe.iter().map(|f| f.fingerprint.clone()).collect();
        let (result, out) = drive(&[
            WireMsg::hello(5, cfg, None),
            WireMsg::assign(fps.clone()),
            WireMsg::shutdown(),
        ]);
        result.expect("clean session");

        // The goodbye carries the spool path and accounting...
        let done = out
            .iter()
            .find(|m| m.kind == MsgKind::Done)
            .expect("worker says goodbye");
        let spool_path = done
            .flight_spool
            .as_deref()
            .expect("flighted goodbye names the spool");
        assert!(
            spool_path.ends_with("w5.spool.jsonl"),
            "spool is named after the worker id from Hello: {spool_path}"
        );
        assert_eq!(
            done.flight_spans,
            Some(fps.len() as u64),
            "one Cell span per cell"
        );
        assert_eq!(done.flight_dropped, Some(0));

        // ...and the spool itself holds one round-tagged Cell span per
        // executed cell, in execution order.
        let spool = fss_flight::read_spool(std::path::Path::new(spool_path)).unwrap();
        let cells: Vec<_> = spool
            .events
            .iter()
            .filter(|e| e.kind == SpanKind::Cell)
            .collect();
        assert_eq!(cells.len(), fps.len());
        let rounds: Vec<u64> = cells.iter().map(|e| e.round).collect();
        let want: Vec<u64> = (0..fps.len() as u64).collect();
        assert_eq!(rounds, want, "rounds are the execution indices");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn split_assignments_and_eof_without_shutdown_are_fine() {
        let fps: Vec<String> = gaps_universe()
            .iter()
            .map(|f| f.fingerprint.clone())
            .collect();
        let (first, rest) = fps.split_at(1);
        let (result, out) = drive(&[
            WireMsg::hello(1, gaps_config(), None),
            WireMsg::assign(first.to_vec()),
            WireMsg::assign(rest.to_vec()),
            // no Shutdown: the script just ends (coordinator vanished)
        ]);
        result.expect("EOF is a clean exit");
        let results = out.iter().filter(|m| m.kind == MsgKind::Result).count();
        assert_eq!(results, fps.len());
        assert!(!out.iter().any(|m| m.kind == MsgKind::Done));
    }

    #[test]
    fn fail_after_crashes_without_goodbye() {
        let fps: Vec<String> = gaps_universe()
            .iter()
            .map(|f| f.fingerprint.clone())
            .collect();
        let (result, out) = drive(&[
            WireMsg::hello(0, gaps_config(), Some(2)),
            WireMsg::assign(fps.clone()),
            WireMsg::shutdown(),
        ]);
        assert_eq!(result.unwrap_err(), INJECTED_CRASH);
        let results = out.iter().filter(|m| m.kind == MsgKind::Result).count();
        assert_eq!(results, 2, "crashed after exactly fail_after results");
        // Like a kill -9: no Done, no Error message.
        assert!(!out
            .iter()
            .any(|m| m.kind == MsgKind::Done || m.kind == MsgKind::Error));
    }

    #[test]
    fn protocol_violations_are_reported() {
        // Wrong version.
        let mut bad = WireMsg::hello(0, gaps_config(), None);
        bad.proto = Some(PROTO_VERSION + 1);
        let (result, out) = drive(&[bad]);
        assert!(result.unwrap_err().contains("version mismatch"));
        assert!(out.iter().any(|m| m.kind == MsgKind::Error));

        // Unknown fingerprint.
        let (result, out) = drive(&[
            WireMsg::hello(0, gaps_config(), None),
            WireMsg::assign(vec!["deadbeefdeadbeef".into()]),
        ]);
        assert!(result.unwrap_err().contains("unknown fingerprint"));
        assert!(out.iter().any(|m| m.kind == MsgKind::Error));

        // Unmatched filter: reported before Ready.
        let mut cfg = gaps_config();
        cfg.filter = Some("no-such-experiment".into());
        let (result, out) = drive(&[WireMsg::hello(0, cfg, None)]);
        assert!(result.unwrap_err().contains("no experiment matches"));
        assert!(out.iter().any(|m| m.kind == MsgKind::Error));
        assert!(!out.iter().any(|m| m.kind == MsgKind::Ready));
    }
}
