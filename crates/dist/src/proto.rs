//! The coordinator/worker wire protocol: newline-delimited JSON
//! messages over the worker's stdin (coordinator → worker) and stdout
//! (worker → coordinator).
//!
//! The protocol is deliberately dumb — TimelyDataflow-style systems
//! show that at this scale a deterministic shard assignment plus an
//! append-only progress log beats any clever dynamic protocol:
//!
//! ```text
//! coordinator → worker   Hello    { proto, worker, config, fail_after, slow_ms }
//! worker → coordinator   Ready    { proto, cells }           (universe size check)
//! coordinator → worker   Assign   { assign: [fingerprints] } (repeatable)
//! worker → coordinator   Result   { cell }                   (one per executed cell)
//! worker → coordinator   Heartbeat { seq, snapshot }         (periodic liveness + progress)
//! coordinator → worker   Shutdown
//! worker → coordinator   Done     { flight_spool?, flight_spans?, flight_dropped? }
//! worker → coordinator   Error    { error }                  (protocol/registry failure)
//! ```
//!
//! Heartbeats carry a payload since proto v2: a per-worker sequence
//! number (strictly increasing, so a wedged-then-replayed pipe is
//! detectable) and the worker's **cumulative** telemetry snapshot —
//! completed-cell telemetry merged with a `worker_cells_done` counter.
//! Cumulative means the coordinator keeps the *latest* snapshot per
//! worker (replace, not add); the authoritative run-level merge still
//! comes from the checkpointed cells themselves.
//!
//! Every message is one [`WireMsg`]: a `kind` tag plus optional payload
//! fields (serialized as `null` when absent). Reads are **tolerant**:
//! only `kind` is required, and a payload field that is missing *or*
//! `null` deserializes to `None` — so a v1 peer's `Heartbeat` (no
//! `seq`/`snapshot`/`slow_ms` keys) still parses, the same way
//! `report.rs` reads schema-v2 bench cells under
//! `BENCH_SCHEMA_READ_MIN`. The version handshake still rejects a v1
//! *session* up front; tolerant parsing is what makes that rejection a
//! polite `Error` message instead of a parse failure, and what lets
//! checkpoint/log readers consume mixed-version streams. Workers never
//! write *results* to the filesystem; the coordinator owns the
//! `BENCH_cells.jsonl` checkpoint stream and the merged artifacts. The
//! one exception (v3) is the flight spool: when the run config carries
//! a `flight_dir`, each worker spools its own span trace locally —
//! traces are too big to ship over the result pipe, so only the spool
//! path and its bounded accounting travel in the `Done` goodbye.

use fss_bench::BenchOptions;
use fss_sim::report::BenchCell;
use fss_telemetry::TelemetrySnapshot;
use serde::{Content, DeError, Deserialize, Serialize};

/// Protocol version; both sides must agree exactly. Bump on any change
/// to [`WireMsg`] / [`RunConfig`] shape or semantics.
///
/// v2 added the heartbeat payload (`seq` + `snapshot`), the
/// `progress` / `heartbeat_ms` run-config knobs, and per-worker
/// `slow_ms` fault injection.
///
/// v3 added flight tracing: the `flight_dir` run-config knob (workers
/// spool span traces locally under it) and the goodbye payload on
/// `Done` (`flight_spool` / `flight_spans` / `flight_dropped`), which
/// ships the bounded spool accounting — never the spans themselves —
/// back to the coordinator for the merged-trace export.
pub const PROTO_VERSION: u32 = 3;

/// Message discriminator (serialized as the variant name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsgKind {
    /// Coordinator → worker: handshake carrying the run configuration.
    Hello,
    /// Worker → coordinator: handshake reply with the universe size.
    Ready,
    /// Coordinator → worker: execute these fingerprints, in order.
    Assign,
    /// Worker → coordinator: one executed cell.
    Result,
    /// Worker → coordinator: periodic liveness signal.
    Heartbeat,
    /// Coordinator → worker: finish up and exit cleanly.
    Shutdown,
    /// Worker → coordinator: clean goodbye after `Shutdown`.
    Done,
    /// Worker → coordinator: fatal worker-side failure (best effort —
    /// a crashed worker sends nothing and is detected by pipe EOF).
    Error,
}

/// The subset of [`BenchOptions`] a worker needs to expand the *same*
/// flat cell list as the coordinator. Serializable, so it travels in
/// the `Hello` message; paths are passed through as strings (workers
/// inherit the coordinator's working directory).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunConfig {
    /// Experiment filter (exact id, else substring; `None` = all).
    pub filter: Option<String>,
    /// CI-sized grids.
    pub smoke: bool,
    /// Paper-scale grids (overrides `smoke`).
    pub paper: bool,
    /// Trials-per-cell override.
    pub trials: Option<u64>,
    /// Arrival-trace path for the `trace_replay` experiment.
    pub trace: Option<String>,
    /// Replay `trace` through the O(chunk)-memory streaming reader
    /// (the coordinator's `--stream`). Absent in pre-v3 configs,
    /// defaulting to the in-memory loader.
    pub stream_trace: bool,
    /// Record round-loop telemetry while cells execute (the
    /// coordinator's `--progress`): instrumented cells carry a
    /// `telemetry` snapshot in their `Result`.
    pub progress: bool,
    /// Heartbeat interval override in milliseconds (`None` = the
    /// worker default, [`crate::worker::HEARTBEAT_INTERVAL`]). Tests
    /// shrink this so one cell spans many heartbeats.
    pub heartbeat_ms: Option<u64>,
    /// Directory the worker spools its flight trace into
    /// (`<flight_dir>/w<id>.spool.jsonl`); `None` = tracing off. The
    /// coordinator's `--flight-trace`. Absent in pre-v3 configs.
    pub flight_dir: Option<String>,
}

/// Look up `key`, treating a missing key and an explicit `null`
/// identically as `None` (the tolerant-read discipline; see the module
/// docs).
fn opt<T: Deserialize>(m: &[(String, Content)], key: &str) -> Result<Option<T>, DeError> {
    match m.iter().find(|(k, _)| k == key) {
        None => Ok(None),
        Some((_, v)) => Option::<T>::from_content(v),
    }
}

/// Like [`opt`] for booleans, defaulting to `false` when absent (v1
/// configs predate `progress`).
fn opt_bool(m: &[(String, Content)], key: &str) -> Result<bool, DeError> {
    Ok(opt::<bool>(m, key)?.unwrap_or(false))
}

impl Deserialize for RunConfig {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let Content::Map(m) = c else {
            return Err(DeError::expected("map", "RunConfig"));
        };
        Ok(RunConfig {
            filter: opt(m, "filter")?,
            smoke: opt_bool(m, "smoke")?,
            paper: opt_bool(m, "paper")?,
            trials: opt(m, "trials")?,
            trace: opt(m, "trace")?,
            stream_trace: opt_bool(m, "stream_trace")?,
            progress: opt_bool(m, "progress")?,
            heartbeat_ms: opt(m, "heartbeat_ms")?,
            flight_dir: opt(m, "flight_dir")?,
        })
    }
}

impl RunConfig {
    /// Extract the worker-relevant options from a bench run.
    pub fn from_bench(opts: &BenchOptions) -> Result<RunConfig, String> {
        let trace = match &opts.trace {
            None => None,
            Some(p) => Some(
                p.to_str()
                    .ok_or_else(|| format!("non-UTF-8 trace path {}", p.display()))?
                    .to_string(),
            ),
        };
        Ok(RunConfig {
            filter: opts.filter.clone(),
            smoke: opts.smoke,
            paper: opts.paper,
            trials: opts.trials,
            trace,
            stream_trace: opts.stream_trace,
            progress: opts.progress,
            heartbeat_ms: None,
            flight_dir: None,
        })
    }

    /// Rebuild [`BenchOptions`] on the worker side. Workers never write
    /// artifacts, so `out_dir` is irrelevant (set to the temp dir), and
    /// `jobs` stays 0 here because the coordinator forwards the
    /// per-worker thread cap through the `RAYON_NUM_THREADS`
    /// environment instead (cells can fan out internally via rayon;
    /// cross-cell parallelism is the coordinator's worker count).
    pub fn to_bench(&self) -> BenchOptions {
        BenchOptions {
            filter: self.filter.clone(),
            smoke: self.smoke,
            paper: self.paper,
            jobs: 0,
            out_dir: std::env::temp_dir(),
            trials: self.trials,
            trace: self.trace.as_ref().map(std::path::PathBuf::from),
            stream_trace: self.stream_trace,
            progress: self.progress,
            // Workers keep cells sequential: cross-cell parallelism is
            // the coordinator's worker count, and intra-cell fan-out
            // would oversubscribe the per-worker thread cap.
            cores: 1,
            // Worker-side tracing runs off `flight_dir`, not the bench
            // orchestrator's own exporter.
            flight_trace: None,
        }
    }
}

/// One protocol message: a `kind` tag plus the union of all payload
/// fields (unused ones `None`). See the module docs for which fields
/// each kind carries.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WireMsg {
    /// Which message this is.
    pub kind: MsgKind,
    /// `Hello`/`Ready`: protocol version.
    pub proto: Option<u32>,
    /// `Hello`: this worker's index (stable, for logs and fault
    /// injection).
    pub worker: Option<u64>,
    /// `Hello`: the run configuration to expand the registry from.
    pub config: Option<RunConfig>,
    /// `Hello`: fault injection — crash (no goodbye) after this many
    /// results. Used by tests and the CI kill-mid-run job.
    pub fail_after: Option<u64>,
    /// `Ready`: size of the worker's expanded cell universe (must match
    /// the coordinator's, or the binaries/registries have diverged).
    pub cells: Option<u64>,
    /// `Assign`: fingerprints of the cells to execute.
    pub assign: Option<Vec<String>>,
    /// `Result`: the executed cell.
    pub cell: Option<BenchCell>,
    /// `Error`: what went wrong.
    pub error: Option<String>,
    /// `Heartbeat`: per-worker sequence number, strictly increasing.
    pub seq: Option<u64>,
    /// `Heartbeat`: the worker's cumulative telemetry snapshot
    /// (completed-cell telemetry + a `worker_cells_done` counter).
    pub snapshot: Option<TelemetrySnapshot>,
    /// `Hello`: fault injection — sleep this long before each cell
    /// (a slow-but-alive worker for the heartbeat tests).
    pub slow_ms: Option<u64>,
    /// `Done`: where this worker's flight spool lives (only when the
    /// run config carried a `flight_dir`).
    pub flight_spool: Option<String>,
    /// `Done`: span events written to the spool.
    pub flight_spans: Option<u64>,
    /// `Done`: span events lost (ring laps + spool truncation).
    pub flight_dropped: Option<u64>,
}

impl Deserialize for WireMsg {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let Content::Map(m) = c else {
            return Err(DeError::expected("map", "WireMsg"));
        };
        Ok(WireMsg {
            kind: serde::field(m, "kind")?,
            proto: opt(m, "proto")?,
            worker: opt(m, "worker")?,
            config: opt(m, "config")?,
            fail_after: opt(m, "fail_after")?,
            cells: opt(m, "cells")?,
            assign: opt(m, "assign")?,
            cell: opt(m, "cell")?,
            error: opt(m, "error")?,
            seq: opt(m, "seq")?,
            snapshot: opt(m, "snapshot")?,
            slow_ms: opt(m, "slow_ms")?,
            flight_spool: opt(m, "flight_spool")?,
            flight_spans: opt(m, "flight_spans")?,
            flight_dropped: opt(m, "flight_dropped")?,
        })
    }
}

impl WireMsg {
    fn base(kind: MsgKind) -> WireMsg {
        WireMsg {
            kind,
            proto: None,
            worker: None,
            config: None,
            fail_after: None,
            cells: None,
            assign: None,
            cell: None,
            error: None,
            seq: None,
            snapshot: None,
            slow_ms: None,
            flight_spool: None,
            flight_spans: None,
            flight_dropped: None,
        }
    }

    /// Build a `Hello` handshake.
    pub fn hello(worker: u64, config: RunConfig, fail_after: Option<u64>) -> WireMsg {
        WireMsg {
            proto: Some(PROTO_VERSION),
            worker: Some(worker),
            config: Some(config),
            fail_after,
            ..WireMsg::base(MsgKind::Hello)
        }
    }

    /// Fault injection: make the receiving worker sleep `ms` before
    /// each cell (slow but alive). Builder on a `Hello`.
    pub fn with_slow_ms(mut self, ms: Option<u64>) -> WireMsg {
        self.slow_ms = ms;
        self
    }

    /// Build a `Ready` handshake reply.
    pub fn ready(cells: u64) -> WireMsg {
        WireMsg {
            proto: Some(PROTO_VERSION),
            cells: Some(cells),
            ..WireMsg::base(MsgKind::Ready)
        }
    }

    /// Build an `Assign` batch.
    pub fn assign(fingerprints: Vec<String>) -> WireMsg {
        WireMsg {
            assign: Some(fingerprints),
            ..WireMsg::base(MsgKind::Assign)
        }
    }

    /// Build a `Result` carrying one executed cell.
    pub fn result(cell: BenchCell) -> WireMsg {
        WireMsg {
            cell: Some(cell),
            ..WireMsg::base(MsgKind::Result)
        }
    }

    /// Build a `Heartbeat` carrying its sequence number and the
    /// worker's cumulative telemetry snapshot.
    pub fn heartbeat(seq: u64, snapshot: TelemetrySnapshot) -> WireMsg {
        WireMsg {
            seq: Some(seq),
            snapshot: Some(snapshot),
            ..WireMsg::base(MsgKind::Heartbeat)
        }
    }

    /// Build a `Shutdown`.
    pub fn shutdown() -> WireMsg {
        WireMsg::base(MsgKind::Shutdown)
    }

    /// Build a `Done` goodbye.
    pub fn done() -> WireMsg {
        WireMsg::base(MsgKind::Done)
    }

    /// Attach the flight-spool accounting to a `Done` goodbye (builder,
    /// used when the run config carried a `flight_dir`).
    pub fn with_flight(mut self, spool: String, spans: u64, dropped: u64) -> WireMsg {
        self.flight_spool = Some(spool);
        self.flight_spans = Some(spans);
        self.flight_dropped = Some(dropped);
        self
    }

    /// Build an `Error` report.
    pub fn error(message: impl Into<String>) -> WireMsg {
        WireMsg {
            error: Some(message.into()),
            ..WireMsg::base(MsgKind::Error)
        }
    }

    /// Serialize to one JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire messages contain only finite numbers")
    }

    /// Parse one JSONL line.
    pub fn parse(line: &str) -> Result<WireMsg, String> {
        serde_json::from_str(line).map_err(|e| format!("bad protocol line: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> RunConfig {
        RunConfig {
            filter: Some("fig6".into()),
            smoke: true,
            paper: false,
            trials: Some(2),
            trace: None,
            stream_trace: false,
            progress: false,
            heartbeat_ms: None,
            flight_dir: None,
        }
    }

    #[test]
    fn every_message_kind_round_trips_through_jsonl() {
        let cell = BenchCell::new(
            "fig6/MaxCard/M50/T10",
            vec![("M".into(), "50".into())],
            vec![("avg_response".into(), 3.25)],
            0.5,
            100,
            "engine",
        );
        let mut beat_snap = TelemetrySnapshot::new();
        beat_snap.add_counter("worker_cells_done", 3);
        beat_snap.add_stage_ns("dispatch", 42);
        let msgs = vec![
            WireMsg::hello(3, sample_config(), Some(2)).with_slow_ms(Some(25)),
            WireMsg::ready(42),
            WireMsg::assign(vec!["aa".into(), "bb".into()]),
            WireMsg::result(cell),
            WireMsg::heartbeat(7, beat_snap),
            WireMsg::shutdown(),
            WireMsg::done(),
            WireMsg::done().with_flight("/tmp/flight/w3.spool.jsonl".into(), 1200, 7),
            WireMsg::error("boom"),
        ];
        for msg in msgs {
            let line = msg.to_line();
            assert!(!line.contains('\n'), "JSONL messages must be single-line");
            let parsed = WireMsg::parse(&line).expect("round trip");
            assert_eq!(parsed, msg);
        }
    }

    #[test]
    fn parse_rejects_garbage_and_truncation() {
        assert!(WireMsg::parse("not json").is_err());
        let line = WireMsg::heartbeat(0, TelemetrySnapshot::new()).to_line();
        assert!(WireMsg::parse(&line[..line.len() - 2]).is_err());
    }

    #[test]
    fn v1_heartbeat_without_seq_or_snapshot_still_parses() {
        // Byte-for-byte what a proto-v1 worker emitted: no `seq`,
        // `snapshot`, or `slow_ms` keys existed before v2. Locks in the
        // tolerant read the way report.rs locks in schema v2 -> v3.
        let line = concat!(
            r#"{"kind":"Heartbeat","proto":null,"worker":null,"config":null,"#,
            r#""fail_after":null,"cells":null,"assign":null,"cell":null,"error":null}"#,
        );
        let msg = WireMsg::parse(line).expect("v1 heartbeat parses under v2 reader");
        assert_eq!(msg.kind, MsgKind::Heartbeat);
        assert_eq!(msg.seq, None);
        assert_eq!(msg.snapshot, None);
        assert_eq!(msg.slow_ms, None);
    }

    #[test]
    fn minimal_and_v1_messages_parse_tolerantly() {
        // Only `kind` is required.
        let msg = WireMsg::parse(r#"{"kind":"Shutdown"}"#).unwrap();
        assert_eq!(msg, WireMsg::shutdown());
        // ...and `kind` really is required.
        assert!(WireMsg::parse(r#"{"proto":2}"#).is_err());

        // A v1 Hello: its RunConfig predates `progress`/`heartbeat_ms`.
        let line = concat!(
            r#"{"kind":"Hello","proto":1,"worker":0,"config":{"filter":null,"#,
            r#""smoke":true,"paper":false,"trials":1,"trace":null},"fail_after":null}"#,
        );
        let msg = WireMsg::parse(line).expect("v1 hello parses under v2 reader");
        assert_eq!(msg.proto, Some(1), "version check still sees the mismatch");
        let config = msg.config.unwrap();
        assert!(config.smoke);
        assert!(!config.progress, "missing v2 field defaults to false");
        assert_eq!(config.heartbeat_ms, None);
        assert_eq!(config.flight_dir, None, "missing v3 field defaults to None");
    }

    #[test]
    fn v2_done_without_flight_fields_still_parses() {
        // Byte-for-byte what a proto-v2 worker said goodbye with: no
        // flight keys existed before v3.
        let line = concat!(
            r#"{"kind":"Done","proto":null,"worker":null,"config":null,"fail_after":null,"#,
            r#""cells":null,"assign":null,"cell":null,"error":null,"seq":null,"#,
            r#""snapshot":null,"slow_ms":null}"#,
        );
        let msg = WireMsg::parse(line).expect("v2 done parses under v3 reader");
        assert_eq!(msg.kind, MsgKind::Done);
        assert_eq!(msg.flight_spool, None);
        assert_eq!(msg.flight_spans, None);
        assert_eq!(msg.flight_dropped, None);
    }

    #[test]
    fn run_config_round_trips_through_bench_options() {
        let config = sample_config();
        let opts = config.to_bench();
        assert_eq!(opts.filter.as_deref(), Some("fig6"));
        assert!(opts.smoke);
        assert_eq!(opts.trials, Some(2));
        let back = RunConfig::from_bench(&opts).unwrap();
        assert_eq!(back, config);

        let with_trace = BenchOptions {
            trace: Some(std::path::PathBuf::from("examples/sample_trace.jsonl")),
            ..BenchOptions::default()
        };
        let config = RunConfig::from_bench(&with_trace).unwrap();
        assert_eq!(config.trace.as_deref(), Some("examples/sample_trace.jsonl"));
        assert_eq!(
            config.to_bench().trace.as_deref(),
            Some(std::path::Path::new("examples/sample_trace.jsonl"))
        );
    }
}
