//! Co-flow response-time metrics.
//!
//! A co-flow completes when its last member flow completes; its response
//! time is that completion minus the co-flow's release. These are the
//! co-flow analogs of the paper's FS-ART / FS-MRT objectives (and of CCT —
//! co-flow completion time — in the datacenter literature).

use fss_core::prelude::*;
use serde::{Deserialize, Serialize};

use crate::instance::CoflowInstance;

/// Aggregate co-flow response statistics for a flow-level schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoflowMetrics {
    /// Number of co-flows.
    pub k: usize,
    /// Sum of co-flow response times.
    pub total_response: u64,
    /// Largest co-flow response time.
    pub max_response: u64,
    /// `total / k` (0 when there are no co-flows).
    pub mean_response: f64,
}

/// Evaluate a flow-level schedule at the co-flow granularity.
pub fn evaluate(ci: &CoflowInstance, sched: &Schedule) -> CoflowMetrics {
    assert_eq!(ci.inst.n(), sched.len(), "schedule covers every flow");
    let mut completion = vec![0u64; ci.num_coflows];
    for (i, &c) in ci.membership.iter().enumerate() {
        let done = sched.rounds()[i] + 1;
        completion[c.idx()] = completion[c.idx()].max(done);
    }
    let mut total = 0u64;
    let mut max = 0u64;
    for c in ci.coflow_ids() {
        let rho = completion[c.idx()] - ci.release(c);
        total += rho;
        max = max.max(rho);
    }
    CoflowMetrics {
        k: ci.num_coflows,
        total_response: total,
        max_response: max,
        mean_response: if ci.num_coflows == 0 {
            0.0
        } else {
            total as f64 / ci.num_coflows as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::CoflowBuilder;

    #[test]
    fn coflow_completes_with_last_member() {
        let mut b = CoflowBuilder::new(Switch::uniform(2, 2, 1));
        b.coflow(0);
        b.flow(0, 0, 1);
        b.flow(1, 1, 1);
        let ci = b.build().unwrap();
        // Members finish at rounds 0 and 3 -> coflow response 4.
        let sched = Schedule::from_rounds(vec![0, 3]);
        let m = evaluate(&ci, &sched);
        assert_eq!(m.k, 1);
        assert_eq!(m.total_response, 4);
        assert_eq!(m.max_response, 4);
    }

    #[test]
    fn independent_coflows_sum() {
        let mut b = CoflowBuilder::new(Switch::uniform(2, 2, 1));
        b.coflow(0);
        b.flow(0, 0, 1);
        b.coflow(1);
        b.flow(1, 1, 1);
        let ci = b.build().unwrap();
        let sched = Schedule::from_rounds(vec![0, 1]);
        let m = evaluate(&ci, &sched);
        // Responses: 1 and 1 (released at 0 and 1, run at 0 and 1).
        assert_eq!(m.total_response, 2);
        assert_eq!(m.max_response, 1);
        assert!((m.mean_response - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance() {
        let b = CoflowBuilder::new(Switch::uniform(1, 1, 1));
        let ci = b.build().unwrap();
        let m = evaluate(&ci, &Schedule::from_rounds(vec![]));
        assert_eq!(m.k, 0);
        assert_eq!(m.mean_response, 0.0);
    }
}
