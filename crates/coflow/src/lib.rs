//! # fss-coflow — co-flow scheduling on a switch
//!
//! The paper's future-work section (§6) asks for extensions "to more
//! general types of flows (e.g., co-flows)", and its related-work section
//! is anchored in the co-flow literature (Varys, and the completion-time
//! approximation algorithms it cites). This crate provides that layer on
//! top of the `fss-core` model:
//!
//! * a [`CoflowInstance`] groups flows into co-flows — a co-flow completes
//!   when its *last* member flow completes (the semantics of a distributed
//!   shuffle stage);
//! * [`metrics`] evaluates co-flow response times (CCT analogs) for any
//!   flow-level [`fss_core::Schedule`];
//! * [`schedulers`] implements co-flow-aware round-based schedulers:
//!   **SEBF** (smallest effective bottleneck first, the Varys ordering),
//!   **FIFO** (arrival order), and **fair** round-robin sharing;
//! * [`bound`] computes the per-coflow bottleneck lower bound
//!   `Γ = max_port load/capacity` that CCT cannot beat.

pub mod bound;
pub mod instance;
pub mod metrics;
pub mod schedulers;

pub use bound::bottleneck_lower_bound;
pub use instance::{CoflowId, CoflowInstance};
pub use metrics::{evaluate, CoflowMetrics};
pub use schedulers::{schedule_coflows, CoflowOrdering};
