#![allow(clippy::needless_range_loop)] // parallel-array index loops are clearer here
//! Round-based co-flow schedulers.
//!
//! All three schedulers share the same round loop — release, prioritize
//! co-flows, pack member flows greedily under the port capacities — and
//! differ only in the priority order:
//!
//! * [`CoflowOrdering::Sebf`] — *smallest effective bottleneck first*: the
//!   co-flow whose **remaining** bottleneck Γ is smallest goes first (the
//!   Varys heuristic; favors average co-flow response);
//! * [`CoflowOrdering::Fifo`] — arrival order (favors maximum response);
//! * [`CoflowOrdering::Fair`] — round-robin rotation of the priority list
//!   (approximates per-coflow fair sharing).

use fss_core::prelude::*;
use serde::{Deserialize, Serialize};

use crate::instance::CoflowInstance;

/// Priority rule used by [`schedule_coflows`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoflowOrdering {
    /// Smallest remaining bottleneck first (Varys-style SEBF).
    Sebf,
    /// First released, first served.
    Fifo,
    /// Round-robin rotation among active co-flows.
    Fair,
}

impl CoflowOrdering {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CoflowOrdering::Sebf => "SEBF",
            CoflowOrdering::Fifo => "FIFO",
            CoflowOrdering::Fair => "Fair",
        }
    }
}

/// Schedule all flows of `ci` with the given co-flow priority rule.
/// Returns a feasible flow-level schedule (general demands and capacities
/// supported).
pub fn schedule_coflows(ci: &CoflowInstance, ordering: CoflowOrdering) -> Schedule {
    let inst = &ci.inst;
    let n = inst.n();
    let mut rounds = vec![0u64; n];
    if n == 0 {
        return Schedule::from_rounds(rounds);
    }

    let mut scheduled = vec![false; n];
    let mut remaining = n;
    let mut t = inst.flows.iter().map(|f| f.release).min().unwrap_or(0);
    let m_in = inst.switch.num_inputs();
    let m_out = inst.switch.num_outputs();

    // Remaining per-port load of each co-flow (for SEBF's *effective*
    // bottleneck): updated as members finish.
    while remaining > 0 {
        // Active co-flows: released, with unscheduled members.
        let mut active: Vec<u32> = Vec::new();
        let mut seen = vec![false; ci.num_coflows];
        for i in 0..n {
            if !scheduled[i] && inst.flows[i].release <= t {
                let c = ci.membership[i].idx();
                if !seen[c] {
                    seen[c] = true;
                    active.push(c as u32);
                }
            }
        }
        if active.is_empty() {
            // Jump to the next release among unscheduled flows.
            t = inst
                .flows
                .iter()
                .zip(&scheduled)
                .filter(|&(_, &s)| !s)
                .map(|(f, _)| f.release)
                .min()
                .expect("remaining > 0 implies an unscheduled flow");
            continue;
        }

        // Priority order.
        match ordering {
            CoflowOrdering::Sebf => {
                let gamma = remaining_bottlenecks(ci, &scheduled, t);
                active.sort_by_key(|&c| (gamma[c as usize], c));
            }
            CoflowOrdering::Fifo => {
                active.sort_by_key(|&c| (ci.release(crate::CoflowId(c)), c));
            }
            CoflowOrdering::Fair => {
                active.sort_unstable();
                let len = active.len();
                active.rotate_left((t as usize) % len);
            }
        }

        // Pack flows: priority coflows first, flows within a coflow in id
        // order; a flow fits if both ports have residual capacity.
        let mut in_left: Vec<u32> = (0..m_in as u32).map(|p| inst.switch.in_cap(p)).collect();
        let mut out_left: Vec<u32> = (0..m_out as u32).map(|q| inst.switch.out_cap(q)).collect();
        for &c in &active {
            for i in 0..n {
                if scheduled[i] || ci.membership[i].idx() != c as usize || inst.flows[i].release > t
                {
                    continue;
                }
                let f = &inst.flows[i];
                if f.demand <= in_left[f.src as usize] && f.demand <= out_left[f.dst as usize] {
                    in_left[f.src as usize] -= f.demand;
                    out_left[f.dst as usize] -= f.demand;
                    scheduled[i] = true;
                    rounds[i] = t;
                    remaining -= 1;
                }
            }
        }
        t += 1;
    }
    let sched = Schedule::from_rounds(rounds);
    debug_assert!(validate::check(inst, &sched, &inst.switch).is_ok());
    sched
}

/// Remaining bottleneck Γ of each co-flow given the already-scheduled set.
fn remaining_bottlenecks(ci: &CoflowInstance, scheduled: &[bool], now: u64) -> Vec<u64> {
    let inst = &ci.inst;
    let mut in_load = vec![vec![0u64; inst.switch.num_inputs()]; ci.num_coflows];
    let mut out_load = vec![vec![0u64; inst.switch.num_outputs()]; ci.num_coflows];
    for (i, f) in inst.flows.iter().enumerate() {
        if scheduled[i] || f.release > now {
            continue;
        }
        let c = ci.membership[i].idx();
        in_load[c][f.src as usize] += u64::from(f.demand);
        out_load[c][f.dst as usize] += u64::from(f.demand);
    }
    (0..ci.num_coflows)
        .map(|c| {
            let mut worst = 0u64;
            for (p, &l) in in_load[c].iter().enumerate() {
                worst = worst.max(l.div_ceil(u64::from(inst.switch.in_cap(p as u32))));
            }
            for (q, &l) in out_load[c].iter().enumerate() {
                worst = worst.max(l.div_ceil(u64::from(inst.switch.out_cap(q as u32))));
            }
            worst
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::CoflowBuilder;
    use crate::metrics::evaluate;

    /// One small co-flow and one big one, all contending for input 0.
    fn small_vs_big() -> CoflowInstance {
        let mut b = CoflowBuilder::new(Switch::uniform(1, 4, 1));
        b.coflow(0); // big: 3 flows through input 0
        b.flow(0, 0, 1);
        b.flow(0, 1, 1);
        b.flow(0, 2, 1);
        b.coflow(0); // small: 1 flow
        b.flow(0, 3, 1);
        b.build().unwrap()
    }

    #[test]
    fn all_orderings_produce_feasible_schedules() {
        let ci = small_vs_big();
        for o in [
            CoflowOrdering::Sebf,
            CoflowOrdering::Fifo,
            CoflowOrdering::Fair,
        ] {
            let s = schedule_coflows(&ci, o);
            validate::check(&ci.inst, &s, &ci.inst.switch).unwrap();
            assert_eq!(s.len(), ci.inst.n());
        }
    }

    #[test]
    fn sebf_prioritizes_the_small_coflow() {
        let ci = small_vs_big();
        let sebf = evaluate(&ci, &schedule_coflows(&ci, CoflowOrdering::Sebf));
        let fifo = evaluate(&ci, &schedule_coflows(&ci, CoflowOrdering::Fifo));
        // SEBF: small coflow finishes round 0 (response 1), big by round 3
        // (response 4): total 5. FIFO: big first (response 3), small waits
        // until round 3 (response 4): total 7.
        assert!(
            sebf.total_response < fifo.total_response,
            "SEBF {} !< FIFO {}",
            sebf.total_response,
            fifo.total_response
        );
    }

    #[test]
    fn fifo_bounds_max_response() {
        let ci = small_vs_big();
        let sebf = evaluate(&ci, &schedule_coflows(&ci, CoflowOrdering::Sebf));
        let fifo = evaluate(&ci, &schedule_coflows(&ci, CoflowOrdering::Fifo));
        assert!(fifo.max_response <= sebf.max_response);
    }

    #[test]
    fn respects_releases() {
        let mut b = CoflowBuilder::new(Switch::uniform(1, 1, 1));
        b.coflow(5);
        b.flow(0, 0, 1);
        let ci = b.build().unwrap();
        let s = schedule_coflows(&ci, CoflowOrdering::Sebf);
        assert_eq!(s.rounds()[0], 5);
    }

    #[test]
    fn general_demands_and_capacities() {
        let mut b = CoflowBuilder::new(Switch::new(vec![3, 3], vec![3, 3]));
        b.coflow(0);
        b.flow(0, 0, 2);
        b.flow(0, 1, 2); // exceeds input 0 capacity together with the first
        b.coflow(0);
        b.flow(1, 0, 1);
        b.flow(1, 1, 3);
        let ci = b.build().unwrap();
        for o in [
            CoflowOrdering::Sebf,
            CoflowOrdering::Fifo,
            CoflowOrdering::Fair,
        ] {
            let s = schedule_coflows(&ci, o);
            validate::check(&ci.inst, &s, &ci.inst.switch).unwrap();
        }
    }

    #[test]
    fn fair_rotation_serves_everyone() {
        // Two identical co-flows on one port: fair must interleave.
        let mut b = CoflowBuilder::new(Switch::uniform(1, 1, 1));
        b.coflow(0);
        b.flow(0, 0, 1);
        b.flow(0, 0, 1);
        b.coflow(0);
        b.flow(0, 0, 1);
        b.flow(0, 0, 1);
        let ci = b.build().unwrap();
        let s = schedule_coflows(&ci, CoflowOrdering::Fair);
        let m = evaluate(&ci, &s);
        // Both finish by round 3; with rotation, neither gets both early
        // slots... at minimum the schedule is feasible and complete.
        validate::check(&ci.inst, &s, &ci.inst.switch).unwrap();
        assert_eq!(m.k, 2);
    }

    #[test]
    fn metrics_never_beat_bottleneck_bound() {
        use crate::bound::bottleneck_lower_bound;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(15);
        for _ in 0..10 {
            let mut b = CoflowBuilder::new(Switch::uniform(3, 3, 1));
            let k = rng.gen_range(1..4);
            for c in 0..k {
                b.coflow(c as u64);
                for _ in 0..rng.gen_range(1..5) {
                    b.flow(rng.gen_range(0..3), rng.gen_range(0..3), 1);
                }
            }
            let ci = b.build().unwrap();
            let (total_lb, max_lb) = bottleneck_lower_bound(&ci);
            for o in [
                CoflowOrdering::Sebf,
                CoflowOrdering::Fifo,
                CoflowOrdering::Fair,
            ] {
                let m = evaluate(&ci, &schedule_coflows(&ci, o));
                assert!(m.total_response >= total_lb);
                assert!(m.max_response >= max_lb);
            }
        }
    }
}
