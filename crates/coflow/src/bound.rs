//! Lower bounds on co-flow response times.

use crate::instance::{CoflowId, CoflowInstance};

/// The bottleneck lower bound: co-flow `c` cannot respond faster than its
/// isolated bottleneck `Γ_c` (its heaviest port load over that port's
/// capacity), so
///
/// * total response `>= Σ_c Γ_c`, and
/// * max response `>= max_c Γ_c`.
///
/// This is the Varys-style Γ bound specialized to round-based switches; it
/// ignores inter-coflow contention and release staggering, so it is loose
/// under congestion — but it is cheap and schedule-independent, which makes
/// it the reference line in the co-flow example and benches.
pub fn bottleneck_lower_bound(ci: &CoflowInstance) -> (u64, u64) {
    let mut total = 0u64;
    let mut max = 0u64;
    for c in ci.coflow_ids() {
        let g = ci.bottleneck(c);
        total += g;
        max = max.max(g);
    }
    (total, max)
}

/// A contention-aware refinement for the *total* bound: flows of distinct
/// co-flows sharing a port serialize, so for every port the sum over
/// co-flows of their load on it, divided by capacity, bounds the *last*
/// completion among those co-flows. Aggregating optimally is NP-hard; this
/// helper returns the simple per-port "sum of loads" bound on the maximum
/// response, which dominates `max_c Γ_c` when co-flows overlap:
/// `max response >= max_port (total released-together load / cap)` over
/// co-flows sharing a release round.
pub fn contention_max_bound(ci: &CoflowInstance) -> u64 {
    use std::collections::HashMap;
    // Group co-flows by release round; within a group, port loads add up
    // before any of them can all be finished.
    let mut per_release_in: HashMap<(u64, u32), u64> = HashMap::new();
    let mut per_release_out: HashMap<(u64, u32), u64> = HashMap::new();
    for (i, f) in ci.inst.flows.iter().enumerate() {
        let _ = i;
        *per_release_in.entry((f.release, f.src)).or_insert(0) += u64::from(f.demand);
        *per_release_out.entry((f.release, f.dst)).or_insert(0) += u64::from(f.demand);
    }
    let mut worst = 0u64;
    for (&(_, p), &load) in &per_release_in {
        worst = worst.max(load.div_ceil(u64::from(ci.inst.switch.in_cap(p))));
    }
    for (&(_, q), &load) in &per_release_out {
        worst = worst.max(load.div_ceil(u64::from(ci.inst.switch.out_cap(q))));
    }
    worst
}

/// Bottleneck of a single co-flow (re-exported convenience).
pub fn gamma(ci: &CoflowInstance, c: CoflowId) -> u64 {
    ci.bottleneck(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::CoflowBuilder;
    use fss_core::prelude::*;

    #[test]
    fn bounds_on_disjoint_coflows() {
        let mut b = CoflowBuilder::new(Switch::uniform(2, 2, 1));
        b.coflow(0);
        b.flow(0, 0, 1);
        b.flow(0, 1, 1); // bottleneck 2 at input 0
        b.coflow(0);
        b.flow(1, 0, 1); // bottleneck 1
        let ci = b.build().unwrap();
        let (total, max) = bottleneck_lower_bound(&ci);
        assert_eq!(total, 3);
        assert_eq!(max, 2);
    }

    #[test]
    fn contention_bound_dominates_gamma_on_overlap() {
        // Two co-flows, same release, both hammering output 0.
        let mut b = CoflowBuilder::new(Switch::uniform(2, 1, 1));
        b.coflow(0);
        b.flow(0, 0, 1);
        b.coflow(0);
        b.flow(1, 0, 1);
        let ci = b.build().unwrap();
        let (_, gamma_max) = bottleneck_lower_bound(&ci);
        assert_eq!(gamma_max, 1);
        assert_eq!(contention_max_bound(&ci), 2);
    }

    #[test]
    fn empty_instance_bounds_are_zero() {
        let ci = CoflowBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        assert_eq!(bottleneck_lower_bound(&ci), (0, 0));
        assert_eq!(contention_max_bound(&ci), 0);
    }
}
