//! Co-flow instances: flows grouped into collective transfers.

use fss_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Index of a co-flow within its [`CoflowInstance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoflowId(pub u32);

impl CoflowId {
    /// The co-flow's index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A flow-level instance plus a partition of its flows into co-flows.
///
/// Invariants (enforced by [`CoflowInstance::new`]):
/// * every flow belongs to exactly one co-flow;
/// * within a co-flow all members share the co-flow's release round (a
///   shuffle stage becomes known all at once — the standard co-flow
///   model; staggered member releases can be modeled as separate
///   co-flows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoflowInstance {
    /// The underlying flow-level instance.
    pub inst: Instance,
    /// `membership[flow] = coflow id`.
    pub membership: Vec<CoflowId>,
    /// Number of co-flows.
    pub num_coflows: usize,
}

impl CoflowInstance {
    /// Build and validate. Panics on invariant violations (these indicate
    /// generator bugs, not recoverable conditions).
    pub fn new(inst: Instance, membership: Vec<CoflowId>) -> Self {
        assert_eq!(inst.n(), membership.len(), "one membership entry per flow");
        let num_coflows = membership.iter().map(|c| c.idx() + 1).max().unwrap_or(0);
        // Every co-flow id in range must be used at least once and all
        // members must share a release.
        let mut release: Vec<Option<u64>> = vec![None; num_coflows];
        for (f, c) in inst.flows.iter().zip(&membership) {
            match release[c.idx()] {
                None => release[c.idx()] = Some(f.release),
                Some(r) => assert_eq!(
                    r, f.release,
                    "co-flow {c:?}: member releases differ ({r} vs {})",
                    f.release
                ),
            }
        }
        assert!(
            release.iter().all(Option::is_some),
            "co-flow ids must be contiguous from 0"
        );
        CoflowInstance {
            inst,
            membership,
            num_coflows,
        }
    }

    /// Member flow indices of co-flow `c`.
    pub fn members(&self, c: CoflowId) -> Vec<usize> {
        self.membership
            .iter()
            .enumerate()
            .filter_map(|(i, &m)| (m == c).then_some(i))
            .collect()
    }

    /// Release round of co-flow `c` (shared by all members).
    pub fn release(&self, c: CoflowId) -> u64 {
        let i = self
            .membership
            .iter()
            .position(|&m| m == c)
            .expect("validated: every coflow has members");
        self.inst.flows[i].release
    }

    /// The *bottleneck* of co-flow `c`: the largest total demand its
    /// members place on any single port, divided by that port's capacity
    /// and rounded up — the minimum number of rounds the co-flow needs in
    /// isolation (Varys' Γ).
    pub fn bottleneck(&self, c: CoflowId) -> u64 {
        let mut in_load = vec![0u64; self.inst.switch.num_inputs()];
        let mut out_load = vec![0u64; self.inst.switch.num_outputs()];
        for &i in &self.members(c) {
            let f = &self.inst.flows[i];
            in_load[f.src as usize] += u64::from(f.demand);
            out_load[f.dst as usize] += u64::from(f.demand);
        }
        let mut worst = 0u64;
        for (p, &load) in in_load.iter().enumerate() {
            worst = worst.max(load.div_ceil(u64::from(self.inst.switch.in_cap(p as u32))));
        }
        for (q, &load) in out_load.iter().enumerate() {
            worst = worst.max(load.div_ceil(u64::from(self.inst.switch.out_cap(q as u32))));
        }
        worst
    }

    /// Iterator over all co-flow ids.
    pub fn coflow_ids(&self) -> impl Iterator<Item = CoflowId> {
        (0..self.num_coflows as u32).map(CoflowId)
    }
}

/// Builder for hand-constructing co-flow instances in tests and examples.
#[derive(Debug)]
pub struct CoflowBuilder {
    builder: InstanceBuilder,
    membership: Vec<CoflowId>,
    next_coflow: u32,
    current_release: Option<u64>,
}

impl CoflowBuilder {
    /// Start building on a switch.
    pub fn new(switch: Switch) -> Self {
        CoflowBuilder {
            builder: InstanceBuilder::new(switch),
            membership: Vec::new(),
            next_coflow: 0,
            current_release: None,
        }
    }

    /// Open a new co-flow released at round `release`; subsequent
    /// [`CoflowBuilder::flow`] calls join it.
    pub fn coflow(&mut self, release: u64) -> CoflowId {
        let id = CoflowId(self.next_coflow);
        self.next_coflow += 1;
        self.current_release = Some(release);
        id
    }

    /// Add a member flow to the currently open co-flow.
    pub fn flow(&mut self, src: u32, dst: u32, demand: u32) {
        let release = self
            .current_release
            .expect("open a coflow before adding flows");
        self.builder.flow(src, dst, demand, release);
        self.membership.push(CoflowId(self.next_coflow - 1));
    }

    /// Finish and validate.
    pub fn build(self) -> Result<CoflowInstance, fss_core::ModelError> {
        let inst = self.builder.build()?;
        Ok(CoflowInstance::new(inst, self.membership))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_coflows() -> CoflowInstance {
        let mut b = CoflowBuilder::new(Switch::uniform(2, 2, 1));
        b.coflow(0);
        b.flow(0, 0, 1);
        b.flow(0, 1, 1);
        b.coflow(2);
        b.flow(1, 0, 1);
        b.build().unwrap()
    }

    #[test]
    fn builder_groups_members() {
        let ci = two_coflows();
        assert_eq!(ci.num_coflows, 2);
        assert_eq!(ci.members(CoflowId(0)), vec![0, 1]);
        assert_eq!(ci.members(CoflowId(1)), vec![2]);
        assert_eq!(ci.release(CoflowId(0)), 0);
        assert_eq!(ci.release(CoflowId(1)), 2);
    }

    #[test]
    fn bottleneck_is_max_port_load() {
        let ci = two_coflows();
        // Co-flow 0: two flows from input 0 -> bottleneck 2.
        assert_eq!(ci.bottleneck(CoflowId(0)), 2);
        assert_eq!(ci.bottleneck(CoflowId(1)), 1);
    }

    #[test]
    fn bottleneck_respects_capacities() {
        let mut b = CoflowBuilder::new(Switch::new(vec![2], vec![2, 2]));
        b.coflow(0);
        b.flow(0, 0, 2);
        b.flow(0, 1, 2);
        let ci = b.build().unwrap();
        // 4 demand units through input 0 with capacity 2 -> 2 rounds.
        assert_eq!(ci.bottleneck(CoflowId(0)), 2);
    }

    #[test]
    #[should_panic(expected = "releases differ")]
    fn mixed_releases_rejected() {
        let mut ib = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        ib.unit_flow(0, 0, 0);
        ib.unit_flow(0, 0, 1);
        let inst = ib.build().unwrap();
        let _ = CoflowInstance::new(inst, vec![CoflowId(0), CoflowId(0)]);
    }

    #[test]
    fn serde_round_trip() {
        let ci = two_coflows();
        let json = serde_json::to_string(&ci).unwrap();
        let back: CoflowInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(ci, back);
    }
}
