//! Property tests for the model crate: validation/metrics consistency and
//! transform symmetries.

use fss_core::prelude::*;
use fss_core::transform;
use proptest::prelude::*;

fn instance_and_schedule() -> impl Strategy<Value = (Instance, Schedule)> {
    (2usize..=4, 1usize..=10).prop_flat_map(|(m, n)| {
        let flow = (0..m as u32, 0..m as u32, 0u64..5);
        let flows = proptest::collection::vec(flow, n);
        // Candidate rounds: release + offset in 0..6 (may be infeasible).
        let offsets = proptest::collection::vec(0u64..6, n);
        (flows, offsets).prop_map(move |(flows, offsets)| {
            let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
            for &(s, d, r) in &flows {
                b.unit_flow(s, d, r);
            }
            let inst = b.build().unwrap();
            let rounds: Vec<u64> = flows
                .iter()
                .zip(&offsets)
                .map(|(&(_, _, r), &o)| r + o)
                .collect();
            (inst, Schedule::from_rounds(rounds))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn validity_iff_zero_required_augmentation((inst, sched) in instance_and_schedule()) {
        let valid = validate::check(&inst, &sched, &inst.switch).is_ok();
        let needed = validate::required_augmentation(&inst, &sched).unwrap();
        prop_assert_eq!(valid, needed == 0);
        // And raising capacities by `needed` always fixes it.
        prop_assert!(validate::check(
            &inst, &sched, &inst.switch.augmented(needed as u32)).is_ok());
    }

    #[test]
    fn metrics_invariant_under_transpose((inst, sched) in instance_and_schedule()) {
        let t = transform::transpose(&inst);
        let m1 = fss_core::metrics::evaluate(&inst, &sched);
        let m2 = fss_core::metrics::evaluate(&t, &sched);
        prop_assert_eq!(m1.total_response, m2.total_response);
        prop_assert_eq!(m1.max_response, m2.max_response);
        // Feasibility is also invariant.
        prop_assert_eq!(
            validate::check(&inst, &sched, &inst.switch).is_ok(),
            validate::check(&t, &sched, &t.switch).is_ok()
        );
    }

    #[test]
    fn shift_releases_preserves_metrics((inst, sched) in instance_and_schedule()) {
        let delta = 7u64;
        let shifted = transform::shift_releases(&inst, delta);
        let shifted_sched = sched.shifted(delta);
        let m1 = fss_core::metrics::evaluate(&inst, &sched);
        let m2 = fss_core::metrics::evaluate(&shifted, &shifted_sched);
        prop_assert_eq!(m1.total_response, m2.total_response);
        prop_assert_eq!(m1.max_response, m2.max_response);
        prop_assert_eq!(
            validate::check(&inst, &sched, &inst.switch).is_ok(),
            validate::check(&shifted, &shifted_sched, &shifted.switch).is_ok()
        );
    }

    #[test]
    fn total_response_lower_bound_is_n((inst, sched) in instance_and_schedule()) {
        let m = fss_core::metrics::evaluate(&inst, &sched);
        prop_assert!(m.total_response >= inst.n() as u64,
            "every flow responds in at least one round");
        prop_assert!(m.max_response as f64 >= m.mean_response);
    }
}
