//! The non-blocking switch: a bipartite set of capacitated ports.
//!
//! The paper models the datacenter network as one big `m x m'` non-blocking
//! switch: every input port connects to every output port, bandwidth limits
//! sit at the ports, and the fabric itself is unconstrained (Figure 1).

use serde::{Deserialize, Serialize};

/// Which side of the bipartition a port lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortSide {
    /// Ingress port (left side of the bipartite graph).
    Input,
    /// Egress port (right side).
    Output,
}

/// An `m x m'` switch with per-port capacities.
///
/// Capacities are in units of demand per round. The paper's experiments use
/// unit capacities; the offline algorithms work with arbitrary positive
/// integer capacities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Switch {
    in_caps: Vec<u32>,
    out_caps: Vec<u32>,
}

impl Switch {
    /// A switch with explicit capacity vectors. Panics if any capacity is 0.
    pub fn new(in_caps: Vec<u32>, out_caps: Vec<u32>) -> Self {
        assert!(
            in_caps.iter().chain(&out_caps).all(|&c| c > 0),
            "port capacities must be positive"
        );
        Switch { in_caps, out_caps }
    }

    /// An `m x m'` switch where every port has capacity `cap`.
    pub fn uniform(m: usize, m_out: usize, cap: u32) -> Self {
        Switch::new(vec![cap; m], vec![cap; m_out])
    }

    /// The paper's experimental switch: `150 x 150`, unit capacities (§5.2.1).
    pub fn paper_experimental() -> Self {
        Switch::uniform(150, 150, 1)
    }

    /// Number of input ports (`m`).
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.in_caps.len()
    }

    /// Number of output ports (`m'`).
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.out_caps.len()
    }

    /// Total number of ports, `m + m'`.
    #[inline]
    pub fn num_ports(&self) -> usize {
        self.in_caps.len() + self.out_caps.len()
    }

    /// Capacity of input port `p`.
    #[inline]
    pub fn in_cap(&self, p: u32) -> u32 {
        self.in_caps[p as usize]
    }

    /// Capacity of output port `q`.
    #[inline]
    pub fn out_cap(&self, q: u32) -> u32 {
        self.out_caps[q as usize]
    }

    /// Capacity of a port identified by side + index.
    #[inline]
    pub fn cap(&self, side: PortSide, idx: u32) -> u32 {
        match side {
            PortSide::Input => self.in_cap(idx),
            PortSide::Output => self.out_cap(idx),
        }
    }

    /// `kappa_e = min(c_p, c_q)` for a flow from input `p` to output `q`.
    #[inline]
    pub fn kappa(&self, p: u32, q: u32) -> u32 {
        self.in_cap(p).min(self.out_cap(q))
    }

    /// Slice of all input capacities.
    pub fn in_caps(&self) -> &[u32] {
        &self.in_caps
    }

    /// Slice of all output capacities.
    pub fn out_caps(&self) -> &[u32] {
        &self.out_caps
    }

    /// True when every port has capacity 1.
    pub fn is_unit_capacity(&self) -> bool {
        self.in_caps.iter().chain(&self.out_caps).all(|&c| c == 1)
    }

    /// Largest capacity over all ports.
    pub fn max_cap(&self) -> u32 {
        self.in_caps
            .iter()
            .chain(&self.out_caps)
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Multiplicative resource augmentation: every capacity scaled by
    /// `factor` (Theorem 1 uses `1 + c`).
    pub fn scaled(&self, factor: u32) -> Switch {
        assert!(factor > 0, "scale factor must be positive");
        Switch {
            in_caps: self.in_caps.iter().map(|&c| c * factor).collect(),
            out_caps: self.out_caps.iter().map(|&c| c * factor).collect(),
        }
    }

    /// Additive resource augmentation: every capacity increased by `delta`
    /// (Theorem 3 uses `2*dmax - 1`).
    pub fn augmented(&self, delta: u32) -> Switch {
        Switch {
            in_caps: self.in_caps.iter().map(|&c| c + delta).collect(),
            out_caps: self.out_caps.iter().map(|&c| c + delta).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_switch_dimensions() {
        let s = Switch::uniform(3, 5, 2);
        assert_eq!(s.num_inputs(), 3);
        assert_eq!(s.num_outputs(), 5);
        assert_eq!(s.num_ports(), 8);
        assert_eq!(s.in_cap(0), 2);
        assert_eq!(s.out_cap(4), 2);
        assert!(!s.is_unit_capacity());
        assert_eq!(s.max_cap(), 2);
    }

    #[test]
    fn paper_switch_is_150x150_unit() {
        let s = Switch::paper_experimental();
        assert_eq!(s.num_inputs(), 150);
        assert_eq!(s.num_outputs(), 150);
        assert!(s.is_unit_capacity());
    }

    #[test]
    fn kappa_is_min_of_endpoint_capacities() {
        let s = Switch::new(vec![3, 1], vec![2, 5]);
        assert_eq!(s.kappa(0, 0), 2);
        assert_eq!(s.kappa(0, 1), 3);
        assert_eq!(s.kappa(1, 1), 1);
    }

    #[test]
    fn scaling_and_augmenting() {
        let s = Switch::new(vec![1, 2], vec![3]);
        let x2 = s.scaled(2);
        assert_eq!(x2.in_caps(), &[2, 4]);
        assert_eq!(x2.out_caps(), &[6]);
        let plus3 = s.augmented(3);
        assert_eq!(plus3.in_caps(), &[4, 5]);
        assert_eq!(plus3.out_caps(), &[6]);
    }

    #[test]
    fn cap_by_side() {
        let s = Switch::new(vec![7], vec![9]);
        assert_eq!(s.cap(PortSide::Input, 0), 7);
        assert_eq!(s.cap(PortSide::Output, 0), 9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = Switch::new(vec![0], vec![1]);
    }
}
