//! Small random-instance generators shared by tests and benches.
//!
//! The paper's full experimental workload (Poisson arrivals on a 150x150
//! switch, §5.2.1) lives in `fss-sim::workload`; the helpers here produce
//! bounded random instances convenient for unit/property tests of the
//! offline algorithms.

use rand::Rng;

use crate::instance::{Instance, InstanceBuilder};
use crate::switch::Switch;

/// Parameters for [`random_instance`].
#[derive(Debug, Clone)]
pub struct GenParams {
    /// Input ports.
    pub m: usize,
    /// Output ports.
    pub m_out: usize,
    /// Uniform port capacity.
    pub cap: u32,
    /// Number of flows.
    pub n: usize,
    /// Demands drawn uniformly from `1..=max_demand` (clamped to `kappa`).
    pub max_demand: u32,
    /// Releases drawn uniformly from `0..=max_release`.
    pub max_release: u64,
}

impl GenParams {
    /// Unit-demand, unit-capacity defaults on an `m x m` switch.
    pub fn unit(m: usize, n: usize, max_release: u64) -> Self {
        GenParams {
            m,
            m_out: m,
            cap: 1,
            n,
            max_demand: 1,
            max_release,
        }
    }
}

/// Draw a random instance: uniformly random port pairs, demands, releases.
pub fn random_instance<R: Rng + ?Sized>(rng: &mut R, p: &GenParams) -> Instance {
    let switch = Switch::uniform(p.m, p.m_out, p.cap);
    let mut b = InstanceBuilder::new(switch);
    for _ in 0..p.n {
        let src = rng.gen_range(0..p.m as u32);
        let dst = rng.gen_range(0..p.m_out as u32);
        let kappa = p.cap; // uniform capacities
        let demand = rng.gen_range(1..=p.max_demand.min(kappa)).max(1);
        let release = rng.gen_range(0..=p.max_release);
        b.flow(src, dst, demand, release);
    }
    b.build()
        .expect("generator respects invariants by construction")
}

/// A dense "all pairs released at 0" instance: one unit flow for every
/// input/output pair. With unit capacities its optimal makespan is exactly
/// `max(m, m')` (a round-robin of perfect matchings).
pub fn all_pairs_unit(m: usize, m_out: usize) -> Instance {
    let mut b = InstanceBuilder::new(Switch::uniform(m, m_out, 1));
    for p in 0..m as u32 {
        for q in 0..m_out as u32 {
            b.unit_flow(p, q, 0);
        }
    }
    b.build().expect("all-pairs instance is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_instance_respects_params() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = GenParams {
            m: 4,
            m_out: 3,
            cap: 5,
            n: 40,
            max_demand: 4,
            max_release: 9,
        };
        let inst = random_instance(&mut rng, &p);
        assert_eq!(inst.n(), 40);
        assert!(inst.dmax() <= 4);
        assert!(inst.max_release() <= 9);
        for f in &inst.flows {
            assert!(f.src < 4 && f.dst < 3);
            assert!(f.demand >= 1);
        }
    }

    #[test]
    fn random_instances_differ_across_seeds() {
        let p = GenParams::unit(5, 30, 10);
        let a = random_instance(&mut SmallRng::seed_from_u64(1), &p);
        let b = random_instance(&mut SmallRng::seed_from_u64(2), &p);
        assert_ne!(a.flows, b.flows);
    }

    #[test]
    fn all_pairs_has_m_times_mout_flows() {
        let inst = all_pairs_unit(3, 4);
        assert_eq!(inst.n(), 12);
        assert!(inst.is_unit_demand());
        assert_eq!(inst.in_port_load(0), 4);
        assert_eq!(inst.out_port_load(0), 3);
    }
}
