//! Response-time metrics: the FS-ART and FS-MRT objectives.

use serde::{Deserialize, Serialize};

use crate::instance::Instance;
use crate::schedule::Schedule;

/// Aggregate response-time statistics of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResponseMetrics {
    /// `sum_e rho_e` — the FS-ART objective (before dividing by `n`).
    pub total_response: u64,
    /// `max_e rho_e` — the FS-MRT objective.
    pub max_response: u64,
    /// `total_response / n` (0 for empty instances).
    pub mean_response: f64,
    /// Number of flows.
    pub n: usize,
    /// One past the last used round.
    pub makespan: u64,
}

/// Compute all metrics of `sched` on `inst`.
///
/// Panics if the schedule length does not match the instance (use
/// [`crate::validate::check`] first for untrusted schedules) or if a flow is
/// scheduled before its release round, which would make its response time
/// meaningless.
pub fn evaluate(inst: &Instance, sched: &Schedule) -> ResponseMetrics {
    assert_eq!(
        inst.n(),
        sched.len(),
        "schedule covers {} flows, instance has {}",
        sched.len(),
        inst.n()
    );
    let mut total = 0u64;
    let mut max = 0u64;
    for (f, &t) in inst.flows.iter().zip(sched.rounds()) {
        assert!(
            t >= f.release,
            "flow scheduled at {t} before its release {r}",
            r = f.release
        );
        let rho = t + 1 - f.release;
        total += rho;
        max = max.max(rho);
    }
    let n = inst.n();
    ResponseMetrics {
        total_response: total,
        max_response: max,
        mean_response: if n == 0 { 0.0 } else { total as f64 / n as f64 },
        n,
        makespan: sched.makespan(),
    }
}

/// Total response time only (cheaper when that is all a caller needs).
pub fn total_response(inst: &Instance, sched: &Schedule) -> u64 {
    evaluate(inst, sched).total_response
}

/// Maximum response time only.
pub fn max_response(inst: &Instance, sched: &Schedule) -> u64 {
    evaluate(inst, sched).max_response
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::switch::Switch;

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(1, 1, 0);
        b.unit_flow(0, 1, 2);
        b.build().unwrap()
    }

    #[test]
    fn metrics_on_simple_schedule() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0, 0, 3]);
        let m = evaluate(&i, &s);
        assert_eq!(m.total_response, 1 + 1 + 2);
        assert_eq!(m.max_response, 2);
        assert_eq!(m.n, 3);
        assert!((m.mean_response - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.makespan, 4);
    }

    #[test]
    fn empty_instance_metrics() {
        let i = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        let m = evaluate(&i, &Schedule::from_rounds(vec![]));
        assert_eq!(m.total_response, 0);
        assert_eq!(m.max_response, 0);
        assert_eq!(m.mean_response, 0.0);
    }

    #[test]
    #[should_panic(expected = "before its release")]
    fn early_schedule_panics() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0, 0, 1]); // flow 2 released at 2
        let _ = evaluate(&i, &s);
    }

    #[test]
    #[should_panic(expected = "schedule covers")]
    fn length_mismatch_panics() {
        let i = inst();
        let _ = evaluate(&i, &Schedule::from_rounds(vec![0]));
    }

    #[test]
    fn helper_wrappers_agree() {
        let i = inst();
        let s = Schedule::from_rounds(vec![1, 0, 2]);
        assert_eq!(total_response(&i, &s), evaluate(&i, &s).total_response);
        assert_eq!(max_response(&i, &s), evaluate(&i, &s).max_response);
    }
}
