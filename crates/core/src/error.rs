//! Error types for model construction and schedule validation.

use std::fmt;

/// Errors raised while constructing an [`crate::Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A flow references an input port index `>= m`.
    BadInputPort { flow: usize, port: u32, m: u32 },
    /// A flow references an output port index `>= m'`.
    BadOutputPort { flow: usize, port: u32, m_out: u32 },
    /// A flow's demand exceeds `kappa_e = min(c_src, c_dst)` (paper §2
    /// assumes `d_e <= kappa_e` throughout).
    DemandExceedsKappa {
        flow: usize,
        demand: u32,
        kappa: u32,
    },
    /// A flow has zero demand; the model requires positive demands.
    ZeroDemand { flow: usize },
    /// A port was declared with zero capacity.
    ZeroCapacity {
        side: crate::switch::PortSide,
        port: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelError::BadInputPort { flow, port, m } => {
                write!(f, "flow {flow}: input port {port} out of range (m = {m})")
            }
            ModelError::BadOutputPort { flow, port, m_out } => {
                write!(
                    f,
                    "flow {flow}: output port {port} out of range (m' = {m_out})"
                )
            }
            ModelError::DemandExceedsKappa {
                flow,
                demand,
                kappa,
            } => {
                write!(f, "flow {flow}: demand {demand} exceeds kappa = {kappa}")
            }
            ModelError::ZeroDemand { flow } => write!(f, "flow {flow}: zero demand"),
            ModelError::ZeroCapacity { side, port } => {
                write!(f, "{side:?} port {port}: zero capacity")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Errors raised while validating a [`crate::Schedule`] against an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Schedule length does not match the number of flows.
    LengthMismatch { flows: usize, assignments: usize },
    /// A flow is scheduled strictly before its release round.
    ScheduledBeforeRelease {
        flow: usize,
        round: u64,
        release: u64,
    },
    /// A port's capacity is exceeded in some round.
    CapacityExceeded {
        side: crate::switch::PortSide,
        port: u32,
        round: u64,
        load: u64,
        capacity: u64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidationError::LengthMismatch { flows, assignments } => {
                write!(f, "schedule covers {assignments} flows, instance has {flows}")
            }
            ValidationError::ScheduledBeforeRelease { flow, round, release } => {
                write!(f, "flow {flow} scheduled at round {round} before release {release}")
            }
            ValidationError::CapacityExceeded { side, port, round, load, capacity } => write!(
                f,
                "{side:?} port {port} overloaded at round {round}: load {load} > capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}
