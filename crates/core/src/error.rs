//! Error types for model construction and schedule validation.

use std::fmt;

/// Errors raised while constructing an [`crate::Instance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A flow references an input port index `>= m`.
    BadInputPort {
        /// Index of the offending flow.
        flow: usize,
        /// The out-of-range port index.
        port: u32,
        /// Number of input ports.
        m: u32,
    },
    /// A flow references an output port index `>= m'`.
    BadOutputPort {
        /// Index of the offending flow.
        flow: usize,
        /// The out-of-range port index.
        port: u32,
        /// Number of output ports.
        m_out: u32,
    },
    /// A flow's demand exceeds `kappa_e = min(c_src, c_dst)` (paper §2
    /// assumes `d_e <= kappa_e` throughout).
    DemandExceedsKappa {
        /// Index of the offending flow.
        flow: usize,
        /// The flow's demand.
        demand: u32,
        /// The endpoint capacity bound `min(c_src, c_dst)`.
        kappa: u32,
    },
    /// A flow has zero demand; the model requires positive demands.
    ZeroDemand {
        /// Index of the offending flow.
        flow: usize,
    },
    /// A port was declared with zero capacity.
    ZeroCapacity {
        /// Which side of the switch the port is on.
        side: crate::switch::PortSide,
        /// The zero-capacity port index.
        port: u32,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelError::BadInputPort { flow, port, m } => {
                write!(f, "flow {flow}: input port {port} out of range (m = {m})")
            }
            ModelError::BadOutputPort { flow, port, m_out } => {
                write!(
                    f,
                    "flow {flow}: output port {port} out of range (m' = {m_out})"
                )
            }
            ModelError::DemandExceedsKappa {
                flow,
                demand,
                kappa,
            } => {
                write!(f, "flow {flow}: demand {demand} exceeds kappa = {kappa}")
            }
            ModelError::ZeroDemand { flow } => write!(f, "flow {flow}: zero demand"),
            ModelError::ZeroCapacity { side, port } => {
                write!(f, "{side:?} port {port}: zero capacity")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Errors raised while validating a [`crate::Schedule`] against an instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Schedule length does not match the number of flows.
    LengthMismatch {
        /// Flows in the instance.
        flows: usize,
        /// Assignments in the schedule.
        assignments: usize,
    },
    /// A flow is scheduled strictly before its release round.
    ScheduledBeforeRelease {
        /// Index of the offending flow.
        flow: usize,
        /// The round it was scheduled in.
        round: u64,
        /// Its release round.
        release: u64,
    },
    /// A port's capacity is exceeded in some round.
    CapacityExceeded {
        /// Which side of the switch the port is on.
        side: crate::switch::PortSide,
        /// The overloaded port index.
        port: u32,
        /// The round the overload occurs in.
        round: u64,
        /// Scheduled load on the port in that round.
        load: u64,
        /// The port's (possibly augmented) capacity.
        capacity: u64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidationError::LengthMismatch { flows, assignments } => {
                write!(f, "schedule covers {assignments} flows, instance has {flows}")
            }
            ValidationError::ScheduledBeforeRelease { flow, round, release } => {
                write!(f, "flow {flow} scheduled at round {round} before release {release}")
            }
            ValidationError::CapacityExceeded { side, port, round, load, capacity } => write!(
                f,
                "{side:?} port {port} overloaded at round {round}: load {load} > capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for ValidationError {}

/// Errors raised while replaying an execution trace back into a
/// [`crate::Schedule`] (a trace loaded from disk is untrusted input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A dispatched flow id is outside the instance's `0..n` range.
    FlowOutOfRange {
        /// The out-of-range flow id.
        flow: u32,
        /// Number of flows in the instance.
        n: usize,
    },
    /// A flow appears in the dispatch sets of two different rounds.
    DuplicateDispatch {
        /// The twice-dispatched flow id.
        flow: u32,
        /// Round of the first dispatch.
        first: u64,
        /// Round of the second dispatch.
        second: u64,
    },
    /// A flow is never dispatched by the trace.
    MissingFlow {
        /// The uncovered flow id.
        flow: u32,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceError::FlowOutOfRange { flow, n } => {
                write!(f, "trace dispatches flow {flow}, instance has {n} flows")
            }
            TraceError::DuplicateDispatch {
                flow,
                first,
                second,
            } => {
                write!(
                    f,
                    "flow {flow} dispatched twice (rounds {first} and {second})"
                )
            }
            TraceError::MissingFlow { flow } => {
                write!(f, "trace does not cover flow {flow}")
            }
        }
    }
}

impl std::error::Error for TraceError {}
