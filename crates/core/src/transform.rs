//! Instance transformations.
//!
//! Utilities for composing and reshaping instances: time-shifting,
//! concatenating request sequences, projecting onto flow subsets, and
//! transposing the switch. Used by the batching algorithms (AMRT slices
//! instances by arrival window) and by tests that build structured
//! workloads from parts.

use crate::flow::Flow;
use crate::instance::{Instance, InstanceBuilder};
use crate::switch::Switch;

/// Shift every release time later by `delta` rounds.
pub fn shift_releases(inst: &Instance, delta: u64) -> Instance {
    let mut b = InstanceBuilder::new(inst.switch.clone());
    for f in &inst.flows {
        b.push(Flow {
            release: f.release + delta,
            ..*f
        });
    }
    b.build().expect("shifting preserves validity")
}

/// Concatenate two request sequences on the same switch: `b`'s flows are
/// appended with their releases shifted to start after `a`'s last release
/// plus `gap`. Panics if the switches differ.
pub fn concat(a: &Instance, b: &Instance, gap: u64) -> Instance {
    assert_eq!(a.switch, b.switch, "instances must share a switch");
    let offset = if a.n() == 0 { 0 } else { a.max_release() + gap };
    let mut out = InstanceBuilder::new(a.switch.clone());
    for f in &a.flows {
        out.push(*f);
    }
    for f in &b.flows {
        out.push(Flow {
            release: f.release + offset,
            ..*f
        });
    }
    out.build().expect("concatenation preserves validity")
}

/// Keep only the flows at the given indices (in the given order).
/// Returns the projected instance and the index map back to the original.
pub fn project(inst: &Instance, members: &[usize]) -> (Instance, Vec<usize>) {
    let mut b = InstanceBuilder::new(inst.switch.clone());
    for &i in members {
        b.push(inst.flows[i]);
    }
    (
        b.build().expect("projection preserves validity"),
        members.to_vec(),
    )
}

/// Swap the roles of input and output ports (reverse every flow).
/// Response-time metrics are invariant under this symmetry — used by
/// property tests.
pub fn transpose(inst: &Instance) -> Instance {
    let switch = Switch::new(
        inst.switch.out_caps().to_vec(),
        inst.switch.in_caps().to_vec(),
    );
    let mut b = InstanceBuilder::new(switch);
    for f in &inst.flows {
        b.push(Flow {
            src: f.dst,
            dst: f.src,
            ..*f
        });
    }
    b.build().expect("transposition preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn base() -> Instance {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 3, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(1, 2, 3);
        b.build().unwrap()
    }

    #[test]
    fn shift_moves_all_releases() {
        let s = shift_releases(&base(), 5);
        assert_eq!(s.flows[0].release, 5);
        assert_eq!(s.flows[1].release, 8);
    }

    #[test]
    fn concat_offsets_second_sequence() {
        let a = base();
        let c = concat(&a, &a, 2);
        assert_eq!(c.n(), 4);
        // a.max_release = 3, gap = 2: offset = 5.
        assert_eq!(c.flows[2].release, 5);
        assert_eq!(c.flows[3].release, 8);
    }

    #[test]
    fn concat_with_empty_first() {
        let empty = InstanceBuilder::new(Switch::uniform(2, 3, 1))
            .build()
            .unwrap();
        let c = concat(&empty, &base(), 4);
        assert_eq!(c.flows[0].release, 0);
    }

    #[test]
    fn project_keeps_selected_flows() {
        let (p, map) = project(&base(), &[1]);
        assert_eq!(p.n(), 1);
        assert_eq!(p.flows[0].src, 1);
        assert_eq!(map, vec![1]);
    }

    #[test]
    fn transpose_swaps_ports_and_caps() {
        let t = transpose(&base());
        assert_eq!(t.switch.num_inputs(), 3);
        assert_eq!(t.switch.num_outputs(), 2);
        assert_eq!(t.flows[0].src, 0);
        assert_eq!(t.flows[1].src, 2);
        assert_eq!(t.flows[1].dst, 1);
        // Involution.
        assert_eq!(transpose(&t), base());
    }

    #[test]
    #[should_panic(expected = "share a switch")]
    fn concat_rejects_mismatched_switches() {
        let a = base();
        let other = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        let _ = concat(&a, &other, 0);
    }
}
