//! Port-outage plans: declarative descriptions of switch failures.
//!
//! Datacenter ports fail and recover; a scheduler built on per-round
//! matchings adapts naturally by excluding dead ports from the waiting
//! graph. A [`FailurePlan`] is the serializable description of such an
//! outage pattern — it lives in `fss-core` so the streaming engine
//! (`fss-engine`), the simulator (`fss-sim`), and scenario files on disk
//! all share one type.

use serde::{Deserialize, Serialize};

use crate::switch::PortSide;

/// One port outage: the port is unusable during `[from, to)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// Which side of the switch.
    pub side: PortSide,
    /// Port index.
    pub port: u32,
    /// First dead round.
    pub from: u64,
    /// First live round again.
    pub to: u64,
}

/// A set of outages.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailurePlan {
    /// The outages (may overlap).
    pub outages: Vec<Outage>,
}

impl FailurePlan {
    /// Is the given port usable at round `t`?
    pub fn is_up(&self, side: PortSide, port: u32, t: u64) -> bool {
        !self
            .outages
            .iter()
            .any(|o| o.side == side && o.port == port && t >= o.from && t < o.to)
    }

    /// Latest recovery round over all outages (0 when none).
    pub fn last_recovery(&self) -> u64 {
        self.outages.iter().map(|o| o.to).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlapping_outages_compose() {
        let plan = FailurePlan {
            outages: vec![
                Outage {
                    side: PortSide::Output,
                    port: 1,
                    from: 2,
                    to: 5,
                },
                Outage {
                    side: PortSide::Output,
                    port: 1,
                    from: 4,
                    to: 8,
                },
            ],
        };
        assert!(plan.is_up(PortSide::Output, 1, 1));
        assert!(!plan.is_up(PortSide::Output, 1, 4));
        assert!(!plan.is_up(PortSide::Output, 1, 7));
        assert!(plan.is_up(PortSide::Output, 1, 8));
        assert!(plan.is_up(PortSide::Input, 1, 4), "other side unaffected");
        assert_eq!(plan.last_recovery(), 8);
    }

    #[test]
    fn empty_plan_is_always_up() {
        let plan = FailurePlan::default();
        assert!(plan.is_up(PortSide::Input, 0, 0));
        assert_eq!(plan.last_recovery(), 0);
    }
}
