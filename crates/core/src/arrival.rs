//! Streaming flow arrivals: the unit of every workload source.
//!
//! An [`Arrival`] is one unit-demand flow entering the switch — the shared
//! currency between the batch [`crate::Instance`] world and the streaming
//! `FlowSource` world (`fss-engine`), and the record type of the on-disk
//! arrival-trace format (`fss-sim`'s scenario layer). It lives in
//! `fss-core` so every layer speaks the same type without depending on the
//! engine.

use serde::{Deserialize, Serialize};

/// One flow arrival in a stream (the paper's experimental setting:
/// unit demand on a unit-capacity switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arrival {
    /// Source-chosen flow identity (instance index for batch adapters,
    /// sequence number for generators and trace replays).
    pub id: u64,
    /// Input port.
    pub src: u32,
    /// Output port.
    pub dst: u32,
    /// Release round.
    pub release: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_is_plain_data() {
        let a = Arrival {
            id: 3,
            src: 1,
            dst: 2,
            release: 7,
        };
        let b = a;
        assert_eq!(a, b);
    }
}
