//! Flows: demands between an input and an output port, with release times.

use serde::{Deserialize, Serialize};

/// Index of a flow within its [`crate::Instance`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The flow's index as a `usize`, for slice indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A flow request `e = (p, q)` with demand `d_e` and release round `r_e`.
///
/// A flow may be scheduled in any round `t >= r_e`; in the paper's integral
/// schedules it is placed entirely in a single round, completing at
/// `C_e = t + 1`, for a response time `rho_e = C_e - r_e >= 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Source (input) port index, `0..m`.
    pub src: u32,
    /// Destination (output) port index, `0..m'`.
    pub dst: u32,
    /// Demand `d_e` (units of port capacity consumed in its round).
    pub demand: u32,
    /// Release round `r_e` (0-based; the flow may run at round `r_e` or later).
    pub release: u64,
}

impl Flow {
    /// A unit-demand flow.
    pub fn unit(src: u32, dst: u32, release: u64) -> Self {
        Flow {
            src,
            dst,
            demand: 1,
            release,
        }
    }

    /// A flow with explicit demand.
    pub fn new(src: u32, dst: u32, demand: u32, release: u64) -> Self {
        Flow {
            src,
            dst,
            demand,
            release,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_flow_has_demand_one() {
        let f = Flow::unit(3, 7, 11);
        assert_eq!(f.demand, 1);
        assert_eq!((f.src, f.dst, f.release), (3, 7, 11));
    }

    #[test]
    fn flow_id_display_and_idx() {
        let id = FlowId(42);
        assert_eq!(id.idx(), 42);
        assert_eq!(id.to_string(), "f42");
    }

    #[test]
    fn flow_serde_round_trip() {
        let f = Flow::new(1, 2, 3, 4);
        let json = serde_json::to_string(&f).unwrap();
        let back: Flow = serde_json::from_str(&json).unwrap();
        assert_eq!(f, back);
    }
}
