//! Problem instances: a switch plus a set of flow requests.

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::flow::{Flow, FlowId};
use crate::switch::Switch;

/// A complete FS-ART / FS-MRT problem instance (paper §2): a capacitated
/// switch and a sequence of flows, each with demand and release round.
///
/// Invariants, enforced by [`InstanceBuilder::build`]:
/// * every flow's ports are within range;
/// * every demand is positive and at most `kappa_e = min(c_src, c_dst)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// The switch the flows are scheduled on.
    pub switch: Switch,
    /// The flow requests, indexed by [`FlowId`].
    pub flows: Vec<Flow>,
}

impl Instance {
    /// Number of flows `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.flows.len()
    }

    /// Iterate over `(FlowId, &Flow)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FlowId, &Flow)> {
        self.flows
            .iter()
            .enumerate()
            .map(|(i, f)| (FlowId(i as u32), f))
    }

    /// Largest demand `dmax` over all flows (0 for an empty instance).
    pub fn dmax(&self) -> u32 {
        self.flows.iter().map(|f| f.demand).max().unwrap_or(0)
    }

    /// Largest release round (0 for an empty instance).
    pub fn max_release(&self) -> u64 {
        self.flows.iter().map(|f| f.release).max().unwrap_or(0)
    }

    /// Total demand over all flows.
    pub fn total_demand(&self) -> u64 {
        self.flows.iter().map(|f| u64::from(f.demand)).sum()
    }

    /// Sum of demands incident on input port `p`.
    pub fn in_port_load(&self, p: u32) -> u64 {
        self.flows
            .iter()
            .filter(|f| f.src == p)
            .map(|f| u64::from(f.demand))
            .sum()
    }

    /// Sum of demands incident on output port `q`.
    pub fn out_port_load(&self, q: u32) -> u64 {
        self.flows
            .iter()
            .filter(|f| f.dst == q)
            .map(|f| u64::from(f.demand))
            .sum()
    }

    /// A crude but always-sufficient scheduling horizon: every flow can be
    /// scheduled by `max_release + ceil(max port load / min cap) + 1`
    /// rounds simply by serializing the most loaded port. Used to bound LP
    /// time horizons; algorithms are free to use tighter bounds.
    pub fn trivial_horizon(&self) -> u64 {
        let mut worst = 0u64;
        for p in 0..self.switch.num_inputs() as u32 {
            let cap = u64::from(self.switch.in_cap(p));
            let load = self.in_port_load(p);
            worst = worst.max(load.div_ceil(cap.max(1)));
        }
        for q in 0..self.switch.num_outputs() as u32 {
            let cap = u64::from(self.switch.out_cap(q));
            let load = self.out_port_load(q);
            worst = worst.max(load.div_ceil(cap.max(1)));
        }
        // Serializing the two most loaded ports after the last release always
        // fits; doubling `worst` is a safe, simple over-approximation.
        self.max_release() + 2 * worst + 1
    }

    /// True when every flow has demand 1.
    pub fn is_unit_demand(&self) -> bool {
        self.flows.iter().all(|f| f.demand == 1)
    }
}

/// Builder enforcing the model invariants of [`Instance`].
#[derive(Debug, Clone)]
pub struct InstanceBuilder {
    switch: Switch,
    flows: Vec<Flow>,
}

impl InstanceBuilder {
    /// Start building an instance on the given switch.
    pub fn new(switch: Switch) -> Self {
        InstanceBuilder {
            switch,
            flows: Vec::new(),
        }
    }

    /// Add a flow `src -> dst` with the given demand and release round.
    /// Returns the flow's id.
    pub fn flow(&mut self, src: u32, dst: u32, demand: u32, release: u64) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(Flow::new(src, dst, demand, release));
        id
    }

    /// Add a unit-demand flow.
    pub fn unit_flow(&mut self, src: u32, dst: u32, release: u64) -> FlowId {
        self.flow(src, dst, 1, release)
    }

    /// Add an already-constructed [`Flow`].
    pub fn push(&mut self, f: Flow) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(f);
        id
    }

    /// Validate all invariants and produce the instance.
    pub fn build(self) -> Result<Instance, ModelError> {
        let m = self.switch.num_inputs() as u32;
        let m_out = self.switch.num_outputs() as u32;
        for (i, f) in self.flows.iter().enumerate() {
            if f.src >= m {
                return Err(ModelError::BadInputPort {
                    flow: i,
                    port: f.src,
                    m,
                });
            }
            if f.dst >= m_out {
                return Err(ModelError::BadOutputPort {
                    flow: i,
                    port: f.dst,
                    m_out,
                });
            }
            if f.demand == 0 {
                return Err(ModelError::ZeroDemand { flow: i });
            }
            let kappa = self.switch.kappa(f.src, f.dst);
            if f.demand > kappa {
                return Err(ModelError::DemandExceedsKappa {
                    flow: i,
                    demand: f.demand,
                    kappa,
                });
            }
        }
        Ok(Instance {
            switch: self.switch,
            flows: self.flows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Instance {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 1, 2);
        b.unit_flow(1, 1, 1);
        b.build().unwrap()
    }

    #[test]
    fn builder_accepts_valid_flows() {
        let inst = tiny();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.dmax(), 1);
        assert_eq!(inst.max_release(), 2);
        assert!(inst.is_unit_demand());
    }

    #[test]
    fn builder_rejects_out_of_range_ports() {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(2, 0, 0);
        assert!(matches!(
            b.build(),
            Err(ModelError::BadInputPort { port: 2, .. })
        ));

        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 5, 0);
        assert!(matches!(
            b.build(),
            Err(ModelError::BadOutputPort { port: 5, .. })
        ));
    }

    #[test]
    fn builder_rejects_demand_above_kappa() {
        let mut b = InstanceBuilder::new(Switch::new(vec![3], vec![2]));
        b.flow(0, 0, 3, 0); // kappa = min(3,2) = 2
        assert!(matches!(
            b.build(),
            Err(ModelError::DemandExceedsKappa {
                demand: 3,
                kappa: 2,
                ..
            })
        ));
    }

    #[test]
    fn builder_rejects_zero_demand() {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        b.flow(0, 0, 0, 0);
        assert!(matches!(b.build(), Err(ModelError::ZeroDemand { flow: 0 })));
    }

    #[test]
    fn port_loads_and_total_demand() {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 4));
        b.flow(0, 0, 2, 0);
        b.flow(0, 1, 3, 0);
        b.flow(1, 1, 4, 0);
        let inst = b.build().unwrap();
        assert_eq!(inst.in_port_load(0), 5);
        assert_eq!(inst.in_port_load(1), 4);
        assert_eq!(inst.out_port_load(1), 7);
        assert_eq!(inst.total_demand(), 9);
        assert_eq!(inst.dmax(), 4);
        assert!(!inst.is_unit_demand());
    }

    #[test]
    fn trivial_horizon_is_generous_enough() {
        let inst = tiny();
        // Max port load is 2 (input 0 and output 1), max release 2.
        assert!(inst.trivial_horizon() >= inst.max_release() + 2);
    }

    #[test]
    fn instance_serde_round_trip() {
        let inst = tiny();
        let json = serde_json::to_string(&inst).unwrap();
        let back: Instance = serde_json::from_str(&json).unwrap();
        assert_eq!(inst, back);
    }
}
