#![allow(clippy::needless_range_loop)] // parallel-array index loops are clearer here
//! Schedules and pseudo-schedules.
//!
//! The paper's integral schedules place each flow entirely in a single round
//! (`sigma_{e,t} = 1` for exactly one `t >= r_e`). A [`Schedule`] stores that
//! round per flow. A [`PseudoSchedule`] has the same shape but is *allowed*
//! to overload ports — it is the intermediate object produced by the
//! iterative rounding of §3 (Lemma 3.3), which bounds the overload of any
//! time window by `O(c_p log n)` before the final conversion to a valid
//! schedule.

use serde::{Deserialize, Serialize};

use crate::flow::FlowId;
use crate::instance::Instance;

/// A scheduling round (0-based).
pub type Round = u64;

/// An integral schedule: flow `i` runs (entirely) in round `rounds[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    rounds: Vec<Round>,
}

impl Schedule {
    /// Build from a per-flow round vector.
    pub fn from_rounds(rounds: Vec<Round>) -> Self {
        Schedule { rounds }
    }

    /// The round flow `id` is scheduled in.
    #[inline]
    pub fn round_of(&self, id: FlowId) -> Round {
        self.rounds[id.idx()]
    }

    /// Number of scheduled flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True if the schedule covers no flows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The per-flow rounds as a slice.
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// Completion time of flow `id`: `C_e = t + 1` when scheduled at round `t`.
    #[inline]
    pub fn completion(&self, id: FlowId) -> u64 {
        self.rounds[id.idx()] + 1
    }

    /// Response time of flow `id` in `inst`: `rho_e = C_e - r_e`.
    #[inline]
    pub fn response(&self, inst: &Instance, id: FlowId) -> u64 {
        self.completion(id) - inst.flows[id.idx()].release
    }

    /// Makespan: one past the last used round (0 for an empty schedule).
    pub fn makespan(&self) -> u64 {
        self.rounds.iter().map(|&t| t + 1).max().unwrap_or(0)
    }

    /// Shift every flow's round later by `delta`.
    pub fn shifted(&self, delta: u64) -> Schedule {
        Schedule {
            rounds: self.rounds.iter().map(|&t| t + delta).collect(),
        }
    }
}

/// A pseudo-schedule (Remark 3.4): same shape as a [`Schedule`] but ports
/// may be overloaded. Carries helper queries for the windowed-overload
/// guarantee of Lemma 3.3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PseudoSchedule {
    rounds: Vec<Round>,
}

impl PseudoSchedule {
    /// Build from a per-flow round vector.
    pub fn from_rounds(rounds: Vec<Round>) -> Self {
        PseudoSchedule { rounds }
    }

    /// The round flow `id` is (tentatively) assigned to.
    #[inline]
    pub fn round_of(&self, id: FlowId) -> Round {
        self.rounds[id.idx()]
    }

    /// Number of assigned flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True if no flows are assigned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// The per-flow rounds as a slice.
    pub fn rounds(&self) -> &[Round] {
        &self.rounds
    }

    /// One past the last used round.
    pub fn makespan(&self) -> u64 {
        self.rounds.iter().map(|&t| t + 1).max().unwrap_or(0)
    }

    /// Total response time were this executed as-is (ignoring overload);
    /// this is the cost the iterative rounding bounds against the LP optimum.
    pub fn total_response(&self, inst: &Instance) -> u64 {
        self.rounds
            .iter()
            .zip(&inst.flows)
            .map(|(&t, f)| t + 1 - f.release)
            .sum()
    }

    /// Demand volume assigned to input port `p` within rounds `[t1, t2]`
    /// inclusive. Used to check the Lemma 3.3 overload bound.
    pub fn in_port_volume(&self, inst: &Instance, p: u32, t1: Round, t2: Round) -> u64 {
        self.rounds
            .iter()
            .zip(&inst.flows)
            .filter(|&(&t, f)| f.src == p && t >= t1 && t <= t2)
            .map(|(_, f)| u64::from(f.demand))
            .sum()
    }

    /// Demand volume assigned to output port `q` within `[t1, t2]` inclusive.
    pub fn out_port_volume(&self, inst: &Instance, q: u32, t1: Round, t2: Round) -> u64 {
        self.rounds
            .iter()
            .zip(&inst.flows)
            .filter(|&(&t, f)| f.dst == q && t >= t1 && t <= t2)
            .map(|(_, f)| u64::from(f.demand))
            .sum()
    }

    /// The worst additive overload over all ports and all windows
    /// `[t1, t2]`: `max (volume - cap * window_len)`. Lemma 3.3 bounds this
    /// by `O(c_p log n)`. Runs in `O(ports * makespan^2)` — intended for
    /// tests and diagnostics, not hot paths.
    pub fn max_window_overload(&self, inst: &Instance) -> i64 {
        let horizon = self.makespan();
        let mut worst = i64::MIN;
        let mut per_round_in = vec![vec![0u64; horizon as usize]; inst.switch.num_inputs()];
        let mut per_round_out = vec![vec![0u64; horizon as usize]; inst.switch.num_outputs()];
        for (&t, f) in self.rounds.iter().zip(&inst.flows) {
            per_round_in[f.src as usize][t as usize] += u64::from(f.demand);
            per_round_out[f.dst as usize][t as usize] += u64::from(f.demand);
        }
        let mut scan = |loads: &[u64], cap: u64| {
            for t1 in 0..loads.len() {
                let mut vol = 0u64;
                for (w, &l) in loads[t1..].iter().enumerate() {
                    vol += l;
                    let window = (w + 1) as u64;
                    worst = worst.max(vol as i64 - (cap * window) as i64);
                }
            }
        };
        for p in 0..inst.switch.num_inputs() {
            scan(&per_round_in[p], u64::from(inst.switch.in_cap(p as u32)));
        }
        for q in 0..inst.switch.num_outputs() {
            scan(&per_round_out[q], u64::from(inst.switch.out_cap(q as u32)));
        }
        if worst == i64::MIN {
            0
        } else {
            worst
        }
    }

    /// Reinterpret as a (possibly invalid) schedule; callers must validate.
    pub fn into_schedule_unchecked(self) -> Schedule {
        Schedule {
            rounds: self.rounds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::switch::Switch;

    fn inst3() -> Instance {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 1, 0);
        b.unit_flow(1, 0, 1);
        b.build().unwrap()
    }

    #[test]
    fn schedule_accessors() {
        let s = Schedule::from_rounds(vec![0, 1, 2]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.round_of(FlowId(1)), 1);
        assert_eq!(s.completion(FlowId(2)), 3);
        assert_eq!(s.makespan(), 3);
    }

    #[test]
    fn response_subtracts_release() {
        let inst = inst3();
        let s = Schedule::from_rounds(vec![0, 1, 1]);
        assert_eq!(s.response(&inst, FlowId(0)), 1);
        assert_eq!(s.response(&inst, FlowId(1)), 2);
        assert_eq!(s.response(&inst, FlowId(2)), 1); // released at 1, run at 1
    }

    #[test]
    fn shifted_moves_all_rounds() {
        let s = Schedule::from_rounds(vec![0, 2]).shifted(3);
        assert_eq!(s.rounds(), &[3, 5]);
    }

    #[test]
    fn pseudo_schedule_total_response() {
        let inst = inst3();
        let ps = PseudoSchedule::from_rounds(vec![0, 0, 1]);
        // rho = 1, 1, 1
        assert_eq!(ps.total_response(&inst), 3);
    }

    #[test]
    fn pseudo_schedule_port_volume_windows() {
        let inst = inst3();
        // Both input-0 flows rammed into round 0: overload 1 on a unit port.
        let ps = PseudoSchedule::from_rounds(vec![0, 0, 1]);
        assert_eq!(ps.in_port_volume(&inst, 0, 0, 0), 2);
        assert_eq!(ps.in_port_volume(&inst, 0, 1, 5), 0);
        assert_eq!(ps.max_window_overload(&inst), 1);
    }

    #[test]
    fn pseudo_schedule_no_overload_when_spread() {
        let inst = inst3();
        let ps = PseudoSchedule::from_rounds(vec![0, 1, 1]);
        assert_eq!(ps.max_window_overload(&inst), 0);
    }

    #[test]
    fn empty_schedule_makespan_zero() {
        assert_eq!(Schedule::from_rounds(vec![]).makespan(), 0);
        assert!(Schedule::from_rounds(vec![]).is_empty());
        assert_eq!(PseudoSchedule::from_rounds(vec![]).makespan(), 0);
    }
}
