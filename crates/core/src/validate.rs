//! Schedule feasibility validation.
//!
//! A schedule is feasible against a switch (paper §2) when:
//! 1. every flow is assigned a round (length match),
//! 2. no flow runs before its release round,
//! 3. in every round, the total demand incident on each port is at most the
//!    port's capacity.
//!
//! The capacity check takes an explicit [`Switch`] rather than using
//! `inst.switch`, because the paper's algorithms intentionally validate
//! against *augmented* switches (Theorems 1 and 3).

use std::collections::HashMap;

use crate::error::ValidationError;
use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::switch::{PortSide, Switch};

/// Check `sched` for feasibility of `inst`'s flows against `caps`.
///
/// Returns the first violation found, or `Ok(())`.
pub fn check(inst: &Instance, sched: &Schedule, caps: &Switch) -> Result<(), ValidationError> {
    if inst.n() != sched.len() {
        return Err(ValidationError::LengthMismatch {
            flows: inst.n(),
            assignments: sched.len(),
        });
    }
    for (i, (f, &t)) in inst.flows.iter().zip(sched.rounds()).enumerate() {
        if t < f.release {
            return Err(ValidationError::ScheduledBeforeRelease {
                flow: i,
                round: t,
                release: f.release,
            });
        }
    }
    // Per (port, round) loads; sparse map keeps this linear in n.
    let mut in_load: HashMap<(u32, u64), u64> = HashMap::new();
    let mut out_load: HashMap<(u32, u64), u64> = HashMap::new();
    for (f, &t) in inst.flows.iter().zip(sched.rounds()) {
        *in_load.entry((f.src, t)).or_insert(0) += u64::from(f.demand);
        *out_load.entry((f.dst, t)).or_insert(0) += u64::from(f.demand);
    }
    for (&(p, t), &load) in &in_load {
        let cap = u64::from(caps.in_cap(p));
        if load > cap {
            return Err(ValidationError::CapacityExceeded {
                side: PortSide::Input,
                port: p,
                round: t,
                load,
                capacity: cap,
            });
        }
    }
    for (&(q, t), &load) in &out_load {
        let cap = u64::from(caps.out_cap(q));
        if load > cap {
            return Err(ValidationError::CapacityExceeded {
                side: PortSide::Output,
                port: q,
                round: t,
                load,
                capacity: cap,
            });
        }
    }
    Ok(())
}

/// The smallest additive capacity augmentation `delta` such that `sched`
/// becomes feasible when every port capacity is raised by `delta`.
/// Returns 0 for already-feasible schedules. Release-time and length
/// violations are reported as errors since no augmentation fixes those.
pub fn required_augmentation(inst: &Instance, sched: &Schedule) -> Result<u64, ValidationError> {
    if inst.n() != sched.len() {
        return Err(ValidationError::LengthMismatch {
            flows: inst.n(),
            assignments: sched.len(),
        });
    }
    for (i, (f, &t)) in inst.flows.iter().zip(sched.rounds()).enumerate() {
        if t < f.release {
            return Err(ValidationError::ScheduledBeforeRelease {
                flow: i,
                round: t,
                release: f.release,
            });
        }
    }
    let mut in_load: HashMap<(u32, u64), u64> = HashMap::new();
    let mut out_load: HashMap<(u32, u64), u64> = HashMap::new();
    for (f, &t) in inst.flows.iter().zip(sched.rounds()) {
        *in_load.entry((f.src, t)).or_insert(0) += u64::from(f.demand);
        *out_load.entry((f.dst, t)).or_insert(0) += u64::from(f.demand);
    }
    let mut worst = 0u64;
    for (&(p, _), &load) in &in_load {
        worst = worst.max(load.saturating_sub(u64::from(inst.switch.in_cap(p))));
    }
    for (&(q, _), &load) in &out_load {
        worst = worst.max(load.saturating_sub(u64::from(inst.switch.out_cap(q))));
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;

    fn inst() -> Instance {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 1, 0); // shares input 0 with flow 0
        b.unit_flow(1, 1, 1); // shares output 1 with flow 1
        b.build().unwrap()
    }

    #[test]
    fn feasible_schedule_passes() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0, 1, 2]);
        assert!(check(&i, &s, &i.switch).is_ok());
    }

    #[test]
    fn input_port_conflict_detected() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0, 0, 1]);
        let err = check(&i, &s, &i.switch).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::CapacityExceeded {
                side: PortSide::Input,
                port: 0,
                round: 0,
                ..
            }
        ));
    }

    #[test]
    fn output_port_conflict_detected() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0, 1, 1]);
        let err = check(&i, &s, &i.switch).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::CapacityExceeded {
                side: PortSide::Output,
                port: 1,
                round: 1,
                ..
            }
        ));
    }

    #[test]
    fn release_violation_detected() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0, 1, 0]); // flow 2 released at 1
        assert!(matches!(
            check(&i, &s, &i.switch),
            Err(ValidationError::ScheduledBeforeRelease { flow: 2, .. })
        ));
    }

    #[test]
    fn length_mismatch_detected() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0]);
        assert!(matches!(
            check(&i, &s, &i.switch),
            Err(ValidationError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn augmented_switch_accepts_overloaded_schedule() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0, 0, 1]); // input 0 double-booked
        assert!(check(&i, &s, &i.switch).is_err());
        assert!(check(&i, &s, &i.switch.augmented(1)).is_ok());
        assert_eq!(required_augmentation(&i, &s).unwrap(), 1);
    }

    #[test]
    fn required_augmentation_zero_when_feasible() {
        let i = inst();
        let s = Schedule::from_rounds(vec![0, 1, 2]);
        assert_eq!(required_augmentation(&i, &s).unwrap(), 0);
    }
}
