//! # fss-core — the switch / flow scheduling model
//!
//! This crate defines the problem model from *Scheduling Flows on a Switch to
//! Optimize Response Times* (Jahanjou, Rajaraman, Stalfa — SPAA 2020, §2):
//!
//! * a [`Switch`] is a bipartite set of capacitated input and output ports
//!   (the "one big switch" abstraction of a datacenter network);
//! * a [`Flow`] is a demand between one input and one output port with a
//!   release round;
//! * an [`Instance`] bundles a switch with a set of flows;
//! * a [`Schedule`] assigns every flow to a single round (the paper's
//!   integral schedules place each flow entirely in one round);
//! * [`metrics`] computes response-time objectives (FS-ART, FS-MRT) and
//!   [`validate`] checks feasibility against (possibly augmented) capacities.
//!
//! All heavier machinery — LP solvers, matchings, rounding, the algorithms
//! themselves — lives in sibling crates and consumes these types.
//!
//! ```
//! use fss_core::prelude::*;
//!
//! // A 2x2 switch with unit capacities and three unit flows.
//! let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
//! b.flow(0, 0, 1, 0); // input 0 -> output 0, demand 1, released at round 0
//! b.flow(0, 1, 1, 0);
//! b.flow(1, 1, 1, 0);
//! let inst = b.build().unwrap();
//!
//! // Schedule: rounds are 0-based; flows 0 and 2 don't conflict.
//! let sched = Schedule::from_rounds(vec![0, 1, 0]);
//! assert!(validate::check(&inst, &sched, &inst.switch).is_ok());
//! let m = metrics::evaluate(&inst, &sched);
//! assert_eq!(m.total_response, 4); // rho = 1, 2, 1
//! assert_eq!(m.max_response, 2);
//! ```

#![deny(missing_docs)]

pub mod arrival;
pub mod error;
pub mod failure;
pub mod flow;
pub mod gen;
pub mod instance;
pub mod metrics;
pub mod schedule;
pub mod switch;
pub mod transform;
pub mod validate;

pub use arrival::Arrival;
pub use error::{ModelError, TraceError, ValidationError};
pub use failure::{FailurePlan, Outage};
pub use flow::{Flow, FlowId};
pub use instance::{Instance, InstanceBuilder};
pub use metrics::ResponseMetrics;
pub use schedule::{PseudoSchedule, Round, Schedule};
pub use switch::{PortSide, Switch};

/// Convenient glob import for downstream crates and examples.
pub mod prelude {
    pub use crate::arrival::Arrival;
    pub use crate::error::{ModelError, TraceError, ValidationError};
    pub use crate::failure::{FailurePlan, Outage};
    pub use crate::flow::{Flow, FlowId};
    pub use crate::instance::{Instance, InstanceBuilder};
    pub use crate::metrics::{self, ResponseMetrics};
    pub use crate::schedule::{PseudoSchedule, Round, Schedule};
    pub use crate::switch::{PortSide, Switch};
    pub use crate::validate;
}
