//! The fixed-size span event every ring slot holds.
//!
//! Events are closed spans: they are recorded once, at the moment the
//! span ends, with both endpoints already known. That keeps the hot
//! path a handful of plain stores (no open-span bookkeeping shared
//! across threads) and makes the ring slot a POD value that packs into
//! six 64-bit words — see [`crate::ring`].

/// What a span measured. The first four variants mirror
/// `fss_telemetry::Stage` *in the same order* so stage activations map
/// by index; the rest are flight-only kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Arrival ingest (batching the source, pushing releases).
    Ingest = 0,
    /// Per-port queue updates (push/pop against the sharded queues).
    QueueUpdate = 1,
    /// Matching repair / policy selection for one round.
    MatchRepair = 2,
    /// Dispatch bookkeeping (response accounting, emit callbacks).
    Dispatch = 3,
    /// A blocking channel send (backpressure wait included).
    ChanSend = 4,
    /// A blocking channel receive (idle wait included).
    ChanRecv = 5,
    /// One engine round, stamped with the `Frontier` round number.
    Round = 6,
    /// A whole serve session (client connect .. `Finish`).
    Session = 7,
    /// One bench cell execution (round = flat cell index).
    Cell = 8,
    /// A watchdog post-mortem marker written on a detected stall.
    Watchdog = 9,
}

/// Number of distinct span kinds.
pub const KIND_COUNT: usize = 10;

impl SpanKind {
    /// All kinds, in discriminant order.
    pub const ALL: [SpanKind; KIND_COUNT] = [
        SpanKind::Ingest,
        SpanKind::QueueUpdate,
        SpanKind::MatchRepair,
        SpanKind::Dispatch,
        SpanKind::ChanSend,
        SpanKind::ChanRecv,
        SpanKind::Round,
        SpanKind::Session,
        SpanKind::Cell,
        SpanKind::Watchdog,
    ];

    /// Stable lowercase name (used in the spool and Chrome export).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Ingest => "ingest",
            SpanKind::QueueUpdate => "queue_update",
            SpanKind::MatchRepair => "match_repair",
            SpanKind::Dispatch => "dispatch",
            SpanKind::ChanSend => "chan_send",
            SpanKind::ChanRecv => "chan_recv",
            SpanKind::Round => "round",
            SpanKind::Session => "session",
            SpanKind::Cell => "cell",
            SpanKind::Watchdog => "watchdog",
        }
    }

    /// Inverse of [`SpanKind::name`].
    pub fn from_name(s: &str) -> Option<SpanKind> {
        SpanKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// Decode a discriminant (ring slots store the kind as a byte).
    pub fn from_u8(v: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(v as usize).copied()
    }

    /// Chrome Trace `cat` field for this kind.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Ingest
            | SpanKind::QueueUpdate
            | SpanKind::MatchRepair
            | SpanKind::Dispatch => "stage",
            SpanKind::ChanSend | SpanKind::ChanRecv => "channel",
            SpanKind::Round => "round",
            SpanKind::Session | SpanKind::Cell => "scope",
            SpanKind::Watchdog => "watchdog",
        }
    }
}

/// One closed span. `t_start_ns`/`t_end_ns` are offsets on the
/// recorder's monotonic clock (ns since the recorder epoch); `thread`
/// is the recorder-assigned track id, `round` the engine round stamp
/// (kind-dependent: flat cell index for [`SpanKind::Cell`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Unique id (monotonic across the whole recorder).
    pub span_id: u64,
    /// Enclosing span id, `0` if none.
    pub parent: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// Round stamp for causality (see field docs).
    pub round: u64,
    /// Start, ns since the recorder epoch.
    pub t_start_ns: u64,
    /// End, ns since the recorder epoch (always `> t_start_ns`).
    pub t_end_ns: u64,
    /// Recorder-assigned thread/track id.
    pub thread: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip_and_match_discriminants() {
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(*k as u8 as usize, i);
            assert_eq!(SpanKind::from_u8(i as u8), Some(*k));
            assert_eq!(SpanKind::from_name(k.name()), Some(*k));
        }
        assert_eq!(SpanKind::from_u8(KIND_COUNT as u8), None);
        assert_eq!(SpanKind::from_name("nope"), None);
    }

    #[test]
    fn the_first_four_kinds_mirror_the_telemetry_stage_order() {
        // fss-telemetry maps Stage -> SpanKind by index; pin the order.
        assert_eq!(SpanKind::from_u8(0), Some(SpanKind::Ingest));
        assert_eq!(SpanKind::from_u8(1), Some(SpanKind::QueueUpdate));
        assert_eq!(SpanKind::from_u8(2), Some(SpanKind::MatchRepair));
        assert_eq!(SpanKind::from_u8(3), Some(SpanKind::Dispatch));
    }
}
