//! The per-thread lock-free span ring.
//!
//! Single producer (the owning thread), single logical consumer (the
//! [`crate::spool`] drain, serialized by the spool writer lock). The
//! ring keeps the **last `capacity` events** — flight-recorder
//! semantics: when the producer laps an undrained consumer the oldest
//! events are overwritten and counted as dropped, never blocking the
//! hot path.
//!
//! Slots are six relaxed `AtomicU64` words, published by a
//! release-increment of `head`. A consumer that observes `head` move
//! past `slot + capacity` while copying discards the (possibly torn)
//! copy — so every event it returns was fully written, without any
//! producer-side synchronization beyond the head increment.

use crate::event::{SpanEvent, SpanKind};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default ring capacity per thread (events). Power of two.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// One slot: `[span_id, parent, kind<<32|thread, round, t_start, t_end]`.
struct Slot {
    words: [AtomicU64; 6],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            words: [0u64; 6].map(AtomicU64::new),
        }
    }
}

/// The ring itself. Shared as `Arc<SpanRing>` between the producing
/// handle, the recorder registry, and the drain.
pub struct SpanRing {
    slots: Vec<Slot>,
    mask: u64,
    /// Total events ever pushed (next write goes to `head & mask`).
    head: AtomicU64,
    /// Consumer cursor: events `< drained` have been spooled. Advanced
    /// only under the spool writer lock.
    drained: AtomicU64,
    /// Events lost to lapping (old) or torn reads, counted by the drain.
    dropped: AtomicU64,
}

impl SpanRing {
    /// A ring holding the last `capacity` events (rounded up to a power
    /// of two, minimum 8).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(8).next_power_of_two();
        SpanRing {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost (lapped before the drain reached them).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Producer side: record one closed span. Only the owning handle
    /// may call this (single producer by construction).
    pub fn push(&self, ev: &SpanEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head & self.mask) as usize];
        let w2 = ((ev.kind as u8 as u64) << 32) | ev.thread as u64;
        slot.words[0].store(ev.span_id, Ordering::Relaxed);
        slot.words[1].store(ev.parent, Ordering::Relaxed);
        slot.words[2].store(w2, Ordering::Relaxed);
        slot.words[3].store(ev.round, Ordering::Relaxed);
        slot.words[4].store(ev.t_start_ns, Ordering::Relaxed);
        slot.words[5].store(ev.t_end_ns, Ordering::Relaxed);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Consumer side: copy out every undrained event, oldest first,
    /// advancing the cursor. Events lost to lapping (or torn because
    /// the producer lapped mid-copy) are added to `dropped` instead.
    /// Must be called by one logical consumer at a time (the spool
    /// writer lock serializes callers).
    pub fn drain(&self, out: &mut Vec<SpanEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let cursor = self.drained.load(Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        // Anything the producer already lapped is gone.
        let start = cursor.max(head.saturating_sub(cap));
        if start > cursor {
            self.dropped.fetch_add(start - cursor, Ordering::Relaxed);
        }
        for idx in start..head {
            let slot = &self.slots[(idx & self.mask) as usize];
            let w0 = slot.words[0].load(Ordering::Relaxed);
            let w1 = slot.words[1].load(Ordering::Relaxed);
            let w2 = slot.words[2].load(Ordering::Relaxed);
            let w3 = slot.words[3].load(Ordering::Relaxed);
            let w4 = slot.words[4].load(Ordering::Relaxed);
            let w5 = slot.words[5].load(Ordering::Relaxed);
            // If the producer lapped this slot while we copied, the
            // words may be torn: discard.
            let head_now = self.head.load(Ordering::Acquire);
            if head_now.saturating_sub(idx) > cap {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let kind = match SpanKind::from_u8((w2 >> 32) as u8) {
                Some(k) => k,
                None => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            out.push(SpanEvent {
                span_id: w0,
                parent: w1,
                kind,
                round: w3,
                t_start_ns: w4,
                t_end_ns: w5,
                thread: (w2 & 0xffff_ffff) as u32,
            });
        }
        self.drained.store(head, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.capacity())
            .field("pushed", &self.pushed())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> SpanEvent {
        SpanEvent {
            span_id: i,
            parent: 0,
            kind: SpanKind::Round,
            round: i,
            t_start_ns: i * 10,
            t_end_ns: i * 10 + 5,
            thread: 7,
        }
    }

    #[test]
    fn push_then_drain_round_trips_events_in_order() {
        let ring = SpanRing::new(8);
        for i in 0..5 {
            ring.push(&ev(i));
        }
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out.len(), 5);
        for (i, e) in out.iter().enumerate() {
            assert_eq!(*e, ev(i as u64));
        }
        assert_eq!(ring.dropped(), 0);
        // Second drain sees nothing new.
        out.clear();
        ring.drain(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn lapping_an_undrained_ring_keeps_the_newest_and_counts_drops() {
        let ring = SpanRing::new(8);
        for i in 0..20 {
            ring.push(&ev(i));
        }
        let mut out = Vec::new();
        ring.drain(&mut out);
        // Capacity 8: only the last 8 survive, 12 dropped.
        assert_eq!(out.len(), 8);
        assert_eq!(out[0].span_id, 12);
        assert_eq!(out[7].span_id, 19);
        assert_eq!(ring.dropped(), 12);
    }

    #[test]
    fn drain_interleaved_with_pushes_never_duplicates_or_reorders() {
        let ring = SpanRing::new(16);
        let mut seen = Vec::new();
        let mut next = 0u64;
        for chunk in [3usize, 10, 1, 16, 5] {
            for _ in 0..chunk {
                ring.push(&ev(next));
                next += 1;
            }
            ring.drain(&mut seen);
        }
        let ids: Vec<u64> = seen.iter().map(|e| e.span_id).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ids.len(), sorted.len(), "no duplicates");
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "in order");
        assert_eq!(ids.len() as u64 + ring.dropped(), next);
    }

    #[test]
    fn a_concurrent_producer_and_drain_lose_nothing_when_capacity_suffices() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(1 << 12));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..3000u64 {
                    ring.push(&ev(i));
                }
            })
        };
        let mut out = Vec::new();
        loop {
            ring.drain(&mut out);
            if out.len() == 3000 {
                break;
            }
            std::thread::yield_now();
            if producer.is_finished() && ring.pushed() == 3000 {
                ring.drain(&mut out);
                break;
            }
        }
        producer.join().unwrap();
        ring.drain(&mut out);
        assert_eq!(out.len(), 3000);
        assert_eq!(ring.dropped(), 0);
        assert!(out.windows(2).all(|w| w[0].span_id < w[1].span_id));
    }
}
