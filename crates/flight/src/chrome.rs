//! Chrome Trace Format export (loadable in `chrome://tracing` and
//! Perfetto), a structural validator for CI, and the `flight stats`
//! top-k report.
//!
//! Spans export as balanced `B`/`E` duration-event pairs on
//! `pid`/`tid` tracks with `args.round` carrying the round stamp.
//! Multiple spools merge with per-spool `pid`s and a thread-name
//! prefix (the dist coordinator passes `w<id>/`), so a whole fabric
//! run renders as one flame view grouped by worker.

use crate::event::{SpanEvent, SpanKind};
use crate::spool::Spool;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One spool to export: `(pid, thread-name prefix, spool)`.
pub struct TraceSource<'a> {
    /// Chrome `pid` for this spool's tracks.
    pub pid: u32,
    /// Prefix for thread names (`""` or `"w3/"`).
    pub prefix: String,
    /// The parsed spool.
    pub spool: &'a Spool,
}

/// Render one spool as Chrome Trace JSON.
pub fn to_chrome(spool: &Spool) -> String {
    to_chrome_merged(&[TraceSource {
        pid: 1,
        prefix: String::new(),
        spool,
    }])
}

/// Render several spools (dist workers) into one merged trace.
pub fn to_chrome_merged(sources: &[TraceSource<'_>]) -> String {
    // (ts_ns, phase_rank, tie, line): sort by timestamp; at equal ts
    // close inner spans before opening siblings (E before B), open
    // outer-before-inner and close inner-before-outer via `tie`.
    let mut events: Vec<(u64, u8, i64, String)> = Vec::new();
    for src in sources {
        for (tid, name) in &src.spool.threads {
            let line = format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":{}}}}}",
                src.pid,
                tid,
                json_str(&format!("{}{}", src.prefix, name)),
            );
            events.push((0, 0, i64::MIN, line));
        }
        // Nesting index: spans sorted by (start asc, end desc) open in
        // outer-first order.
        let mut order: Vec<&SpanEvent> = src.spool.events.iter().collect();
        order.sort_by(|a, b| {
            a.t_start_ns
                .cmp(&b.t_start_ns)
                .then(b.t_end_ns.cmp(&a.t_end_ns))
                .then(a.span_id.cmp(&b.span_id))
        });
        for (i, ev) in order.iter().enumerate() {
            let idx = i as i64;
            let b = format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"round\":{},\"sid\":{},\"parent\":{}}}}}",
                ev.kind.name(),
                ev.kind.category(),
                us(ev.t_start_ns),
                src.pid,
                ev.thread,
                ev.round,
                ev.span_id,
                ev.parent,
            );
            let e = format!(
                "{{\"ph\":\"E\",\"ts\":{},\"pid\":{},\"tid\":{}}}",
                us(ev.t_end_ns),
                src.pid,
                ev.thread,
            );
            events.push((ev.t_start_ns, 1, idx, b));
            events.push((ev.t_end_ns, 0, -idx, e));
        }
    }
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, (_, _, _, line)) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(line);
    }
    out.push_str("\n]}\n");
    out
}

/// ns → µs with 3 fractional digits (Chrome `ts` unit is µs).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Validation (the CI `flight check` gate).

/// Counts from a validated trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeCheck {
    /// Total duration events (`B`+`E`).
    pub duration_events: usize,
    /// Complete spans (balanced pairs).
    pub spans: usize,
    /// Distinct `(pid, tid)` tracks carrying spans.
    pub tracks: usize,
    /// Spans with a nonzero `args.round` tag.
    pub round_tagged: usize,
    /// Span names seen, with counts.
    pub names: BTreeMap<String, usize>,
}

/// Structurally validate a Chrome Trace JSON export: required keys on
/// every event, globally monotonic `ts`, and balanced `B`/`E` pairs
/// per track. Returns counts for further assertions.
pub fn check_chrome(json: &str) -> Result<ChromeCheck, String> {
    let c: serde::Content = serde_json::from_str::<crate::spool::RawJson>(json)
        .map_err(|e| format!("trace is not JSON: {e:?}"))?
        .0;
    let events = match &c {
        serde::Content::Map(m) => match m.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, serde::Content::Seq(s))) => s,
            _ => return Err("missing traceEvents array".into()),
        },
        serde::Content::Seq(_) => match &c {
            serde::Content::Seq(s) => s,
            _ => unreachable!(),
        },
        _ => return Err("trace must be an object or array".into()),
    };
    let mut check = ChromeCheck::default();
    let mut last_ts = f64::MIN;
    // (pid, tid) -> stack of open span names.
    let mut open: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let m = match ev {
            serde::Content::Map(m) => m,
            _ => return Err(format!("event {i}: not an object")),
        };
        let field = |k: &str| m.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let ph = match field("ph") {
            Some(serde::Content::Str(s)) => s.clone(),
            _ => return Err(format!("event {i}: missing ph")),
        };
        let pid = num(field("pid")).ok_or_else(|| format!("event {i}: missing pid"))? as u64;
        let tid = num(field("tid")).ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        match ph.as_str() {
            "M" => continue,
            "B" | "E" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
        check.duration_events += 1;
        let ts = num(field("ts")).ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < last_ts {
            return Err(format!(
                "event {i}: ts {ts} < previous {last_ts} (not monotonic)"
            ));
        }
        last_ts = ts;
        let stack = open.entry((pid, tid)).or_default();
        if ph == "B" {
            let name = match field("name") {
                Some(serde::Content::Str(s)) => s.clone(),
                _ => return Err(format!("event {i}: B without name")),
            };
            if let Some(serde::Content::Map(args)) = field("args") {
                if args.iter().any(|(k, _)| k == "round") {
                    check.round_tagged += 1;
                }
            }
            *check.names.entry(name.clone()).or_default() += 1;
            stack.push(name);
        } else {
            if stack.pop().is_none() {
                return Err(format!(
                    "event {i}: E without matching B on pid={pid} tid={tid}"
                ));
            }
            check.spans += 1;
        }
    }
    for ((pid, tid), stack) in &open {
        if !stack.is_empty() {
            return Err(format!(
                "unbalanced: {} spans left open on pid={pid} tid={tid} ({})",
                stack.len(),
                stack.join(", ")
            ));
        }
    }
    check.tracks = open.len();
    Ok(check)
}

fn num(c: Option<&serde::Content>) -> Option<f64> {
    match c {
        Some(serde::Content::U64(v)) => Some(*v as f64),
        Some(serde::Content::I64(v)) => Some(*v as f64),
        Some(serde::Content::F64(v)) => Some(*v),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// `flight stats`: top-k slowest spans per kind and per round.

/// The `flight stats` report.
#[derive(Debug, Clone)]
pub struct StatsReport {
    /// Per kind: `(kind, count, total_ns, top spans)`.
    pub kinds: Vec<(SpanKind, u64, u64, Vec<SpanEvent>)>,
    /// Slowest rounds: `(round, total ns across Round spans)`.
    pub slow_rounds: Vec<(u64, u64)>,
    /// Watchdog markers found.
    pub watchdogs: usize,
    /// Total events and drops.
    pub events: usize,
    /// Events lost (ring laps + spool truncation).
    pub dropped: u64,
}

/// Compute top-`k` slowest spans per kind and the `k` slowest rounds.
pub fn stats(spool: &Spool, k: usize) -> StatsReport {
    let mut kinds = Vec::new();
    for kind in SpanKind::ALL {
        let mut spans: Vec<SpanEvent> = spool
            .events
            .iter()
            .filter(|e| e.kind == kind)
            .copied()
            .collect();
        if spans.is_empty() {
            continue;
        }
        let count = spans.len() as u64;
        let total: u64 = spans.iter().map(|e| e.t_end_ns - e.t_start_ns).sum();
        spans.sort_by_key(|e| std::cmp::Reverse(e.t_end_ns - e.t_start_ns));
        spans.truncate(k);
        kinds.push((kind, count, total, spans));
    }
    let mut per_round: BTreeMap<u64, u64> = BTreeMap::new();
    for e in spool.events.iter().filter(|e| e.kind == SpanKind::Round) {
        *per_round.entry(e.round).or_default() += e.t_end_ns - e.t_start_ns;
    }
    let mut slow_rounds: Vec<(u64, u64)> = per_round.into_iter().collect();
    slow_rounds.sort_by_key(|(_, ns)| std::cmp::Reverse(*ns));
    slow_rounds.truncate(k);
    StatsReport {
        kinds,
        slow_rounds,
        watchdogs: spool.watchdogs.len(),
        events: spool.events.len(),
        dropped: spool.dropped + spool.truncated,
    }
}

/// Render a [`StatsReport`] as the `flight stats` text output.
pub fn render_stats(spool: &Spool, report: &StatsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} events, {} threads, {} watchdog dump(s), {} dropped",
        report.events,
        spool.threads.len(),
        report.watchdogs,
        report.dropped
    );
    for (kind, count, total, top) in &report.kinds {
        let _ = writeln!(
            out,
            "{:<12} n={:<8} total={:>12}ns mean={:>9}ns",
            kind.name(),
            count,
            total,
            total / count.max(&1)
        );
        for ev in top {
            let _ = writeln!(
                out,
                "    {:>10}ns  round={:<8} thread={} ({})",
                ev.t_end_ns - ev.t_start_ns,
                ev.round,
                ev.thread,
                spool.thread_name(ev.thread)
            );
        }
    }
    if !report.slow_rounds.is_empty() {
        let _ = writeln!(out, "slowest rounds:");
        for (round, ns) in &report.slow_rounds {
            let _ = writeln!(out, "    round {round:<10} {ns}ns");
        }
    }
    for w in &spool.watchdogs {
        let _ = writeln!(
            out,
            "watchdog: stalled at progress={} (t={}ns); channel sends/recvs: {}",
            w.progress,
            w.at_ns,
            w.depths
                .iter()
                .map(|(n, s, r)| format!("{n}={s}/{r}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;
    use crate::spool::{read_spool, TraceSink};
    use std::time::Instant;

    fn sample_spool(name: &str) -> Spool {
        let rec = FlightRecorder::new();
        let mut main = rec.handle("match");
        let mut side = main.sibling("shard0");
        for t in 1..=3u64 {
            main.round_start(t);
            let t0 = Instant::now();
            main.record(SpanKind::MatchRepair, t0, Instant::now());
            side.round_tag(t);
            side.record(SpanKind::QueueUpdate, t0, Instant::now());
            let ch = side.chan("x");
            side.wait(crate::recorder::WaitDir::Recv, ch, || ());
        }
        main.round_finish();
        let dir = std::env::temp_dir().join(format!("fss-flight-chrome-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.spool.jsonl"));
        let sink = TraceSink::create(&rec, &path, 10_000).unwrap();
        sink.finish();
        read_spool(&path).unwrap()
    }

    #[test]
    fn export_validates_and_counts_round_tagged_spans_on_two_tracks() {
        let spool = sample_spool("validate");
        let json = to_chrome(&spool);
        let check = check_chrome(&json).expect("valid chrome trace");
        assert_eq!(check.duration_events, check.spans * 2, "balanced B/E");
        assert_eq!(check.spans, spool.events.len());
        assert!(check.tracks >= 2, "spans on >= 2 thread tracks");
        assert_eq!(
            check.round_tagged, check.spans,
            "every B carries args.round"
        );
        assert!(check.names.contains_key("match_repair"));
        assert!(check.names.contains_key("queue_update"));
        assert!(check.names.contains_key("chan_recv"));
        assert!(check.names.contains_key("round"));
    }

    #[test]
    fn merged_export_prefixes_tracks_and_separates_pids() {
        let a = sample_spool("merge-a");
        let b = sample_spool("merge-b");
        let json = to_chrome_merged(&[
            TraceSource {
                pid: 1,
                prefix: "w0/".into(),
                spool: &a,
            },
            TraceSource {
                pid: 2,
                prefix: "w1/".into(),
                spool: &b,
            },
        ]);
        check_chrome(&json).expect("merged trace validates");
        assert!(json.contains("\"w0/match\""));
        assert!(json.contains("\"w1/match\""));
        assert!(json.contains("\"pid\":2"));
    }

    #[test]
    fn check_rejects_unbalanced_and_nonmonotonic_traces() {
        let unbalanced = r#"{"traceEvents":[
            {"name":"a","cat":"x","ph":"B","ts":1,"pid":1,"tid":1,"args":{"round":0}}
        ]}"#;
        assert!(check_chrome(unbalanced).unwrap_err().contains("unbalanced"));
        let nonmono = r#"{"traceEvents":[
            {"name":"a","cat":"x","ph":"B","ts":5,"pid":1,"tid":1},
            {"ph":"E","ts":4,"pid":1,"tid":1}
        ]}"#;
        assert!(check_chrome(nonmono).unwrap_err().contains("monotonic"));
        let stray_end = r#"{"traceEvents":[{"ph":"E","ts":4,"pid":1,"tid":1}]}"#;
        assert!(check_chrome(stray_end)
            .unwrap_err()
            .contains("E without matching B"));
    }

    #[test]
    fn stats_reports_top_k_and_slow_rounds() {
        let spool = sample_spool("stats");
        let report = stats(&spool, 2);
        assert!(report
            .kinds
            .iter()
            .any(|(k, ..)| *k == SpanKind::MatchRepair));
        for (_, count, _, top) in &report.kinds {
            assert!(top.len() as u64 <= 2.min(*count));
            // Top spans are sorted slowest-first.
            assert!(top
                .windows(2)
                .all(|w| w[0].t_end_ns - w[0].t_start_ns >= w[1].t_end_ns - w[1].t_start_ns));
        }
        assert_eq!(report.slow_rounds.len(), 2.min(report.slow_rounds.len()));
        let text = render_stats(&spool, &report);
        assert!(text.contains("match_repair"));
        assert!(text.contains("slowest rounds"));
    }
}
