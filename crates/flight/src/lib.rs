//! # fss-flight — span tracing, flight recorder, and stall watchdog
//!
//! Aggregate telemetry (`fss-telemetry`) says *how much* time each
//! stage took; this crate says *when* — which stages overlapped, where
//! a pipelined run waited on a channel, what the process was doing
//! when it hung. The design follows the timely-dataflow logging idea:
//! every worker thread appends fixed-size events to its own lock-free
//! ring, a sink drains the rings into a bounded on-disk spool, and an
//! exporter renders the spool as Chrome Trace Format JSON (loadable in
//! `chrome://tracing` / Perfetto) with one track per thread.
//!
//! The pieces:
//!
//! - [`SpanEvent`]/[`SpanKind`] — the fixed-size closed-span record
//!   (`span_id, parent, kind, round, t_start_ns, t_end_ns, thread`).
//! - [`SpanRing`] — per-thread single-producer ring keeping the last N
//!   events (lapping drops the oldest, never blocks the hot path).
//! - [`FlightRecorder`]/[`FlightHandle`] — the registry + the cheap
//!   per-thread handle. A disabled handle is one branch per
//!   instrumentation point: schedules are bit-identical traced vs not
//!   and the disabled path is measured-zero overhead (the
//!   `EngineTelemetry` contract).
//! - [`TraceSink`]/[`read_spool`] — bounded JSONL spool, crash-readable.
//! - [`to_chrome`]/[`check_chrome`]/[`stats`] — export, the CI
//!   validator (required keys, monotonic ts, balanced B/E pairs), and
//!   the `flight stats` top-k report.
//! - [`StallWatchdog`] — monitor thread that dumps a post-mortem (last
//!   spans + channel depths) when the round counter stops advancing
//!   within a budget.
//!
//! Surfaced as `--flight-trace OUT.json` on `stream`/`bench`/`serve`
//! and the `flowsched flight` subcommand.

#![deny(missing_docs)]

mod chrome;
mod event;
mod recorder;
mod ring;
mod spool;
mod watchdog;

pub use chrome::{
    check_chrome, render_stats, stats, to_chrome, to_chrome_merged, ChromeCheck, StatsReport,
    TraceSource,
};
pub use event::{SpanEvent, SpanKind, KIND_COUNT};
pub use recorder::{ChanId, FlightHandle, FlightRecorder, StallInject, WaitDir};
pub use ring::{SpanRing, DEFAULT_RING_CAPACITY};
pub use spool::{
    read_spool, SinkDrainer, Spool, SpoolSummary, SpoolWriter, TraceSink, WatchdogNote,
    DEFAULT_SPOOL_MAX_EVENTS,
};
pub use watchdog::{StallWatchdog, DEFAULT_STALL_BUDGET};

/// Environment variable arming the deliberate match-stage stall for
/// the watchdog e2e (`<round>:<millis>`, e.g. `FSS_FLIGHT_FAIL_STALL=50:1500`).
pub const FAIL_STALL_ENV: &str = "FSS_FLIGHT_FAIL_STALL";

/// Parse [`FAIL_STALL_ENV`] if set (the CLI arms handles with it).
pub fn stall_inject_from_env() -> Result<Option<StallInject>, String> {
    match std::env::var(FAIL_STALL_ENV) {
        Ok(v) if !v.trim().is_empty() => StallInject::parse(&v)
            .map(Some)
            .map_err(|e| format!("{FAIL_STALL_ENV}: {e}")),
        _ => Ok(None),
    }
}
