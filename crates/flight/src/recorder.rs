//! The recorder: a registry of per-thread rings on one monotonic
//! clock, plus the cheap per-thread [`FlightHandle`] the hot paths
//! hold.
//!
//! The contract mirrors `fss_telemetry::EngineTelemetry`: a *disabled*
//! handle costs exactly one branch per instrumentation point and never
//! observes the clock, so schedules are bit-identical traced vs not and
//! the disabled path is measured-zero overhead (pinned by the criterion
//! overhead group and the engine differential suites).

use crate::event::{SpanEvent, SpanKind};
use crate::ring::{SpanRing, DEFAULT_RING_CAPACITY};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A registered channel whose send/recv counts approximate its depth
/// (`sends - recvs`) in watchdog dumps. `ChanId(0)` is the null id a
/// disabled handle returns; real ids are `index + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanId(pub(crate) u32);

impl ChanId {
    /// The null channel id (returned by disabled handles; ignored).
    pub const NONE: ChanId = ChanId(0);
}

pub(crate) struct ChanStat {
    pub(crate) name: String,
    pub(crate) sends: AtomicU64,
    pub(crate) recvs: AtomicU64,
}

pub(crate) struct RegisteredRing {
    pub(crate) name: String,
    pub(crate) thread: u32,
    pub(crate) ring: Arc<SpanRing>,
}

pub(crate) struct RecorderShared {
    pub(crate) epoch: Instant,
    pub(crate) rings: Mutex<Vec<RegisteredRing>>,
    pub(crate) chans: Mutex<Vec<Arc<ChanStat>>>,
    next_span: AtomicU64,
    next_thread: AtomicU32,
    /// Bumped every completed round by every handle; the watchdog
    /// watches this cell for forward progress.
    pub(crate) round_progress: AtomicU64,
    ring_capacity: usize,
}

/// The shared recorder. Clone freely; all clones see the same rings,
/// clock, and channel stats.
#[derive(Clone)]
pub struct FlightRecorder {
    pub(crate) shared: Arc<RecorderShared>,
}

impl FlightRecorder {
    /// A recorder whose epoch is *now*, with the default per-thread
    /// ring capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder with an explicit per-thread ring capacity (rounded up
    /// to a power of two; tests use tiny rings to exercise lapping).
    pub fn with_ring_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            shared: Arc::new(RecorderShared {
                epoch: Instant::now(),
                rings: Mutex::new(Vec::new()),
                chans: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(1),
                next_thread: AtomicU32::new(0),
                round_progress: AtomicU64::new(0),
                ring_capacity: capacity,
            }),
        }
    }

    /// Register a new per-thread ring and hand back its producing
    /// handle. `name` becomes the thread track label in exports.
    pub fn handle(&self, name: &str) -> FlightHandle {
        let ring = Arc::new(SpanRing::new(self.shared.ring_capacity));
        let thread = self.shared.next_thread.fetch_add(1, Ordering::Relaxed);
        self.shared.rings.lock().unwrap().push(RegisteredRing {
            name: name.to_string(),
            thread,
            ring: Arc::clone(&ring),
        });
        FlightHandle {
            inner: Some(Box::new(HandleInner {
                shared: Arc::clone(&self.shared),
                ring,
                thread,
                cur_round: NO_ROUND,
                last_round_mark: None,
                session: 0,
                stall: None,
            })),
        }
    }

    /// Allocate a span id without recording anything (for long-lived
    /// spans such as serve sessions, recorded when they close).
    pub fn alloc_span_id(&self) -> u64 {
        self.shared.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the recorder epoch.
    pub fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    /// The round-progress cell value (total rounds completed across all
    /// handles) — what the stall watchdog polls.
    pub fn round_progress(&self) -> u64 {
        self.shared.round_progress.load(Ordering::Relaxed)
    }

    /// Snapshot of registered channels: `(name, sends, recvs)`. The
    /// difference approximates in-flight depth.
    pub fn chan_depths(&self) -> Vec<(String, u64, u64)> {
        self.shared
            .chans
            .lock()
            .unwrap()
            .iter()
            .map(|c| {
                (
                    c.name.clone(),
                    c.sends.load(Ordering::Relaxed),
                    c.recvs.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Total events pushed and dropped across all rings.
    pub fn totals(&self) -> (u64, u64) {
        let rings = self.shared.rings.lock().unwrap();
        let mut pushed = 0;
        let mut dropped = 0;
        for r in rings.iter() {
            pushed += r.ring.pushed();
            dropped += r.ring.dropped();
        }
        (pushed, dropped)
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (pushed, dropped) = self.totals();
        f.debug_struct("FlightRecorder")
            .field("threads", &self.shared.rings.lock().unwrap().len())
            .field("pushed", &pushed)
            .field("dropped", &dropped)
            .finish()
    }
}

/// Sentinel: no round observed yet on this handle.
const NO_ROUND: u64 = u64::MAX;

/// A deliberate stall injected into the match stage (CI watchdog e2e;
/// parsed from `FSS_FLIGHT_FAIL_STALL=<round>:<millis>`).
#[derive(Debug, Clone, Copy)]
pub struct StallInject {
    /// Stall once the handle's round tag reaches this round.
    pub round: u64,
    /// How long to sleep.
    pub millis: u64,
}

impl StallInject {
    /// Parse `"<round>:<millis>"` (the `FSS_FLIGHT_FAIL_STALL` value).
    pub fn parse(s: &str) -> Result<StallInject, String> {
        let (r, ms) = s
            .split_once(':')
            .ok_or_else(|| format!("expected <round>:<millis>, got {s:?}"))?;
        Ok(StallInject {
            round: r
                .trim()
                .parse()
                .map_err(|e| format!("bad stall round {r:?}: {e}"))?,
            millis: ms
                .trim()
                .parse()
                .map_err(|e| format!("bad stall millis {ms:?}: {e}"))?,
        })
    }
}

struct HandleInner {
    shared: Arc<RecorderShared>,
    ring: Arc<SpanRing>,
    thread: u32,
    /// Current round tag for spans recorded on this thread.
    cur_round: u64,
    /// ns mark of the previous round boundary (round-span start).
    last_round_mark: Option<u64>,
    /// Parent span id for round spans (serve session), 0 = none.
    session: u64,
    stall: Option<StallState>,
}

struct StallState {
    inject: StallInject,
    fired: bool,
}

/// Which direction a channel wait is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitDir {
    /// A blocking send (backpressure).
    Send,
    /// A blocking receive (starvation / idle).
    Recv,
}

/// The per-thread producing handle. Disabled handles (the default) are
/// a `None` and every method is a single branch.
pub struct FlightHandle {
    inner: Option<Box<HandleInner>>,
}

impl FlightHandle {
    /// The zero-cost disabled handle.
    pub fn disabled() -> FlightHandle {
        FlightHandle { inner: None }
    }

    /// Is recording live?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A new handle on the same recorder with its own ring — for worker
    /// threads (`name` labels the track). Disabled handles beget
    /// disabled siblings.
    pub fn sibling(&self, name: &str) -> FlightHandle {
        match &self.inner {
            None => FlightHandle::disabled(),
            Some(h) => FlightRecorder {
                shared: Arc::clone(&h.shared),
            }
            .handle(name),
        }
    }

    /// Record a closed span of `kind` over `[start, end]`, tagged with
    /// the handle's current round. Returns the span id (0 if disabled).
    #[inline]
    pub fn record(&mut self, kind: SpanKind, start: Instant, end: Instant) -> u64 {
        match &mut self.inner {
            None => 0,
            Some(h) => {
                let round = if h.cur_round == NO_ROUND {
                    0
                } else {
                    h.cur_round
                };
                h.record_at(kind, 0, round, start, end)
            }
        }
    }

    /// Record a closed span with explicit parent and round (serve
    /// sessions, bench cells). Returns the span id (0 if disabled).
    pub fn record_with(
        &mut self,
        kind: SpanKind,
        parent: u64,
        round: u64,
        start: Instant,
        end: Instant,
    ) -> u64 {
        match &mut self.inner {
            None => 0,
            Some(h) => h.record_at(kind, parent, round, start, end),
        }
    }

    /// Mark the start of round `t` on this thread: closes the previous
    /// round's span (tagged with *its* round number), sets the tag for
    /// subsequent stage/wait spans, and bumps the watchdog progress
    /// cell.
    #[inline]
    pub fn round_start(&mut self, t: u64) {
        if let Some(h) = &mut self.inner {
            let now = h.now_ns();
            if let (Some(mark), prev) = (h.last_round_mark, h.cur_round) {
                if prev != NO_ROUND {
                    h.record_ns(SpanKind::Round, h.session, prev, mark, now);
                }
            }
            h.cur_round = t;
            h.last_round_mark = Some(now);
            h.shared.round_progress.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Set the round tag only (ingest/dispatch threads learn rounds
    /// from batch stamps; they don't drive progress or round spans).
    #[inline]
    pub fn round_tag(&mut self, t: u64) {
        if let Some(h) = &mut self.inner {
            h.cur_round = t;
        }
    }

    /// Close the final round span (call once when a drive finishes).
    pub fn round_finish(&mut self) {
        if let Some(h) = &mut self.inner {
            if let (Some(mark), prev) = (h.last_round_mark, h.cur_round) {
                if prev != NO_ROUND {
                    let now = h.now_ns();
                    h.record_ns(SpanKind::Round, h.session, prev, mark, now);
                }
            }
            h.last_round_mark = None;
            h.cur_round = NO_ROUND;
        }
    }

    /// Parent future round spans under `span_id` (a serve session).
    pub fn set_session(&mut self, span_id: u64) {
        if let Some(h) = &mut self.inner {
            h.session = span_id;
        }
    }

    /// Register a channel for depth accounting in watchdog dumps.
    /// Disabled handles return [`ChanId::NONE`].
    pub fn chan(&mut self, name: &str) -> ChanId {
        match &self.inner {
            None => ChanId::NONE,
            Some(h) => {
                let mut chans = h.shared.chans.lock().unwrap();
                chans.push(Arc::new(ChanStat {
                    name: name.to_string(),
                    sends: AtomicU64::new(0),
                    recvs: AtomicU64::new(0),
                }));
                ChanId(chans.len() as u32)
            }
        }
    }

    /// Time a blocking channel operation: runs `f`, records a
    /// `ChanSend`/`ChanRecv` span tagged with the current round, and
    /// bumps the channel's depth counter. One branch when disabled.
    #[inline]
    pub fn wait<R>(&mut self, dir: WaitDir, chan: ChanId, f: impl FnOnce() -> R) -> R {
        match &mut self.inner {
            None => f(),
            Some(h) => {
                let t0 = Instant::now();
                let r = f();
                let t1 = Instant::now();
                let kind = match dir {
                    WaitDir::Send => SpanKind::ChanSend,
                    WaitDir::Recv => SpanKind::ChanRecv,
                };
                let round = if h.cur_round == NO_ROUND {
                    0
                } else {
                    h.cur_round
                };
                h.record_at(kind, 0, round, t0, t1);
                if chan.0 != 0 {
                    let chans = h.shared.chans.lock().unwrap();
                    if let Some(c) = chans.get((chan.0 - 1) as usize) {
                        match dir {
                            WaitDir::Send => c.sends.fetch_add(1, Ordering::Relaxed),
                            WaitDir::Recv => c.recvs.fetch_add(1, Ordering::Relaxed),
                        };
                    }
                }
                r
            }
        }
    }

    /// Arm the deliberate match-stage stall (CI watchdog e2e).
    pub fn set_stall_inject(&mut self, inject: StallInject) {
        if let Some(h) = &mut self.inner {
            h.stall = Some(StallState {
                inject,
                fired: false,
            });
        }
    }

    /// Called by the match stage: sleeps once when the armed stall's
    /// round is reached. A no-op unless a stall was armed.
    #[inline]
    pub fn maybe_stall(&mut self) {
        if let Some(h) = &mut self.inner {
            if let Some(s) = &mut h.stall {
                if !s.fired && h.cur_round != NO_ROUND && h.cur_round >= s.inject.round {
                    s.fired = true;
                    std::thread::sleep(Duration::from_millis(s.inject.millis));
                }
            }
        }
    }

    /// The recorder this handle records into (None if disabled).
    pub fn recorder(&self) -> Option<FlightRecorder> {
        self.inner.as_ref().map(|h| FlightRecorder {
            shared: Arc::clone(&h.shared),
        })
    }
}

impl HandleInner {
    #[inline]
    fn now_ns(&self) -> u64 {
        self.shared.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn record_at(
        &mut self,
        kind: SpanKind,
        parent: u64,
        round: u64,
        start: Instant,
        end: Instant,
    ) -> u64 {
        let t0 = start
            .saturating_duration_since(self.shared.epoch)
            .as_nanos() as u64;
        let t1 = end.saturating_duration_since(self.shared.epoch).as_nanos() as u64;
        self.record_ns(kind, parent, round, t0, t1)
    }

    fn record_ns(&self, kind: SpanKind, parent: u64, round: u64, t0: u64, t1: u64) -> u64 {
        let span_id = self.shared.next_span.fetch_add(1, Ordering::Relaxed);
        self.ring.push(&SpanEvent {
            span_id,
            parent,
            kind,
            round,
            // Zero-duration spans would emit an E that sorts before its
            // own B; give every span at least 1 ns.
            t_start_ns: t0,
            t_end_ns: t1.max(t0 + 1),
            thread: self.thread,
        });
        span_id
    }
}

impl std::fmt::Debug for FlightHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("FlightHandle(disabled)"),
            Some(h) => write!(f, "FlightHandle(thread={})", h.thread),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(rec: &FlightRecorder) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for r in rec.shared.rings.lock().unwrap().iter() {
            r.ring.drain(&mut out);
        }
        out
    }

    #[test]
    fn a_disabled_handle_records_nothing_and_returns_values() {
        let mut h = FlightHandle::disabled();
        assert!(!h.is_enabled());
        assert_eq!(
            h.record(SpanKind::Ingest, Instant::now(), Instant::now()),
            0
        );
        assert_eq!(h.chan("x"), ChanId::NONE);
        let v = h.wait(WaitDir::Recv, ChanId::NONE, || 42);
        assert_eq!(v, 42);
        h.round_start(3);
        h.round_finish();
        h.maybe_stall();
        assert!(!h.sibling("s").is_enabled());
    }

    #[test]
    fn round_start_closes_the_previous_round_span_with_its_own_tag() {
        let rec = FlightRecorder::new();
        let mut h = rec.handle("main");
        h.round_start(5);
        let t0 = Instant::now();
        h.record(SpanKind::MatchRepair, t0, Instant::now());
        h.round_start(6);
        h.round_finish();
        let evs = drain_all(&rec);
        let rounds: Vec<&SpanEvent> = evs.iter().filter(|e| e.kind == SpanKind::Round).collect();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].round, 5);
        assert_eq!(rounds[1].round, 6);
        let stage = evs
            .iter()
            .find(|e| e.kind == SpanKind::MatchRepair)
            .unwrap();
        assert_eq!(stage.round, 5, "stage spans carry the open round tag");
        assert_eq!(rec.round_progress(), 2);
    }

    #[test]
    fn siblings_get_distinct_threads_and_wait_updates_chan_depths() {
        let rec = FlightRecorder::new();
        let mut a = rec.handle("a");
        let mut b = a.sibling("b");
        let ch = b.chan("a->b");
        b.wait(WaitDir::Recv, ch, || ());
        a.wait(WaitDir::Send, ch, || ());
        let evs = drain_all(&rec);
        let threads: std::collections::BTreeSet<u32> = evs.iter().map(|e| e.thread).collect();
        assert_eq!(threads.len(), 2);
        let depths = rec.chan_depths();
        assert_eq!(depths.len(), 1);
        assert_eq!(depths[0], ("a->b".to_string(), 1, 1));
    }

    #[test]
    fn stall_inject_parses_and_fires_once() {
        let s = StallInject::parse("12:1").unwrap();
        assert_eq!((s.round, s.millis), (12, 1));
        assert!(StallInject::parse("12").is_err());
        assert!(StallInject::parse("x:1").is_err());

        let rec = FlightRecorder::new();
        let mut h = rec.handle("m");
        h.set_stall_inject(s);
        h.round_start(11);
        let t = Instant::now();
        h.maybe_stall(); // below target round: no sleep
        assert!(t.elapsed() < Duration::from_millis(1));
        h.round_start(12);
        let t = Instant::now();
        h.maybe_stall();
        assert!(t.elapsed() >= Duration::from_millis(1));
        let t = Instant::now();
        h.maybe_stall(); // fires once
        assert!(t.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn every_span_has_nonzero_duration_and_unique_id() {
        let rec = FlightRecorder::new();
        let mut h = rec.handle("m");
        let now = Instant::now();
        for _ in 0..10 {
            h.record(SpanKind::Dispatch, now, now); // zero-duration input
        }
        let evs = drain_all(&rec);
        assert_eq!(evs.len(), 10);
        let mut ids: Vec<u64> = evs.iter().map(|e| e.span_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        assert!(evs.iter().all(|e| e.t_end_ns > e.t_start_ns));
    }
}
