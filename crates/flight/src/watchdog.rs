//! The stall watchdog: a monitor thread that notices when the round
//! counter stops advancing within a budget, drains the last window of
//! spans plus per-channel depth counters into the spool as a
//! post-mortem, and notifies the embedder (serve bumps its `Stalled`
//! metric) — turning "the soak hung" into an artifact on disk.

use crate::recorder::FlightRecorder;
use crate::spool::TraceSink;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default stall budget when none is configured.
pub const DEFAULT_STALL_BUDGET: Duration = Duration::from_secs(10);

/// Guard for the monitor thread; stops and joins on drop.
pub struct StallWatchdog {
    stop: Arc<AtomicBool>,
    stalls: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StallWatchdog {
    /// Spawn a monitor over `recorder`'s round-progress cell. If the
    /// cell does not advance for `budget`, the watchdog drains every
    /// ring through `sink`, appends a watchdog marker with channel
    /// depths, and calls `on_stall(progress)`. It re-arms when
    /// progress resumes, so one run can capture several distinct
    /// stalls (each dumped once).
    pub fn spawn(
        recorder: &FlightRecorder,
        sink: &TraceSink,
        budget: Duration,
        on_stall: impl Fn(u64) + Send + 'static,
    ) -> StallWatchdog {
        let stop = Arc::new(AtomicBool::new(false));
        let stalls = Arc::new(AtomicU64::new(0));
        let recorder = recorder.clone();
        let sink = sink.clone();
        let flag = Arc::clone(&stop);
        let stall_count = Arc::clone(&stalls);
        let budget = budget.max(Duration::from_millis(10));
        let handle = std::thread::spawn(move || {
            let poll = (budget / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
            let mut last_progress = recorder.round_progress();
            let mut last_change = Instant::now();
            let mut dumped = false;
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(poll);
                let progress = recorder.round_progress();
                if progress != last_progress {
                    last_progress = progress;
                    last_change = Instant::now();
                    dumped = false;
                    continue;
                }
                // No rounds yet: the engine hasn't started; don't cry
                // stall before the first round completes.
                if progress == 0 || dumped || last_change.elapsed() < budget {
                    continue;
                }
                dumped = true;
                stall_count.fetch_add(1, Ordering::Relaxed);
                let depths = recorder.chan_depths();
                {
                    let writer = sink.writer();
                    let mut w = writer.lock().unwrap();
                    w.drain_from(&recorder);
                    w.note_watchdog(recorder.now_ns(), progress, &depths);
                }
                on_stall(progress);
            }
        });
        StallWatchdog {
            stop,
            stalls,
            handle: Some(handle),
        }
    }

    /// Stalls detected so far.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Stop and join the monitor, returning the stall count.
    pub fn finish(mut self) -> u64 {
        self.join();
        self.stalls()
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for StallWatchdog {
    fn drop(&mut self) {
        self.join();
    }
}

impl std::fmt::Debug for StallWatchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StallWatchdog(stalls={})", self.stalls())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;
    use crate::spool::read_spool;
    use std::sync::Mutex;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("fss-flight-wd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}.spool.jsonl"))
    }

    #[test]
    fn a_stalled_round_counter_produces_a_post_mortem_dump() {
        let rec = FlightRecorder::new();
        let mut h = rec.handle("match");
        let ch = h.chan("m->d");
        let path = tmp("stall");
        let sink = TraceSink::create(&rec, &path, 10_000).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let wd = StallWatchdog::spawn(&rec, &sink, Duration::from_millis(40), move |p| {
            seen2.lock().unwrap().push(p);
        });

        // Two rounds of progress, then silence.
        h.round_start(1);
        h.wait(crate::recorder::WaitDir::Send, ch, || ());
        h.round_start(2);
        std::thread::sleep(Duration::from_millis(400));
        let stalls = wd.finish();
        assert_eq!(stalls, 1, "dumps once per stall, not once per poll");
        assert_eq!(seen.lock().unwrap().as_slice(), &[2]);

        sink.finish();
        let spool = read_spool(&path).unwrap();
        assert_eq!(spool.watchdogs.len(), 1);
        assert_eq!(spool.watchdogs[0].progress, 2);
        assert_eq!(spool.watchdogs[0].depths, vec![("m->d".to_string(), 1, 0)]);
        assert!(
            spool.events.iter().any(|e| e.kind == SpanKind::Round),
            "the dump carries the spans recorded before the stall"
        );
    }

    #[test]
    fn steady_progress_never_trips_the_watchdog() {
        let rec = FlightRecorder::new();
        let mut h = rec.handle("m");
        let path = tmp("steady");
        let sink = TraceSink::create(&rec, &path, 10_000).unwrap();
        let wd = StallWatchdog::spawn(&rec, &sink, Duration::from_millis(60), |_| {});
        for t in 1..=20u64 {
            h.round_start(t);
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(wd.finish(), 0);
    }

    #[test]
    fn an_idle_engine_that_never_rounds_is_not_a_stall() {
        let rec = FlightRecorder::new();
        let _h = rec.handle("m");
        let path = tmp("idle");
        let sink = TraceSink::create(&rec, &path, 10_000).unwrap();
        let wd = StallWatchdog::spawn(&rec, &sink, Duration::from_millis(20), |_| {});
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(wd.finish(), 0);
    }
}
