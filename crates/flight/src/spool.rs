//! The bounded on-disk spool: a JSONL file the [`TraceSink`] drains
//! rings into, readable after a crash (every line is self-contained
//! and the writer flushes on every drain).
//!
//! Line shapes:
//!
//! ```text
//! {"fss_flight_spool":1}                                   header
//! {"meta":"thread","tid":0,"name":"match"}                 track label
//! {"sid":7,"par":0,"k":"ingest","r":3,"ts":120,"dur":45,"tid":0}
//! {"meta":"watchdog","at_ns":..,"progress":..,"depths":[["a->b",5,3]]}
//! {"meta":"dropped","tid":0,"count":12}                    ring losses
//! {"meta":"truncated","lost":9}                            spool bound
//! ```
//!
//! `ts`/`dur` are nanoseconds on the recorder clock. The spool is
//! bounded by a maximum event count: once full, further events are
//! counted (`truncated`) but not written, so a runaway run can't fill
//! the disk.

use crate::event::{SpanEvent, SpanKind};
use crate::recorder::FlightRecorder;
use std::collections::HashSet;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Default bound on spooled events (~100 bytes/line → ~200 MB worst
/// case; far above any CI run, far below a full disk).
pub const DEFAULT_SPOOL_MAX_EVENTS: u64 = 2_000_000;

/// The append side of the spool. One per sink, shared behind a mutex
/// between the periodic drainer and the watchdog.
pub struct SpoolWriter {
    out: BufWriter<File>,
    path: PathBuf,
    max_events: u64,
    written: u64,
    lost: u64,
    announced: HashSet<u32>,
    scratch: Vec<SpanEvent>,
}

impl SpoolWriter {
    fn create(path: &Path, max_events: u64) -> std::io::Result<SpoolWriter> {
        let file = File::create(path)?;
        let mut w = SpoolWriter {
            out: BufWriter::new(file),
            path: path.to_path_buf(),
            max_events,
            written: 0,
            lost: 0,
            announced: HashSet::new(),
            scratch: Vec::new(),
        };
        writeln!(w.out, "{{\"fss_flight_spool\":1}}")?;
        Ok(w)
    }

    /// Where the spool lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Events written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    fn write_event(&mut self, ev: &SpanEvent) {
        if self.written >= self.max_events {
            self.lost += 1;
            return;
        }
        self.written += 1;
        let _ = writeln!(
            self.out,
            "{{\"sid\":{},\"par\":{},\"k\":\"{}\",\"r\":{},\"ts\":{},\"dur\":{},\"tid\":{}}}",
            ev.span_id,
            ev.parent,
            ev.kind.name(),
            ev.round,
            ev.t_start_ns,
            ev.t_end_ns - ev.t_start_ns,
            ev.thread,
        );
    }

    /// Drain every ring registered on `recorder` into the spool,
    /// announcing new threads, then flush so the file is crash-readable.
    pub fn drain_from(&mut self, recorder: &FlightRecorder) {
        let rings = recorder.shared.rings.lock().unwrap();
        for r in rings.iter() {
            if self.announced.insert(r.thread) {
                let _ = writeln!(
                    self.out,
                    "{{\"meta\":\"thread\",\"tid\":{},\"name\":{}}}",
                    r.thread,
                    json_str(&r.name),
                );
            }
            self.scratch.clear();
            r.ring.drain(&mut self.scratch);
            // Move events out of the borrow of scratch before writing.
            let events = std::mem::take(&mut self.scratch);
            for ev in &events {
                self.write_event(ev);
            }
            self.scratch = events;
        }
        drop(rings);
        let _ = self.out.flush();
    }

    /// Append a watchdog post-mortem marker: the stalled progress
    /// value and the per-channel send/recv counts (depth ≈ diff).
    pub fn note_watchdog(&mut self, at_ns: u64, progress: u64, depths: &[(String, u64, u64)]) {
        let mut d = String::new();
        for (i, (name, s, r)) in depths.iter().enumerate() {
            if i > 0 {
                d.push(',');
            }
            d.push_str(&format!("[{},{s},{r}]", json_str(name)));
        }
        let _ = writeln!(
            self.out,
            "{{\"meta\":\"watchdog\",\"at_ns\":{at_ns},\"progress\":{progress},\"depths\":[{d}]}}",
        );
        let _ = self.out.flush();
    }

    /// Write the closing accounting (ring drops, spool truncation) and
    /// flush.
    pub fn finalize(&mut self, recorder: &FlightRecorder) {
        let rings = recorder.shared.rings.lock().unwrap();
        for r in rings.iter() {
            let c = r.ring.dropped();
            if c > 0 {
                let _ = writeln!(
                    self.out,
                    "{{\"meta\":\"dropped\",\"tid\":{},\"count\":{c}}}",
                    r.thread
                );
            }
        }
        drop(rings);
        if self.lost > 0 {
            let _ = writeln!(
                self.out,
                "{{\"meta\":\"truncated\",\"lost\":{}}}",
                self.lost
            );
        }
        let _ = self.out.flush();
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The sink: owns the spool writer, drains on demand or on a cadence.
/// Cloning shares the same writer and recorder.
#[derive(Clone)]
pub struct TraceSink {
    recorder: FlightRecorder,
    writer: Arc<Mutex<SpoolWriter>>,
}

/// Final spool accounting returned by [`TraceSink::finish`].
#[derive(Debug, Clone)]
pub struct SpoolSummary {
    /// Spool file path.
    pub path: PathBuf,
    /// Events written to the spool.
    pub events: u64,
    /// Events lost: lapped in rings + truncated at the spool bound.
    pub dropped: u64,
}

impl TraceSink {
    /// Create a spool at `path` bounded to `max_events`.
    pub fn create(
        recorder: &FlightRecorder,
        path: &Path,
        max_events: u64,
    ) -> std::io::Result<TraceSink> {
        Ok(TraceSink {
            recorder: recorder.clone(),
            writer: Arc::new(Mutex::new(SpoolWriter::create(path, max_events)?)),
        })
    }

    /// The shared writer (the watchdog locks it to dump post-mortems).
    pub fn writer(&self) -> Arc<Mutex<SpoolWriter>> {
        Arc::clone(&self.writer)
    }

    /// The recorder this sink drains.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Drain all rings into the spool now.
    pub fn drain(&self) {
        self.writer.lock().unwrap().drain_from(&self.recorder);
    }

    /// Start a background drainer on `period`. Stop it with
    /// [`SinkDrainer::stop`] before calling [`TraceSink::finish`].
    pub fn spawn_drainer(&self, period: Duration) -> SinkDrainer {
        let stop = Arc::new(AtomicBool::new(false));
        let sink = self.clone();
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(period.min(Duration::from_millis(50)));
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                sink.drain();
            }
        });
        SinkDrainer {
            stop,
            handle: Some(handle),
        }
    }

    /// Final drain + closing accounting; returns where the spool lives
    /// and what it holds.
    pub fn finish(&self) -> SpoolSummary {
        let mut w = self.writer.lock().unwrap();
        w.drain_from(&self.recorder);
        w.finalize(&self.recorder);
        let (_, ring_dropped) = self.recorder.totals();
        SpoolSummary {
            path: w.path.clone(),
            events: w.written,
            dropped: ring_dropped + w.lost,
        }
    }
}

impl std::fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TraceSink")
    }
}

/// Guard for the background drainer thread.
pub struct SinkDrainer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl SinkDrainer {
    /// Stop and join the drainer.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for SinkDrainer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Reading a spool back.

/// A watchdog marker read back from a spool.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogNote {
    /// Recorder-clock time of the dump.
    pub at_ns: u64,
    /// The round-progress value that stopped advancing.
    pub progress: u64,
    /// Per-channel `(name, sends, recvs)` at dump time.
    pub depths: Vec<(String, u64, u64)>,
}

/// A fully parsed spool.
#[derive(Debug, Clone, Default)]
pub struct Spool {
    /// Track labels: `(tid, name)`.
    pub threads: Vec<(u32, String)>,
    /// Every spooled span, file order.
    pub events: Vec<SpanEvent>,
    /// Watchdog post-mortem markers.
    pub watchdogs: Vec<WatchdogNote>,
    /// Events lost in rings (sum of `dropped` metas).
    pub dropped: u64,
    /// Events lost at the spool bound.
    pub truncated: u64,
}

impl Spool {
    /// Label for a tid (falls back to `thread<N>`).
    pub fn thread_name(&self, tid: u32) -> String {
        self.threads
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| format!("thread{tid}"))
    }
}

/// Parse a spool file. Unknown lines and unknown meta kinds are
/// skipped (same tolerant-read discipline as the dist wire protocol),
/// so newer spools load under older readers.
pub fn read_spool(path: &Path) -> Result<Spool, String> {
    let file = File::open(path).map_err(|e| format!("open spool {}: {e}", path.display()))?;
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        Some(Ok(l)) => l,
        _ => return Err(format!("{}: empty spool", path.display())),
    };
    let hc = parse_line(&header).ok_or_else(|| format!("{}: bad header", path.display()))?;
    if get_u64(&hc, "fss_flight_spool").is_none() {
        return Err(format!("{}: not a flight spool", path.display()));
    }
    let mut spool = Spool::default();
    for line in lines {
        let line = match line {
            Ok(l) => l,
            Err(e) => return Err(format!("{}: read: {e}", path.display())),
        };
        if line.trim().is_empty() {
            continue;
        }
        let c = match parse_line(&line) {
            Some(c) => c,
            None => continue, // torn tail line after a crash: skip
        };
        if let Some(meta) = get_str(&c, "meta") {
            match meta.as_str() {
                "thread" => {
                    if let (Some(tid), Some(name)) = (get_u64(&c, "tid"), get_str(&c, "name")) {
                        spool.threads.push((tid as u32, name));
                    }
                }
                "dropped" => spool.dropped += get_u64(&c, "count").unwrap_or(0),
                "truncated" => spool.truncated += get_u64(&c, "lost").unwrap_or(0),
                "watchdog" => {
                    let mut depths = Vec::new();
                    if let Some(serde::Content::Seq(ds)) = get(&c, "depths") {
                        for d in ds {
                            if let serde::Content::Seq(t) = d {
                                if t.len() == 3 {
                                    if let (serde::Content::Str(n), Some(s), Some(r)) =
                                        (&t[0], content_u64(&t[1]), content_u64(&t[2]))
                                    {
                                        depths.push((n.clone(), s, r));
                                    }
                                }
                            }
                        }
                    }
                    spool.watchdogs.push(WatchdogNote {
                        at_ns: get_u64(&c, "at_ns").unwrap_or(0),
                        progress: get_u64(&c, "progress").unwrap_or(0),
                        depths,
                    });
                }
                _ => {}
            }
            continue;
        }
        let kind = match get_str(&c, "k").and_then(|k| SpanKind::from_name(&k)) {
            Some(k) => k,
            None => continue,
        };
        let ts = get_u64(&c, "ts").unwrap_or(0);
        spool.events.push(SpanEvent {
            span_id: get_u64(&c, "sid").unwrap_or(0),
            parent: get_u64(&c, "par").unwrap_or(0),
            kind,
            round: get_u64(&c, "r").unwrap_or(0),
            t_start_ns: ts,
            t_end_ns: ts + get_u64(&c, "dur").unwrap_or(1).max(1),
            thread: get_u64(&c, "tid").unwrap_or(0) as u32,
        });
    }
    Ok(spool)
}

/// Wrapper that deserializes to the raw [`serde::Content`] tree (the
/// shim's `Content` has no blanket `Deserialize` impl).
pub(crate) struct RawJson(pub(crate) serde::Content);

impl serde::Deserialize for RawJson {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        Ok(RawJson(c.clone()))
    }
}

fn parse_line(line: &str) -> Option<serde::Content> {
    serde_json::from_str::<RawJson>(line.trim())
        .ok()
        .map(|r| r.0)
}

fn get<'a>(c: &'a serde::Content, key: &str) -> Option<&'a serde::Content> {
    match c {
        serde::Content::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn content_u64(c: &serde::Content) -> Option<u64> {
    match c {
        serde::Content::U64(v) => Some(*v),
        serde::Content::I64(v) if *v >= 0 => Some(*v as u64),
        serde::Content::F64(v) if *v >= 0.0 => Some(*v as u64),
        _ => None,
    }
}

fn get_u64(c: &serde::Content, key: &str) -> Option<u64> {
    get(c, key).and_then(content_u64)
}

fn get_str(c: &serde::Content, key: &str) -> Option<String> {
    match get(c, key) {
        Some(serde::Content::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;
    use std::time::Instant;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("fss-flight-spool-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("spool.jsonl")
    }

    #[test]
    fn spool_round_trips_events_threads_and_watchdog_notes() {
        let rec = FlightRecorder::new();
        let mut main = rec.handle("match");
        let mut side = main.sibling("shard \"0\"\n"); // hostile name
        main.round_start(1);
        let t0 = Instant::now();
        main.record(SpanKind::MatchRepair, t0, Instant::now());
        side.record(SpanKind::QueueUpdate, t0, Instant::now());
        main.round_finish();

        let path = tmp("roundtrip");
        let sink = TraceSink::create(&rec, &path, 1000).unwrap();
        sink.drain();
        sink.writer()
            .lock()
            .unwrap()
            .note_watchdog(123, 7, &[("a->b".into(), 5, 3)]);
        let summary = sink.finish();
        assert_eq!(summary.dropped, 0);
        assert!(summary.events >= 3);

        let spool = read_spool(&path).unwrap();
        assert_eq!(spool.threads.len(), 2);
        assert_eq!(spool.thread_name(0), "match");
        assert!(spool.thread_name(1).contains("shard"));
        assert_eq!(spool.events.len() as u64, summary.events);
        assert!(spool
            .events
            .iter()
            .any(|e| e.kind == SpanKind::Round && e.round == 1));
        assert_eq!(spool.watchdogs.len(), 1);
        assert_eq!(spool.watchdogs[0].progress, 7);
        assert_eq!(spool.watchdogs[0].depths, vec![("a->b".to_string(), 5, 3)]);
        assert_eq!(spool.dropped + spool.truncated, 0);
    }

    #[test]
    fn the_spool_bound_truncates_and_reports_losses() {
        let rec = FlightRecorder::new();
        let mut h = rec.handle("m");
        let now = Instant::now();
        for _ in 0..50 {
            h.record(SpanKind::Dispatch, now, now);
        }
        let path = tmp("bound");
        let sink = TraceSink::create(&rec, &path, 10).unwrap();
        let summary = sink.finish();
        assert_eq!(summary.events, 10);
        assert_eq!(summary.dropped, 40);
        let spool = read_spool(&path).unwrap();
        assert_eq!(spool.events.len(), 10);
        assert_eq!(spool.truncated, 40);
    }

    #[test]
    fn a_torn_tail_line_is_skipped_not_fatal() {
        let rec = FlightRecorder::new();
        let mut h = rec.handle("m");
        let now = Instant::now();
        h.record(SpanKind::Ingest, now, now);
        let path = tmp("torn");
        let sink = TraceSink::create(&rec, &path, 100).unwrap();
        sink.finish();
        // Simulate a crash mid-write.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        write!(f, "{{\"sid\":9,\"par\":0,\"k\":\"inge").unwrap();
        let spool = read_spool(&path).unwrap();
        assert_eq!(spool.events.len(), 1);
    }
}
