//! Differential property tests for the pipelined multi-core engine:
//! `run_stream_cores` / `run_failures_cores` must reproduce the
//! sequential drives **round-for-round** — the exact `on_dispatch`
//! sequence and `StreamStats`, not merely equal aggregates — at every
//! cores level, for every §5 policy, with and without failure plans,
//! with and without telemetry, and with and without the flight
//! recorder. Parallelism changes wall time, never results; tracing
//! observes runs, never steers them.

use fss_core::prelude::*;
use fss_engine::{
    run_failures_cores, run_stream_cores, BuiltinPolicy, EngineMode, EngineTelemetry, FlowSource,
    InstanceSource,
};
use fss_online::{FifoGreedy, MaxCard, MaxWeight, MinRTime, OnlinePolicy};
use fss_telemetry::FlightRecorder;
use proptest::prelude::*;

/// Strategy: a unit-demand instance on an `m x m` unit switch with
/// bursty conflicting arrivals (the regime where policies disagree
/// most — and where pipeline stage boundaries see the most traffic).
fn unit_instance() -> impl Strategy<Value = Instance> {
    (2usize..=6, 1usize..=40, 0u64..12).prop_flat_map(|(m, n, spread)| {
        let flow = (0..m as u32, 0..m as u32, 0u64..=spread);
        proptest::collection::vec(flow, n).prop_map(move |flows| {
            let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
            for (s, d, r) in flows {
                b.unit_flow(s, d, r);
            }
            b.build().expect("generated instance is valid")
        })
    })
}

/// Strategy: an instance plus an arbitrary outage plan over its ports.
fn instance_and_plan() -> impl Strategy<Value = (Instance, FailurePlan)> {
    (
        unit_instance(),
        proptest::collection::vec((0u32..2, 0u32..6, 0u64..15, 1u64..12), 0..4),
    )
        .prop_map(|(inst, outages)| {
            let m = inst.switch.num_inputs() as u32;
            let plan = FailurePlan {
                outages: outages
                    .into_iter()
                    .map(|(side, port, from, len)| Outage {
                        side: if side == 0 {
                            PortSide::Input
                        } else {
                            PortSide::Output
                        },
                        port: port % m,
                        from,
                        to: from + len,
                    })
                    .collect(),
            };
            (inst, plan)
        })
}

type Run = (fss_engine::StreamStats, Vec<(u64, u64, u64)>);

/// Drive `inst` through the pipelined engine at `cores`, capturing the
/// full dispatch schedule.
fn stream_at(inst: &Instance, mode: EngineMode, cores: usize, tele: &mut EngineTelemetry) -> Run {
    let mut schedule = Vec::new();
    let stats = run_stream_cores(
        InstanceSource::new(inst),
        mode,
        cores,
        tele,
        |id, rel, t| schedule.push((id, rel, t)),
    );
    (stats, schedule)
}

/// Same, through the failure drive with a fresh policy instance.
fn failures_at(
    inst: &Instance,
    kind: BuiltinPolicy,
    plan: &FailurePlan,
    cores: usize,
    tele: &mut EngineTelemetry,
) -> Run {
    let mut policy: Box<dyn OnlinePolicy + Send> = match kind {
        BuiltinPolicy::MaxCard => Box::new(MaxCard::default()),
        BuiltinPolicy::MinRTime => Box::new(MinRTime::default()),
        BuiltinPolicy::MaxWeight => Box::new(MaxWeight::default()),
        BuiltinPolicy::FifoGreedy => Box::new(FifoGreedy::default()),
    };
    let mut schedule = Vec::new();
    let stats = run_failures_cores(
        InstanceSource::new(inst),
        policy.as_mut(),
        plan,
        cores,
        tele,
        |id, rel, t| schedule.push((id, rel, t)),
    );
    (stats, schedule)
}

const POLICIES: [BuiltinPolicy; 4] = [
    BuiltinPolicy::MaxCard,
    BuiltinPolicy::MinRTime,
    BuiltinPolicy::MaxWeight,
    BuiltinPolicy::FifoGreedy,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: every cores level reproduces the
    /// sequential schedule bit-for-bit, for every §5 policy and the
    /// incremental mode.
    #[test]
    fn pipelined_equals_sequential_for_every_policy(inst in unit_instance()) {
        let modes = POLICIES
            .iter()
            .map(|&p| EngineMode::Exact(p))
            .chain([EngineMode::Incremental]);
        for mode in modes {
            let mut off = EngineTelemetry::disabled();
            let base = stream_at(&inst, mode, 1, &mut off);
            for cores in [2usize, 4] {
                let got = stream_at(&inst, mode, cores, &mut off);
                prop_assert_eq!(
                    &got, &base,
                    "mode {:?} diverged at {} cores", mode, cores
                );
            }
        }
    }

    /// Under port outages the pipelined failure drive must still match
    /// the sequential one, per policy, at every cores level.
    #[test]
    fn pipelined_failures_equal_sequential((inst, plan) in instance_and_plan()) {
        for kind in POLICIES {
            let mut off = EngineTelemetry::disabled();
            let base = failures_at(&inst, kind, &plan, 1, &mut off);
            for cores in [2usize, 4] {
                let got = failures_at(&inst, kind, &plan, cores, &mut off);
                prop_assert_eq!(
                    &got, &base,
                    "policy {} + outages diverged at {} cores", kind.name(), cores
                );
            }
        }
    }

    /// Telemetry observes, never steers: enabling it changes neither
    /// the schedule nor the stats, sequential or pipelined.
    #[test]
    fn telemetry_never_steers_the_pipeline(inst in unit_instance()) {
        for mode in [EngineMode::Incremental, EngineMode::Exact(BuiltinPolicy::MaxWeight)] {
            let mut off = EngineTelemetry::disabled();
            let base = stream_at(&inst, mode, 1, &mut off);
            for cores in [2usize, 4] {
                let mut on = EngineTelemetry::enabled();
                let got = stream_at(&inst, mode, cores, &mut on);
                prop_assert_eq!(
                    &got, &base,
                    "telemetry steered mode {:?} at {} cores", mode, cores
                );
            }
        }
    }

    /// The flight recorder observes, never steers: with span tracing
    /// armed, every §5 policy (and the incremental mode) produces a
    /// bit-identical schedule at 1/2/4 cores — and actually records
    /// spans, so the comparison is not vacuous.
    #[test]
    fn flight_tracing_never_steers_the_pipeline(inst in unit_instance()) {
        let modes = POLICIES
            .iter()
            .map(|&p| EngineMode::Exact(p))
            .chain([EngineMode::Incremental]);
        for mode in modes {
            let mut off = EngineTelemetry::disabled();
            let base = stream_at(&inst, mode, 1, &mut off);
            for cores in [1usize, 2, 4] {
                let recorder = FlightRecorder::new();
                let mut on = EngineTelemetry::disabled()
                    .with_flight(recorder.handle("differential"));
                let got = stream_at(&inst, mode, cores, &mut on);
                prop_assert_eq!(
                    &got, &base,
                    "flight tracing steered mode {:?} at {} cores", mode, cores
                );
                let (recorded, _) = recorder.totals();
                prop_assert!(
                    recorded > 0,
                    "no spans recorded for mode {:?} at {} cores", mode, cores
                );
            }
        }
    }

    /// Same under port outages: the traced failure drive matches the
    /// untraced sequential one per policy, at every cores level.
    #[test]
    fn flight_tracing_never_steers_under_failures((inst, plan) in instance_and_plan()) {
        for kind in POLICIES {
            let mut off = EngineTelemetry::disabled();
            let base = failures_at(&inst, kind, &plan, 1, &mut off);
            for cores in [1usize, 2, 4] {
                let recorder = FlightRecorder::new();
                let mut on = EngineTelemetry::disabled()
                    .with_flight(recorder.handle("differential"));
                let got = failures_at(&inst, kind, &plan, cores, &mut on);
                prop_assert_eq!(
                    &got, &base,
                    "flight tracing steered policy {} + outages at {} cores",
                    kind.name(), cores
                );
            }
        }
    }
}

/// A deterministic dense instance whose arrival stream straddles the
/// pipeline's ingest batch boundary (1024 arrivals/batch) *mid-round*:
/// rounds hold 100 arrivals each, so batch 0 ends inside round 10 and
/// the ingest stage must hold that round open across the chunk seam.
fn chunk_straddling_instance(m: usize, flows: usize, per_round: usize) -> Instance {
    let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
    for i in 0..flows {
        let src = (i % m) as u32;
        let dst = ((i * 7 + i / m) % m) as u32;
        b.unit_flow(src, dst, (i / per_round) as u64);
    }
    b.build().expect("dense instance is valid")
}

/// Regression: arrivals straddling the ingest chunk boundary (and the
/// rounds spanning it) must not split a round across batches — every
/// mode, every stage layout.
#[test]
fn chunk_boundary_round_straddle_is_seamless() {
    let inst = chunk_straddling_instance(6, 2200, 100);
    let source_len = InstanceSource::new(&inst).len_hint();
    for mode in [
        EngineMode::Incremental,
        EngineMode::Exact(BuiltinPolicy::MaxCard),
        EngineMode::Exact(BuiltinPolicy::MinRTime),
        EngineMode::Exact(BuiltinPolicy::MaxWeight),
        EngineMode::Exact(BuiltinPolicy::FifoGreedy),
    ] {
        let mut off = EngineTelemetry::disabled();
        let base = stream_at(&inst, mode, 1, &mut off);
        assert_eq!(base.0.arrived, 2200, "source len {source_len:?}");
        assert_eq!(base.0.arrived, base.0.dispatched, "stream must drain");
        for cores in [2usize, 3, 4, 6] {
            let got = stream_at(&inst, mode, cores, &mut off);
            assert_eq!(got, base, "mode {mode:?} split a round at {cores} cores");
        }
    }
}
