//! Differential property tests: the engine's exact mode must reproduce
//! the legacy `fss_online::run_policy` loop **round-for-round** — equal
//! `Schedule`s, not merely equal metrics — for every policy kind, on
//! arbitrary unit instances. The incremental mode must dispatch a maximum
//! matching of its waiting graph every round.

use fss_core::prelude::*;
use fss_engine::{run_builtin, run_incremental, run_policy, BuiltinPolicy};
use fss_matching::{max_cardinality_matching, BipartiteGraph};
use fss_online::{AgedMaxWeight, FifoGreedy, MaxCard, MaxWeight, MinRTime, RandomMatching};
use proptest::prelude::*;

/// Strategy: a unit-demand instance on an `m x m` unit switch with
/// bursty conflicting arrivals (the regime where policies disagree most).
fn unit_instance() -> impl Strategy<Value = Instance> {
    (2usize..=6, 1usize..=40, 0u64..12).prop_flat_map(|(m, n, spread)| {
        let flow = (0..m as u32, 0..m as u32, 0u64..=spread);
        proptest::collection::vec(flow, n).prop_map(move |flows| {
            let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
            for (s, d, r) in flows {
                b.unit_flow(s, d, r);
            }
            b.build().expect("generated instance is valid")
        })
    })
}

fn legacy(inst: &Instance, kind: BuiltinPolicy) -> Schedule {
    match kind {
        BuiltinPolicy::MaxCard => fss_online::run_policy(inst, &mut MaxCard),
        BuiltinPolicy::MinRTime => fss_online::run_policy(inst, &mut MinRTime),
        BuiltinPolicy::MaxWeight => fss_online::run_policy(inst, &mut MaxWeight),
        BuiltinPolicy::FifoGreedy => fss_online::run_policy(inst, &mut FifoGreedy),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline differential property: engine ≡ legacy, per policy,
    /// per flow, per round.
    #[test]
    fn engine_schedules_equal_legacy_for_every_policy(inst in unit_instance()) {
        for kind in [
            BuiltinPolicy::MaxCard,
            BuiltinPolicy::MinRTime,
            BuiltinPolicy::MaxWeight,
            BuiltinPolicy::FifoGreedy,
        ] {
            let engine = run_builtin(&inst, kind);
            let reference = legacy(&inst, kind);
            prop_assert_eq!(
                engine.rounds(), reference.rounds(),
                "policy {} diverged from the legacy loop", kind.name()
            );
        }
    }

    /// Stateful / randomized extension policies run through the generic
    /// engine path must also match the legacy loop (same policy code over
    /// the mirrored waiting state).
    #[test]
    fn engine_matches_legacy_for_extension_policies(inst in unit_instance()) {
        let e1 = run_policy(&inst, &mut AgedMaxWeight::new(1.5));
        let l1 = fss_online::run_policy(&inst, &mut AgedMaxWeight::new(1.5));
        prop_assert_eq!(e1, l1);
        let e2 = run_policy(&inst, &mut RandomMatching::new(7));
        let l2 = fss_online::run_policy(&inst, &mut RandomMatching::new(7));
        prop_assert_eq!(e2, l2);
    }

    /// The incremental matcher's defining property, replayed from the
    /// schedule: every round's dispatch set is a *maximum* matching of
    /// that round's waiting graph, and the schedule is feasible.
    #[test]
    fn incremental_mode_is_maximum_every_round(inst in unit_instance()) {
        let sched = run_incremental(&inst);
        prop_assert!(validate::check(&inst, &sched, &inst.switch).is_ok());
        let m = inst.switch.num_inputs();
        for t in 0..sched.makespan() {
            let mut g = BipartiteGraph::new(m, m);
            let mut dispatched = 0usize;
            let mut any = false;
            for (i, f) in inst.flows.iter().enumerate() {
                let run = sched.rounds()[i];
                if f.release <= t && run >= t {
                    g.add_edge(f.src, f.dst);
                    any = true;
                }
                if run == t {
                    dispatched += 1;
                }
            }
            if any {
                prop_assert_eq!(dispatched, max_cardinality_matching(&g).len(),
                    "round {} dispatch is not maximum", t);
            }
        }
    }
}
