//! Differential property tests: the engine's exact mode must reproduce
//! the legacy `fss_online::run_policy` loop **round-for-round** — equal
//! `Schedule`s, not merely equal metrics — for every policy kind, on
//! arbitrary unit instances. The incremental mode must dispatch a maximum
//! matching of its waiting graph every round.

use fss_core::prelude::*;
use fss_engine::{run_builtin, run_incremental, run_policy, BuiltinPolicy, InstanceSource};
use fss_matching::{max_cardinality_matching, max_weight_matching, total_weight, BipartiteGraph};
use fss_online::weighted::GAMMA_DENOM;
use fss_online::{
    AgedMaxWeight, FifoGreedy, MaxCard, MaxWeight, MinRTime, OnlinePolicy, QueueState,
    RandomMatching, WeightModel,
};
use proptest::prelude::*;

/// Strategy: a unit-demand instance on an `m x m` unit switch with
/// bursty conflicting arrivals (the regime where policies disagree most).
fn unit_instance() -> impl Strategy<Value = Instance> {
    (2usize..=6, 1usize..=40, 0u64..12).prop_flat_map(|(m, n, spread)| {
        let flow = (0..m as u32, 0..m as u32, 0u64..=spread);
        proptest::collection::vec(flow, n).prop_map(move |flows| {
            let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
            for (s, d, r) in flows {
                b.unit_flow(s, d, r);
            }
            b.build().expect("generated instance is valid")
        })
    })
}

/// Strategy: an instance plus an arbitrary outage plan over its ports.
fn instance_and_plan() -> impl Strategy<Value = (Instance, FailurePlan)> {
    (
        unit_instance(),
        proptest::collection::vec((0u32..2, 0u32..6, 0u64..15, 1u64..12), 0..4),
    )
        .prop_map(|(inst, outages)| {
            let m = inst.switch.num_inputs() as u32;
            let plan = FailurePlan {
                outages: outages
                    .into_iter()
                    .map(|(side, port, from, len)| Outage {
                        side: if side == 0 {
                            PortSide::Input
                        } else {
                            PortSide::Output
                        },
                        port: port % m,
                        from,
                        to: from + len,
                    })
                    .collect(),
            };
            (inst, plan)
        })
}

/// Wraps an incremental weighted policy and cross-checks every round's
/// selection against the batch Hungarian oracle on the same waiting
/// graph: the selection must be a vertex-disjoint matching whose total
/// weight (under the policy's integer weight model) equals the
/// from-scratch optimum.
struct OracleChecked {
    inner: Box<dyn OnlinePolicy>,
    model: WeightModel,
    rounds_checked: u64,
}

impl OnlinePolicy for OracleChecked {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
        let sel = self.inner.choose(state);
        let scale = (state.m_in.min(state.m_out) + 1) as i64;
        let in_q = state.in_queue_sizes();
        let out_q = state.out_queue_sizes();
        let weight_of = |k: usize| -> i64 {
            let w = &state.waiting[k];
            let age = (state.round - w.release) as i64;
            let q = i64::from(in_q[w.src as usize]) + i64::from(out_q[w.dst as usize]);
            match self.model {
                WeightModel::MinRTime => age * scale + 1,
                WeightModel::MaxWeight => q,
                WeightModel::AgedMaxWeight { gamma_q } => (q + 1) * GAMMA_DENOM + gamma_q * age,
            }
        };
        // Feasibility: vertex-disjoint within the selection.
        let mut used_in = vec![false; state.m_in];
        let mut used_out = vec![false; state.m_out];
        for &k in &sel {
            let w = &state.waiting[k];
            assert!(
                !used_in[w.src as usize] && !used_out[w.dst as usize],
                "round {}: selection is not a matching",
                state.round
            );
            used_in[w.src as usize] = true;
            used_out[w.dst as usize] = true;
        }
        // Weight parity with the batch Hungarian.
        let g = state.graph();
        let weights: Vec<f64> = (0..state.waiting.len())
            .map(|k| weight_of(k) as f64)
            .collect();
        let best = total_weight(&max_weight_matching(&g, &weights), &weights) as i64;
        let got: i64 = sel.iter().map(|&k| weight_of(k)).sum();
        assert_eq!(
            got, best,
            "round {}: incremental weight {} != batch optimum {}",
            state.round, got, best
        );
        self.rounds_checked += 1;
        sel
    }
}

fn legacy(inst: &Instance, kind: BuiltinPolicy) -> Schedule {
    match kind {
        BuiltinPolicy::MaxCard => fss_online::run_policy(inst, &mut MaxCard::default()),
        BuiltinPolicy::MinRTime => fss_online::run_policy(inst, &mut MinRTime::default()),
        BuiltinPolicy::MaxWeight => fss_online::run_policy(inst, &mut MaxWeight::default()),
        BuiltinPolicy::FifoGreedy => fss_online::run_policy(inst, &mut FifoGreedy::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline differential property: engine ≡ legacy, per policy,
    /// per flow, per round.
    #[test]
    fn engine_schedules_equal_legacy_for_every_policy(inst in unit_instance()) {
        for kind in [
            BuiltinPolicy::MaxCard,
            BuiltinPolicy::MinRTime,
            BuiltinPolicy::MaxWeight,
            BuiltinPolicy::FifoGreedy,
        ] {
            let engine = run_builtin(&inst, kind);
            let reference = legacy(&inst, kind);
            prop_assert_eq!(
                engine.rounds(), reference.rounds(),
                "policy {} diverged from the legacy loop", kind.name()
            );
        }
    }

    /// Stateful / randomized extension policies run through the generic
    /// engine path must also match the legacy loop (same policy code over
    /// the mirrored waiting state).
    #[test]
    fn engine_matches_legacy_for_extension_policies(inst in unit_instance()) {
        let e1 = run_policy(&inst, &mut AgedMaxWeight::new(1.5));
        let l1 = fss_online::run_policy(&inst, &mut AgedMaxWeight::new(1.5));
        prop_assert_eq!(e1, l1);
        let e2 = run_policy(&inst, &mut RandomMatching::new(7));
        let l2 = fss_online::run_policy(&inst, &mut RandomMatching::new(7));
        prop_assert_eq!(e2, l2);
    }

    /// Exact-parity of the incremental weighted matching, checked
    /// *inside* every round: across randomized dynamic
    /// arrival/dispatch/outage sequences the incremental policies'
    /// selections stay feasible matchings with total weight equal to the
    /// batch Hungarian's optimum on the same waiting graph (the batch
    /// path is the oracle, per cell weights of the integer models).
    #[test]
    fn weighted_selections_match_batch_hungarian_under_outages(
        (inst, plan) in instance_and_plan(),
    ) {
        for model in [
            WeightModel::MinRTime,
            WeightModel::MaxWeight,
            WeightModel::AgedMaxWeight { gamma_q: 1536 },
        ] {
            let mut checked = match model {
                WeightModel::MinRTime => OracleChecked {
                    inner: Box::new(MinRTime::default()),
                    model,
                    rounds_checked: 0,
                },
                WeightModel::MaxWeight => OracleChecked {
                    inner: Box::new(MaxWeight::default()),
                    model,
                    rounds_checked: 0,
                },
                WeightModel::AgedMaxWeight { .. } => OracleChecked {
                    inner: Box::new(AgedMaxWeight::new(1.5)),
                    model,
                    rounds_checked: 0,
                },
            };
            let stats = fss_engine::run_stream_failures(
                InstanceSource::new(&inst),
                &mut checked,
                &plan,
            );
            prop_assert_eq!(stats.arrived, stats.dispatched, "stream must drain");
            prop_assert!(checked.rounds_checked > 0, "oracle never consulted");
        }
    }

    /// The incremental matcher's defining property, replayed from the
    /// schedule: every round's dispatch set is a *maximum* matching of
    /// that round's waiting graph, and the schedule is feasible.
    #[test]
    fn incremental_mode_is_maximum_every_round(inst in unit_instance()) {
        let sched = run_incremental(&inst);
        prop_assert!(validate::check(&inst, &sched, &inst.switch).is_ok());
        let m = inst.switch.num_inputs();
        for t in 0..sched.makespan() {
            let mut g = BipartiteGraph::new(m, m);
            let mut dispatched = 0usize;
            let mut any = false;
            for (i, f) in inst.flows.iter().enumerate() {
                let run = sched.rounds()[i];
                if f.release <= t && run >= t {
                    g.add_edge(f.src, f.dst);
                    any = true;
                }
                if run == t {
                    dispatched += 1;
                }
            }
            if any {
                prop_assert_eq!(dispatched, max_cardinality_matching(&g).len(),
                    "round {} dispatch is not maximum", t);
            }
        }
    }
}
