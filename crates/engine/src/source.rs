//! Streaming arrival sources: the [`FlowSource`] trait and its two stock
//! implementations — a batch [`Instance`] adapter and an unbounded Poisson
//! generator.
//!
//! A source yields [`Arrival`]s with **nondecreasing release rounds**, and
//! within one release round **increasing flow ids**. That ordering contract
//! is what lets the engine's exact mode replay the legacy runner's queue
//! discipline bit-for-bit (the legacy loop ingests flows sorted by
//! `(release, index)`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;

use fss_core::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

pub use fss_core::Arrival;

/// A stream of flow arrivals.
///
/// Contract: releases are nondecreasing, and ids are increasing within a
/// release round. The engine validates this in debug builds.
pub trait FlowSource {
    /// Number of input ports.
    fn m_in(&self) -> usize;

    /// Number of output ports.
    fn m_out(&self) -> usize;

    /// Pop the next arrival, or `None` when the stream is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;

    /// Total number of flows, when known up front (lets bounded runs
    /// preallocate their schedule).
    fn len_hint(&self) -> Option<usize> {
        None
    }
}

impl<S: FlowSource + ?Sized> FlowSource for Box<S> {
    fn m_in(&self) -> usize {
        (**self).m_in()
    }

    fn m_out(&self) -> usize {
        (**self).m_out()
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        (**self).next_arrival()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
}

/// Adapter: replay a batch [`Instance`] as a stream, sorted by
/// `(release, flow index)` exactly like the legacy runner's ingest order.
pub struct InstanceSource<'a> {
    inst: &'a Instance,
    order: Vec<u32>,
    next: usize,
}

impl<'a> InstanceSource<'a> {
    /// Build the sorted replay order (`O(n log n)` once).
    pub fn new(inst: &'a Instance) -> Self {
        let mut order: Vec<u32> = (0..inst.n() as u32).collect();
        order.sort_by_key(|&i| (inst.flows[i as usize].release, i));
        InstanceSource {
            inst,
            order,
            next: 0,
        }
    }
}

impl FlowSource for InstanceSource<'_> {
    fn m_in(&self) -> usize {
        self.inst.switch.num_inputs()
    }

    fn m_out(&self) -> usize {
        self.inst.switch.num_outputs()
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        let &i = self.order.get(self.next)?;
        self.next += 1;
        let f = &self.inst.flows[i as usize];
        Some(Arrival {
            id: u64::from(i),
            src: f.src,
            dst: f.dst,
            release: f.release,
        })
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.inst.n())
    }
}

/// Unbounded (or round-limited) Poisson workload generator: each round,
/// `Poisson(rate)` unit flows arrive on uniformly random port pairs —
/// the workload of §5.2.1, without materializing an [`Instance`].
///
/// The sampler uses Knuth's product method below `λ = 30` and splits
/// larger rates into chunks (Poisson additivity keeps the sum exactly
/// distributed), so `M = 4m = 600` and far beyond stay exact.
pub struct PoissonSource {
    m_in: u32,
    m_out: u32,
    rate: f64,
    rounds: Option<u64>,
    rng: SmallRng,
    round: u64,
    batch_left: u64,
    next_id: u64,
}

impl PoissonSource {
    /// A generator on an `m x m` switch with `rate` mean arrivals per
    /// round for `rounds` rounds (`None` = endless).
    pub fn new(m: usize, rate: f64, rounds: Option<u64>, seed: u64) -> Self {
        assert!(m > 0, "switch needs at least one port");
        assert!(rate >= 0.0 && rate.is_finite(), "rate must be nonnegative");
        let mut src = PoissonSource {
            m_in: m as u32,
            m_out: m as u32,
            rate,
            rounds,
            rng: SmallRng::seed_from_u64(seed),
            round: 0,
            batch_left: 0,
            next_id: 0,
        };
        if rounds != Some(0) {
            src.batch_left = src.draw_batch();
        }
        src
    }

    fn draw_batch(&mut self) -> u64 {
        poisson(&mut self.rng, self.rate)
    }
}

impl FlowSource for PoissonSource {
    fn m_in(&self) -> usize {
        self.m_in as usize
    }

    fn m_out(&self) -> usize {
        self.m_out as usize
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        loop {
            if self.batch_left > 0 {
                self.batch_left -= 1;
                let id = self.next_id;
                self.next_id += 1;
                return Some(Arrival {
                    id,
                    src: self.rng.gen_range(0..self.m_in),
                    dst: self.rng.gen_range(0..self.m_out),
                    release: self.round,
                });
            }
            self.round += 1;
            if let Some(limit) = self.rounds {
                if self.round >= limit {
                    return None;
                }
            }
            self.batch_left = self.draw_batch();
        }
    }
}

/// A [`FlowSource`] fed live by another thread over an mpsc channel —
/// the bridge between an ingest loop (`flowsched serve`) and the
/// engine's drive loops.
///
/// `next_arrival` **blocks** until the producer sends the next arrival
/// or drops its sender (end of stream). The drive loops pull exactly
/// one arrival ahead, so blocking here means "the decision for round
/// `t` waits until an arrival with a later release proves round `t` is
/// complete" — which is precisely what makes a live run's schedule
/// depend only on the arrival *sequence*, never on timing, and hence
/// bit-identical to replaying the same sequence from a trace.
///
/// The producer owns the ordering contract (nondecreasing releases,
/// increasing ids); `flowsched serve`'s admission gate enforces it at
/// ingest. The optional `depth` gauge is decremented once per received
/// arrival so the producer side can expose live queue depth.
pub struct ChannelSource {
    m_in: usize,
    m_out: usize,
    rx: Receiver<Arrival>,
    depth: Option<Arc<AtomicU64>>,
}

impl ChannelSource {
    /// A source on an `m x m` switch reading from `rx`.
    pub fn new(ports: usize, rx: Receiver<Arrival>) -> ChannelSource {
        assert!(ports > 0, "switch needs at least one port");
        ChannelSource {
            m_in: ports,
            m_out: ports,
            rx,
            depth: None,
        }
    }

    /// Like [`ChannelSource::new`], decrementing `depth` on every
    /// received arrival (the producer increments it on every send).
    pub fn with_depth(ports: usize, rx: Receiver<Arrival>, depth: Arc<AtomicU64>) -> ChannelSource {
        let mut s = ChannelSource::new(ports, rx);
        s.depth = Some(depth);
        s
    }
}

impl FlowSource for ChannelSource {
    fn m_in(&self) -> usize {
        self.m_in
    }

    fn m_out(&self) -> usize {
        self.m_out
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = self.rx.recv().ok()?;
        if let Some(d) = &self.depth {
            d.fetch_sub(1, Ordering::Relaxed);
        }
        Some(a)
    }
}

/// Sample `Poisson(lambda)` (chunked Knuth; exact for any finite rate).
/// This is the workspace's canonical sampler; `fss_sim::workload`
/// re-exports it so both crates draw from the same distribution code.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "rate must be nonnegative"
    );
    if lambda == 0.0 {
        return 0;
    }
    if lambda <= 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0f64;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    let chunks = (lambda / 30.0).ceil() as u64;
    let per = lambda / chunks as f64;
    (0..chunks).map(|_| poisson(rng, per)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_source_replays_in_legacy_order() {
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 5);
        b.unit_flow(1, 1, 0);
        b.unit_flow(0, 1, 5);
        let inst = b.build().unwrap();
        let mut s = InstanceSource::new(&inst);
        let ids: Vec<u64> = std::iter::from_fn(|| s.next_arrival())
            .map(|a| a.id)
            .collect();
        // Sorted by (release, index): flow 1 (r=0), then flows 0 and 2 (r=5).
        assert_eq!(ids, vec![1, 0, 2]);
        assert_eq!(s.len_hint(), Some(3));
    }

    #[test]
    fn poisson_source_is_ordered_and_bounded() {
        let mut s = PoissonSource::new(8, 3.0, Some(20), 42);
        let mut last_release = 0u64;
        let mut last_id = None;
        let mut n = 0u64;
        while let Some(a) = s.next_arrival() {
            assert!(a.release >= last_release, "releases must be nondecreasing");
            if a.release > last_release {
                last_release = a.release;
            }
            if let Some(prev) = last_id {
                assert!(a.id > prev, "ids must increase");
            }
            last_id = Some(a.id);
            assert!(a.src < 8 && a.dst < 8);
            assert!(a.release < 20);
            n += 1;
        }
        // ~60 expected.
        assert!(n > 20 && n < 140, "n = {n}");
    }

    #[test]
    fn poisson_source_reproducible() {
        let collect = |seed| {
            let mut s = PoissonSource::new(5, 2.0, Some(10), seed);
            std::iter::from_fn(move || s.next_arrival()).collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    fn channel_source_streams_until_sender_drops() {
        let (tx, rx) = std::sync::mpsc::sync_channel(4);
        let depth = Arc::new(AtomicU64::new(0));
        let mut s = ChannelSource::with_depth(3, rx, Arc::clone(&depth));
        let feeder = std::thread::spawn(move || {
            for id in 0..6u64 {
                depth.fetch_add(1, Ordering::Relaxed);
                tx.send(Arrival {
                    id,
                    src: (id % 3) as u32,
                    dst: ((id + 1) % 3) as u32,
                    release: id / 2,
                })
                .unwrap();
            }
            depth
        });
        let got: Vec<u64> = std::iter::from_fn(|| s.next_arrival())
            .map(|a| a.id)
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        let depth = feeder.join().unwrap();
        assert_eq!(depth.load(Ordering::Relaxed), 0, "every recv decrements");
        assert!(s.next_arrival().is_none(), "closed channel stays exhausted");
    }

    #[test]
    fn zero_rate_source_is_empty() {
        let mut s = PoissonSource::new(3, 0.0, Some(50), 1);
        assert!(s.next_arrival().is_none());
    }

    #[test]
    fn zero_rounds_source_is_empty() {
        // Regression: the constructor used to draw round 0's batch before
        // the round limit was ever consulted.
        let mut s = PoissonSource::new(3, 100.0, Some(0), 1);
        assert!(s.next_arrival().is_none());
    }
}
