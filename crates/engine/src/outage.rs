//! Failure-aware streaming drive: execute any [`OnlinePolicy`] over a
//! [`FlowSource`] while a [`FailurePlan`] takes ports down and back up.
//!
//! This is the engine-native replacement for the simulator's batch
//! failure runner: arrivals are pulled from the source as the clock
//! reaches their release round, so memory stays `O(peak queue)` no matter
//! how long the stream is. The loop mirrors the legacy batch runner
//! (`fss_sim::run_policy_with_failures_legacy`) decision-for-decision —
//! same `(release, id)` ingest order, same visible-subset construction,
//! same descending-index `swap_remove` — so schedules are round-for-round
//! identical and differentially testable.
//!
//! Rounds where the queue is empty are skipped event-style (jump to the
//! next arrival), and so are fully-blocked windows — when every waiting
//! flow sits on a dead port the clock jumps to the next outage end or
//! arrival, whichever is first. The legacy loop ticks through both kinds
//! of round doing nothing, so the schedules stay round-for-round
//! identical while the cost of a dead window is proportional to the
//! number of outages, not their length.

use crate::source::FlowSource;
use crate::stream::StreamStats;
use fss_core::{FailurePlan, FlowId, PortSide};
use fss_online::{OnlinePolicy, QueueState, WaitingFlow};
use fss_telemetry::{span, EngineTelemetry, Stage};

/// Drive `source` through `policy` under the outage plan.
/// `on_dispatch(id, release, round)` fires once per flow.
pub(crate) fn drive_failures<S: FlowSource, P: OnlinePolicy + ?Sized>(
    mut source: S,
    policy: &mut P,
    plan: &FailurePlan,
    tele: &mut EngineTelemetry,
    mut on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    let (m_in, m_out) = (source.m_in(), source.m_out());
    let mut stats = StreamStats::default();
    let mut waiting: Vec<WaitingFlow> = Vec::new();
    let mut ids: Vec<u64> = Vec::new(); // full 64-bit ids, parallel to `waiting`
    let mut usable: Vec<usize> = Vec::new();
    let mut visible: Vec<WaitingFlow> = Vec::new();
    let mut picked: Vec<usize> = Vec::new();
    let mut selection: Vec<usize> = Vec::new();
    let mut used_in = vec![false; m_in];
    let mut used_out = vec![false; m_out];

    let mut pending = source.next_arrival();
    let mut t = match &pending {
        Some(a) => a.release,
        None => return stats,
    };

    while !waiting.is_empty() || pending.is_some() {
        tele.flight_round(t);
        // Ingest every arrival released by round `t` (the source contract
        // guarantees `(release, id)` order, matching the legacy ingest).
        span!(tele, Stage::Ingest, {
            while let Some(a) = pending {
                if a.release > t {
                    break;
                }
                waiting.push(WaitingFlow {
                    id: FlowId(a.id as u32),
                    src: a.src,
                    dst: a.dst,
                    release: a.release,
                });
                ids.push(a.id);
                stats.arrived += 1;
                pending = source.next_arrival();
                debug_assert!(
                    pending.is_none_or(|n| n.release >= a.release),
                    "FlowSource contract: releases must be nondecreasing"
                );
            }
        });
        stats.peak_queue = stats.peak_queue.max(waiting.len());
        if waiting.is_empty() {
            match &pending {
                Some(a) => {
                    t = a.release;
                    continue;
                }
                None => break,
            }
        }
        // Only flows whose both ports are up are offered to the policy.
        span!(tele, Stage::QueueUpdate, {
            usable.clear();
            usable.extend((0..waiting.len()).filter(|&k| {
                let w = &waiting[k];
                plan.is_up(PortSide::Input, w.src, t) && plan.is_up(PortSide::Output, w.dst, t)
            }));
        });
        if usable.is_empty() {
            // Every waiting flow sits on a dead port: nothing can change
            // until the next outage ends or the next arrival lands, so
            // jump straight there. The legacy loop ticks through these
            // rounds one by one doing nothing, so skipping them leaves
            // schedules identical while bounding dead-window traversal
            // by the *number* of outages, not their length (an untrusted
            // scenario file may declare absurdly long windows).
            let next_end = plan
                .outages
                .iter()
                .map(|o| o.to)
                .filter(|&to| to > t)
                .min()
                .expect("a blocked port is covered by an outage ending after t");
            t = match &pending {
                Some(a) => next_end.min(a.release),
                None => next_end,
            };
            continue;
        }
        visible.clear();
        visible.extend(usable.iter().map(|&k| waiting[k]));
        let state = QueueState {
            round: t,
            waiting: &visible,
            m_in,
            m_out,
        };
        tele.decision(|| {
            // Persistent scratch: `choose_into` writes into the reusable
            // buffer, keeping the per-round dispatch path allocation-free.
            policy.choose_into(&state, &mut selection);
            selection.sort_unstable();
            selection.dedup();
        });
        span!(tele, Stage::Dispatch, {
            used_in.fill(false);
            used_out.fill(false);
            picked.clear();
            for &k in &selection {
                let w = &visible[k];
                assert!(
                    !used_in[w.src as usize] && !used_out[w.dst as usize],
                    "policy {} returned a non-matching",
                    policy.name()
                );
                used_in[w.src as usize] = true;
                used_out[w.dst as usize] = true;
                let q = usable[k];
                stats.on_dispatch(w.release, t);
                on_dispatch(ids[q], w.release, t);
                picked.push(q);
            }
            if !picked.is_empty() {
                stats.active_rounds += 1;
            }
            picked.sort_unstable();
            for &k in picked.iter().rev() {
                waiting.swap_remove(k);
                ids.swap_remove(k);
            }
        });
        t += 1;
        tele.round();
    }
    tele.flight_round_finish();
    crate::stream::finish_telemetry(tele, &stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PoissonSource;
    use fss_core::Outage;
    use fss_online::MaxCard;

    fn outage(side: PortSide, port: u32, from: u64, to: u64) -> Outage {
        Outage {
            side,
            port,
            from,
            to,
        }
    }

    #[test]
    fn drains_a_poisson_stream_under_outages() {
        let source = PoissonSource::new(6, 4.0, Some(20), 77);
        let plan = FailurePlan {
            outages: vec![
                outage(PortSide::Input, 0, 0, 8),
                outage(PortSide::Output, 3, 5, 12),
            ],
        };
        let mut seen = std::collections::HashSet::new();
        let stats = drive_failures(
            source,
            &mut MaxCard::default(),
            &plan,
            &mut EngineTelemetry::disabled(),
            |id, release, round| {
                assert!(round >= release, "dispatch before release");
                assert!(seen.insert(id), "flow {id} dispatched twice");
            },
        );
        assert_eq!(stats.arrived, stats.dispatched);
        assert_eq!(stats.dispatched as usize, seen.len());
    }

    #[test]
    fn dead_ports_are_never_crossed() {
        let source = PoissonSource::new(4, 3.0, Some(15), 5);
        let plan = FailurePlan {
            outages: vec![outage(PortSide::Input, 1, 2, 9)],
        };
        // Re-create the same arrivals to map ids to ports.
        let mut probe = PoissonSource::new(4, 3.0, Some(15), 5);
        let mut srcs = Vec::new();
        while let Some(a) = probe.next_arrival() {
            srcs.push(a.src);
        }
        drive_failures(
            source,
            &mut MaxCard::default(),
            &plan,
            &mut EngineTelemetry::disabled(),
            |id, _release, round| {
                let src = srcs[id as usize];
                assert!(
                    plan.is_up(PortSide::Input, src, round),
                    "flow {id} crossed dead input {src} at round {round}"
                );
            },
        );
    }

    #[test]
    fn huge_outage_windows_are_jumped_not_ticked() {
        // One flow on a port that is dead for ~1e15 rounds: the drive
        // must jump to the recovery round instead of ticking through the
        // window (which would effectively hang).
        struct OneFlow(bool);
        impl FlowSource for OneFlow {
            fn m_in(&self) -> usize {
                2
            }
            fn m_out(&self) -> usize {
                2
            }
            fn next_arrival(&mut self) -> Option<fss_core::Arrival> {
                if self.0 {
                    return None;
                }
                self.0 = true;
                Some(fss_core::Arrival {
                    id: 0,
                    src: 0,
                    dst: 0,
                    release: 0,
                })
            }
        }
        let recovery = 1_000_000_000_000_000u64;
        let plan = FailurePlan {
            outages: vec![outage(PortSide::Input, 0, 0, recovery)],
        };
        let mut dispatched_at = None;
        let stats = drive_failures(
            OneFlow(false),
            &mut MaxCard::default(),
            &plan,
            &mut EngineTelemetry::disabled(),
            |_, _, round| {
                dispatched_at = Some(round);
            },
        );
        assert_eq!(dispatched_at, Some(recovery));
        assert_eq!(stats.dispatched, 1);
        assert_eq!(stats.makespan, recovery + 1);
    }

    #[test]
    fn empty_source_is_a_noop() {
        let source = PoissonSource::new(3, 0.0, Some(10), 1);
        let stats = drive_failures(
            source,
            &mut MaxCard::default(),
            &FailurePlan::default(),
            &mut EngineTelemetry::disabled(),
            |_, _, _| panic!("nothing to dispatch"),
        );
        assert_eq!(stats, StreamStats::default());
    }
}
