//! Exact-parity round core: reproduces the legacy
//! [`fss_online::run_policy`] loop decision-for-decision, so engine-driven
//! runs are differentially testable (round-for-round identical schedules)
//! while still cutting the per-round cost.
//!
//! Two ingredients make the parity claim hold:
//!
//! 1. **Queue discipline mirror.** The waiting vector is maintained with
//!    the same push order (sorted by `(release, id)` via the
//!    [`crate::FlowSource`] ordering contract) and the same
//!    descending-index `swap_remove` after each round, so at every round
//!    the engine's waiting vector is *identical as a sequence* to the
//!    legacy runner's. Policies that read `QueueState` therefore see the
//!    exact same input and return the exact same selection.
//!
//! 2. **Dedup-compressed Hopcroft–Karp for MaxCard.** The legacy MaxCard
//!    runs HK over the full waiting multigraph (one edge per waiting
//!    flow). HK's BFS/DFS both ignore a parallel edge whose `(port, port)`
//!    pair was already reachable/tried — a failed DFS attempt mutates
//!    nothing, so a later parallel copy fails identically, and the first
//!    occurrence is always the one that succeeds. Running the *same
//!    traversal* over the first-occurrence-deduped adjacency (at most
//!    `m_in * m_out` edges instead of one per queued flow) therefore
//!    yields the same matched pairs *and* the same representative edge
//!    ids. At `M = 4m` the queue holds thousands of parallel edges per
//!    cell; this is the asymptotic win on the hot path.

use fss_online::{OnlinePolicy, QueueState, WaitingFlow};
use std::collections::VecDeque;

const NIL: u32 = u32::MAX;
const INF: u32 = u32::MAX;

/// How a round's matching is chosen in exact mode.
pub enum Selector<'p> {
    /// Legacy-identical MaxCard via dedup-compressed Hopcroft–Karp.
    MaxCard,
    /// Any [`OnlinePolicy`] — invoked on the mirrored waiting state, so
    /// its decisions (and thus the schedule) match the legacy loop's.
    Policy(&'p mut dyn OnlinePolicy),
}

impl Selector<'_> {
    /// Display name (mirrors the policy names used in panics/reports).
    pub fn name(&self) -> &str {
        match self {
            Selector::MaxCard => "MaxCard",
            Selector::Policy(p) => p.name(),
        }
    }
}

/// Mirrored waiting state plus reusable matching scratch.
pub struct ExactCore {
    m_in: usize,
    m_out: usize,
    /// Legacy-ordered waiting vector (the parity-critical structure).
    pub waiting: Vec<WaitingFlow>,
    /// This round's selection (sorted waiting indices).
    pub(crate) selection: Vec<usize>,
    // --- MaxCard scratch (reused across rounds; no per-round allocs) ---
    /// First-occurrence deduped adjacency: per input port, `(dst, edge)`
    /// where `edge` indexes `waiting`.
    adj: Vec<Vec<(u32, u32)>>,
    touched: Vec<u32>,
    cell_stamp: Vec<u32>,
    stamp: u32,
    match_l: Vec<u32>,
    match_r: Vec<u32>,
    match_edge: Vec<u32>,
    dist: Vec<u32>,
    bfs: VecDeque<u32>,
    // --- validation scratch for the Policy path ---
    used_in: Vec<bool>,
    used_out: Vec<bool>,
}

impl ExactCore {
    /// Empty state for an `m_in x m_out` unit-capacity switch.
    pub fn new(m_in: usize, m_out: usize) -> ExactCore {
        ExactCore {
            m_in,
            m_out,
            waiting: Vec::new(),
            selection: Vec::new(),
            adj: vec![Vec::new(); m_in],
            touched: Vec::new(),
            cell_stamp: vec![0; m_in * m_out],
            stamp: 0,
            match_l: vec![NIL; m_in],
            match_r: vec![NIL; m_out],
            match_edge: vec![NIL; m_in],
            dist: vec![INF; m_in],
            bfs: VecDeque::new(),
            used_in: vec![false; m_in],
            used_out: vec![false; m_out],
        }
    }

    /// Append a released flow (callers feed arrivals in `(release, id)`
    /// order, matching the legacy ingest).
    pub fn push_waiting(&mut self, id: u32, src: u32, dst: u32, release: u64) {
        self.waiting.push(WaitingFlow {
            id: fss_core::FlowId(id),
            src,
            dst,
            release,
        });
    }

    /// Choose this round's matching; returns the sorted, deduped,
    /// validated selection (indices into `waiting`).
    pub fn select(&mut self, round: u64, selector: &mut Selector<'_>) -> &[usize] {
        match selector {
            Selector::MaxCard => self.select_maxcard(),
            Selector::Policy(p) => self.select_policy(round, *p),
        }
        &self.selection
    }

    /// Dispatch bookkeeping: remove the selection exactly like the legacy
    /// loop (descending-index `swap_remove`), preserving vector parity.
    pub fn remove_selection(&mut self) {
        for i in (0..self.selection.len()).rev() {
            let k = self.selection[i];
            self.waiting.swap_remove(k);
        }
    }

    fn select_policy(&mut self, round: u64, policy: &mut dyn OnlinePolicy) {
        let state = QueueState {
            round,
            waiting: &self.waiting,
            m_in: self.m_in,
            m_out: self.m_out,
        };
        // Reuse the persistent selection buffer: policies write into it
        // via `choose_into`, so the hot loop stays allocation-free.
        let mut sel = std::mem::take(&mut self.selection);
        policy.choose_into(&state, &mut sel);
        sel.sort_unstable();
        sel.dedup();
        // Validate exactly like the legacy runner: panics on a
        // non-matching, because policies are trusted components.
        for p in self.used_in.iter_mut() {
            *p = false;
        }
        for q in self.used_out.iter_mut() {
            *q = false;
        }
        for &k in &sel {
            let w = &self.waiting[k];
            assert!(
                !self.used_in[w.src as usize] && !self.used_out[w.dst as usize],
                "policy {} returned a non-matching at round {round}",
                policy.name()
            );
            self.used_in[w.src as usize] = true;
            self.used_out[w.dst as usize] = true;
        }
        self.selection = sel;
    }

    /// Hopcroft–Karp over the deduped support adjacency, mirroring
    /// `fss_matching::max_cardinality_matching`'s traversal order.
    fn select_maxcard(&mut self) {
        // Build first-occurrence adjacency from the mirrored vector.
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: reset the grid once.
            self.cell_stamp.fill(0);
            self.stamp = 1;
        }
        for p in self.touched.drain(..) {
            self.adj[p as usize].clear();
        }
        for (k, w) in self.waiting.iter().enumerate() {
            let cell = w.src as usize * self.m_out + w.dst as usize;
            if self.cell_stamp[cell] != self.stamp {
                self.cell_stamp[cell] = self.stamp;
                if self.adj[w.src as usize].is_empty() {
                    self.touched.push(w.src);
                }
                self.adj[w.src as usize].push((w.dst, k as u32));
            }
        }
        // HK phases, structured exactly like the reference implementation.
        self.match_l.fill(NIL);
        self.match_r.fill(NIL);
        loop {
            self.bfs.clear();
            for u in 0..self.m_in {
                if self.match_l[u] == NIL {
                    self.dist[u] = 0;
                    self.bfs.push_back(u as u32);
                } else {
                    self.dist[u] = INF;
                }
            }
            let mut found = false;
            while let Some(u) = self.bfs.pop_front() {
                for &(v, _) in &self.adj[u as usize] {
                    let w = self.match_r[v as usize];
                    if w == NIL {
                        found = true;
                    } else if self.dist[w as usize] == INF {
                        self.dist[w as usize] = self.dist[u as usize] + 1;
                        self.bfs.push_back(w);
                    }
                }
            }
            if !found {
                break;
            }
            for u in 0..self.m_in as u32 {
                if self.match_l[u as usize] == NIL {
                    hk_dfs(
                        u,
                        &self.adj,
                        &mut self.match_l,
                        &mut self.match_r,
                        &mut self.match_edge,
                        &mut self.dist,
                    );
                }
            }
        }
        self.selection.clear();
        for u in 0..self.m_in {
            if self.match_l[u] != NIL {
                self.selection.push(self.match_edge[u] as usize);
            }
        }
        // The legacy runner sorts + dedups the policy's return value.
        self.selection.sort_unstable();
    }
}

/// Layered-DFS augmentation, identical in traversal order to the
/// reference `fss_matching::hopcroft_karp::dfs`.
fn hk_dfs(
    u: u32,
    adj: &[Vec<(u32, u32)>],
    match_l: &mut [u32],
    match_r: &mut [u32],
    match_edge: &mut [u32],
    dist: &mut [u32],
) -> bool {
    for idx in 0..adj[u as usize].len() {
        let (v, e) = adj[u as usize][idx];
        let w = match_r[v as usize];
        let ok = w == NIL
            || (dist[w as usize] == dist[u as usize] + 1
                && hk_dfs(w, adj, match_l, match_r, match_edge, dist));
        if ok {
            match_l[u as usize] = v;
            match_r[v as usize] = u;
            match_edge[u as usize] = e;
            return true;
        }
    }
    dist[u as usize] = INF;
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_matching::{max_cardinality_matching, BipartiteGraph};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// The parity claim, tested directly: dedup-HK over the waiting
    /// vector selects the same edge ids as reference HK over the full
    /// multigraph.
    #[test]
    fn dedup_hk_matches_reference_on_random_multigraphs() {
        let mut rng = SmallRng::seed_from_u64(1234);
        for _ in 0..500 {
            let m_in = rng.gen_range(1..7usize);
            let m_out = rng.gen_range(1..7usize);
            let edges = rng.gen_range(0..40usize);
            let mut core = ExactCore::new(m_in, m_out);
            let mut g = BipartiteGraph::new(m_in, m_out);
            for k in 0..edges {
                let (src, dst) = (
                    rng.gen_range(0..m_in as u32),
                    rng.gen_range(0..m_out as u32),
                );
                core.push_waiting(k as u32, src, dst, 0);
                g.add_edge(src, dst);
            }
            let mut sel = Selector::MaxCard;
            let got: Vec<usize> = core.select(0, &mut sel).to_vec();
            let mut want = max_cardinality_matching(&g);
            want.sort_unstable();
            assert_eq!(got, want, "m_in={m_in} m_out={m_out} edges={edges}");
        }
    }

    #[test]
    fn multiround_parity_with_swap_remove_discipline() {
        // Drive several rounds incl. removals; re-check parity each round.
        let mut rng = SmallRng::seed_from_u64(99);
        let (m_in, m_out) = (4usize, 4usize);
        let mut core = ExactCore::new(m_in, m_out);
        let mut mirror: Vec<(u32, u32)> = Vec::new(); // (src, dst)
        let mut next_id = 0u32;
        for round in 0u64..60 {
            for _ in 0..rng.gen_range(0..4u32) {
                let (s, d) = (rng.gen_range(0..4u32), rng.gen_range(0..4u32));
                core.push_waiting(next_id, s, d, round);
                mirror.push((s, d));
                next_id += 1;
            }
            if core.waiting.is_empty() {
                continue;
            }
            let mut g = BipartiteGraph::new(m_in, m_out);
            for &(s, d) in &mirror {
                g.add_edge(s, d);
            }
            let mut sel = Selector::MaxCard;
            let got: Vec<usize> = core.select(round, &mut sel).to_vec();
            let mut want = max_cardinality_matching(&g);
            want.sort_unstable();
            assert_eq!(got, want, "round {round}");
            core.remove_selection();
            for &k in got.iter().rev() {
                mirror.swap_remove(k);
            }
            assert_eq!(core.waiting.len(), mirror.len());
        }
    }

    #[test]
    #[should_panic(expected = "non-matching")]
    fn policy_selection_is_validated() {
        struct Bad;
        impl OnlinePolicy for Bad {
            fn name(&self) -> &'static str {
                "Bad"
            }
            fn choose(&mut self, state: &QueueState<'_>) -> Vec<usize> {
                (0..state.waiting.len()).collect()
            }
        }
        let mut core = ExactCore::new(2, 2);
        core.push_waiting(0, 0, 0, 0);
        core.push_waiting(1, 0, 0, 0);
        let mut bad = Bad;
        let mut sel = Selector::Policy(&mut bad);
        core.select(0, &mut sel);
    }
}
