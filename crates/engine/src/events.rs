//! The calendar driving the simulation: a small binary-heap event queue.
//!
//! Instead of a dense `t += 1` loop, the engine advances to the earliest
//! pending event — the next arrival batch from the [`crate::FlowSource`]
//! or a self-scheduled dispatch round while the queue drains. Rounds where
//! nothing can happen are never visited, so sparse workloads cost time
//! proportional to their *events*, not their time horizon.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What happens at a scheduled round. The drive loops ingest a round's
/// arrivals before extracting its matching (§5.2.1 semantics) — that
/// ordering is enforced by the loop structure itself; the `Arrival <
/// Dispatch` ordering here only keeps same-round coalescing
/// deterministic inside the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// New flows are released this round.
    Arrival,
    /// A matching is extracted and dispatched this round.
    Dispatch,
}

/// Min-heap of `(round, kind)` events with duplicate suppression.
///
/// Today's drive loops schedule only two event kinds (next arrival,
/// next dispatch); the calendar is deliberately more general so future
/// event kinds — port outages, deadline timers, checkpoint ticks — slot
/// in without restructuring the loops.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, EventKind)>>,
}

impl EventQueue {
    /// An empty calendar.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `kind` at `round` (idempotent: duplicates are merged on
    /// pop, so pushing defensively is fine).
    pub fn push(&mut self, round: u64, kind: EventKind) {
        self.heap.push(Reverse((round, kind)));
    }

    /// Pop the earliest round and drain *all* events scheduled for it.
    /// Returns the round, or `None` when the calendar is empty.
    pub fn pop_round(&mut self) -> Option<u64> {
        let Reverse((round, _)) = self.heap.pop()?;
        while let Some(&Reverse((r, _))) = self.heap.peek() {
            if r == round {
                self.heap.pop();
            } else {
                break;
            }
        }
        Some(round)
    }

    /// Earliest scheduled round, if any.
    pub fn peek_round(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((r, _))| r)
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_and_merges_rounds() {
        let mut q = EventQueue::new();
        q.push(7, EventKind::Dispatch);
        q.push(3, EventKind::Arrival);
        q.push(3, EventKind::Dispatch);
        q.push(3, EventKind::Arrival);
        assert_eq!(q.peek_round(), Some(3));
        assert_eq!(q.pop_round(), Some(3));
        assert_eq!(q.pop_round(), Some(7));
        assert_eq!(q.pop_round(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn arrival_sorts_before_dispatch() {
        assert!(EventKind::Arrival < EventKind::Dispatch);
    }

    #[test]
    fn sparse_rounds_are_skipped() {
        let mut q = EventQueue::new();
        q.push(1_000_000_000, EventKind::Arrival);
        q.push(5, EventKind::Arrival);
        assert_eq!(q.pop_round(), Some(5));
        assert_eq!(q.pop_round(), Some(1_000_000_000));
    }
}
