//! Incremental *weighted* matching across rounds — the MinRTime/MaxWeight
//! sibling of [`crate::matcher::IncrementalMatcher`].
//!
//! [`IncrementalWeightedMatcher`] maintains the maximum-weight matching
//! of the waiting cell graph across rounds: dual potentials and the
//! assignment carry over, and each round re-solves only the rows and
//! columns dirtied by arrivals, dispatches, and (through the failure
//! drive) outage windows. The heavy lifting lives in
//! [`fss_online::weighted::WeightedCore`] over
//! [`fss_matching::HungarianScratch`]; this type is the *event* driver:
//! the drive loop notifies it of every queue mutation and it batches the
//! changes into the canonical per-round update sequence (see the
//! `fss_online::weighted` module docs), which is exactly the sequence the
//! scan-driven policies apply — so the event-driven engine path and the
//! legacy round loop walk through identical solver states and produce
//! identical schedules. The batch Hungarian
//! ([`fss_matching::max_weight_matching`]) stays untouched as the
//! differential-test oracle: every round's matched weight equals the
//! from-scratch optimum (randomized checks in this crate's tests).

use crate::queue::QueueView;
use fss_online::{WeightModel, WeightedCore};

/// Event-driven incremental weighted matcher (see the module docs).
#[derive(Debug)]
pub struct IncrementalWeightedMatcher {
    core: WeightedCore,
    /// Cells touched since the last `select` (dedup via `cell_mark`).
    touched: Vec<u32>,
    cell_mark: Vec<bool>,
    /// Ports whose queue totals changed (only tracked when the model
    /// reads them).
    rows: Vec<u32>,
    row_mark: Vec<bool>,
    cols: Vec<u32>,
    col_mark: Vec<bool>,
    /// Rounds solved (telemetry).
    selects: u64,
    /// Dirty cells applied across all rounds (telemetry).
    cells_touched: u64,
}

impl IncrementalWeightedMatcher {
    /// Empty matcher over an `m_in x m_out` port grid.
    pub fn new(model: WeightModel, m_in: usize, m_out: usize) -> IncrementalWeightedMatcher {
        IncrementalWeightedMatcher {
            core: WeightedCore::new(model, m_in, m_out),
            touched: Vec::new(),
            cell_mark: vec![false; m_in * m_out],
            rows: Vec::new(),
            row_mark: vec![false; m_in],
            cols: Vec::new(),
            col_mark: vec![false; m_out],
            selects: 0,
            cells_touched: 0,
        }
    }

    /// Lifetime work counters: `(selects, cells_touched)` — rounds
    /// solved and the dirty cells re-applied across them. Surfaced
    /// through engine telemetry.
    pub fn work(&self) -> (u64, u64) {
        (self.selects, self.cells_touched)
    }

    /// Note a queue mutation on cell `(p, q)` — an arrival landed or a
    /// dispatch popped the cell's head. Totals and the cell's oldest
    /// flow are read back from the queues at [`select`] time, so the
    /// order of notes within a round does not matter.
    ///
    /// [`select`]: IncrementalWeightedMatcher::select
    pub fn note(&mut self, p: u32, q: u32) {
        let cell = p as usize * self.core.m_out() + q as usize;
        if !self.cell_mark[cell] {
            self.cell_mark[cell] = true;
            self.touched.push(cell as u32);
        }
        if self.core.model().uses_queue_totals() {
            if !self.row_mark[p as usize] {
                self.row_mark[p as usize] = true;
                self.rows.push(p);
            }
            if !self.col_mark[q as usize] {
                self.col_mark[q as usize] = true;
                self.cols.push(q);
            }
        }
    }

    /// Apply the buffered changes for round `t` against the live queue
    /// state, repair the matching, and write the dispatch set (matched
    /// `(input, output)` pairs, ascending input) into `out`. Returns the
    /// matched total weight.
    ///
    /// Generic over [`QueueView`] so the pipelined engine's match stage
    /// can drive the identical update sequence off its id-free
    /// [`crate::queue::CellAgg`] mirror — same inputs, same solver
    /// states, same schedule.
    pub fn select<Q: QueueView>(&mut self, t: u64, queues: &Q, out: &mut Vec<(u32, u32)>) -> i64 {
        let m_out = self.core.m_out();
        self.selects += 1;
        self.cells_touched += self.touched.len() as u64;
        self.core.begin_round(t);
        self.touched.sort_unstable();
        // Emptied cells first: their weights drop out before the queue
        // offsets, keeping every surviving weight positive.
        for &cell in &self.touched {
            let (p, q) = (
                (cell as usize / m_out) as u32,
                (cell as usize % m_out) as u32,
            );
            if queues.cell_count(cell as usize) == 0 {
                self.core.clear_cell(p, q);
            }
        }
        if self.core.model().uses_queue_totals() {
            self.rows.sort_unstable();
            for &p in &self.rows {
                self.core.set_row_total(p, queues.in_total(p));
                self.row_mark[p as usize] = false;
            }
            self.cols.sort_unstable();
            for &q in &self.cols {
                self.core.set_col_total(q, queues.out_total(q));
                self.col_mark[q as usize] = false;
            }
            self.rows.clear();
            self.cols.clear();
        }
        for &cell in &self.touched {
            let (p, q) = (
                (cell as usize / m_out) as u32,
                (cell as usize % m_out) as u32,
            );
            if let Some(release) = queues.head_release(p, q) {
                self.core.set_cell(p, q, release);
            }
            self.cell_mark[cell as usize] = false;
        }
        self.touched.clear();
        self.core.select_into(out)
    }

    /// Optimality-certificate check of the underlying solver (test aid).
    pub fn verify(&self) {
        self.core.verify();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ShardedQueues;
    use fss_matching::{max_weight_matching, total_weight, BipartiteGraph};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    /// Batch-oracle weight of the optimal matching on the live queues.
    fn oracle_weight(model: WeightModel, t: u64, queues: &TestQueues) -> i64 {
        let (m_in, m_out) = (queues.m_in, queues.m_out);
        let scale = (m_in.min(m_out) + 1) as i64;
        let mut g = BipartiteGraph::new(m_in, m_out);
        let mut weights = Vec::new();
        for p in 0..m_in as u32 {
            for q in 0..m_out as u32 {
                if let Some(&rel) = queues.cells[p as usize * m_out + q as usize].first() {
                    g.add_edge(p, q);
                    let age = (t - rel) as i64;
                    let w = match model {
                        WeightModel::MinRTime => age * scale + 1,
                        WeightModel::MaxWeight => {
                            i64::from(queues.in_tot[p as usize] + queues.out_tot[q as usize])
                        }
                        WeightModel::AgedMaxWeight { gamma_q } => {
                            (i64::from(queues.in_tot[p as usize] + queues.out_tot[q as usize]) + 1)
                                * fss_online::weighted::GAMMA_DENOM
                                + gamma_q * age
                        }
                    };
                    weights.push(w as f64);
                }
            }
        }
        total_weight(&max_weight_matching(&g, &weights), &weights) as i64
    }

    /// A simple mirror of `ShardedQueues` that the test can inspect.
    struct TestQueues {
        m_in: usize,
        m_out: usize,
        cells: Vec<Vec<u64>>, // sorted releases per cell
        in_tot: Vec<u32>,
        out_tot: Vec<u32>,
        real: ShardedQueues,
    }

    impl TestQueues {
        fn new(m_in: usize, m_out: usize) -> TestQueues {
            TestQueues {
                m_in,
                m_out,
                cells: vec![Vec::new(); m_in * m_out],
                in_tot: vec![0; m_in],
                out_tot: vec![0; m_out],
                real: ShardedQueues::new(m_in, m_out),
            }
        }

        fn push(&mut self, p: u32, q: u32, id: u64, rel: u64) {
            self.cells[p as usize * self.m_out + q as usize].push(rel);
            self.in_tot[p as usize] += 1;
            self.out_tot[q as usize] += 1;
            self.real.push(p, q, id, rel);
        }

        fn pop(&mut self, p: u32, q: u32) {
            self.cells[p as usize * self.m_out + q as usize].remove(0);
            self.in_tot[p as usize] -= 1;
            self.out_tot[q as usize] -= 1;
            self.real.pop_oldest(p, q);
        }
    }

    #[test]
    fn randomized_dynamics_track_the_batch_oracle() {
        // Random arrival/dispatch churn with time jumps: every round's
        // matched weight must equal the from-scratch batch Hungarian's.
        let mut rng = SmallRng::seed_from_u64(0x000f_eed5);
        for model in [
            WeightModel::MinRTime,
            WeightModel::MaxWeight,
            WeightModel::AgedMaxWeight { gamma_q: 512 },
        ] {
            for trial in 0..20 {
                let m_in = rng.gen_range(1..5usize);
                let m_out = rng.gen_range(1..5usize);
                let mut q = TestQueues::new(m_in, m_out);
                let mut m = IncrementalWeightedMatcher::new(model, m_in, m_out);
                let mut t = 0u64;
                let mut next_id = 0u64;
                let mut sel = Vec::new();
                for _round in 0..60 {
                    for _ in 0..rng.gen_range(0..4u32) {
                        let (p, d) = (
                            rng.gen_range(0..m_in as u32),
                            rng.gen_range(0..m_out as u32),
                        );
                        q.push(p, d, next_id, t);
                        m.note(p, d);
                        next_id += 1;
                    }
                    if !q.real.is_empty() {
                        let got = m.select(t, &q.real, &mut sel);
                        m.verify();
                        let want = oracle_weight(model, t, &q);
                        assert_eq!(got, want, "{model:?} trial {trial} round {t}");
                        // Dispatch the selection (like the drive loop).
                        for &(p, d) in &sel {
                            q.pop(p, d);
                            m.note(p, d);
                        }
                    }
                    t += rng.gen_range(1..3u64);
                }
            }
        }
    }

    #[test]
    fn empty_rounds_select_nothing() {
        let mut m = IncrementalWeightedMatcher::new(WeightModel::MinRTime, 2, 2);
        let q = ShardedQueues::new(2, 2);
        let mut sel = Vec::new();
        assert_eq!(m.select(3, &q, &mut sel), 0);
        assert!(sel.is_empty());
    }
}
