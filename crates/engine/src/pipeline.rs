//! Pipelined multi-core drive of the round loop.
//!
//! The sequential drives ([`crate::stream`], [`crate::outage`]) walk one
//! thread through four stages per round: **arrival ingest → queue update
//! → matching repair → dispatch/metrics** (the [`Stage`] taxonomy). This
//! module splits those stages across threads connected by bounded SPSC
//! channels, in the dataflow mold: each stage owns its state outright,
//! rounds flow forward through the channels, and a small [`Frontier`]
//! progress tracker proves a round's inputs are complete before the
//! (inherently global) matching-repair stage fires — exactly once per
//! round, with identical inputs to the sequential path.
//!
//! ## Determinism is the contract
//!
//! Every pipelined drive produces **bit-identical schedules** to its
//! sequential counterpart (pinned by the `pipeline_differential` suite,
//! all four §5 policies ± failure plans ± telemetry):
//!
//! * At 2–3 cores the sequential drive itself runs in the middle of the
//!   pipe — ingest moves behind a channel-backed `BatchSource` (same
//!   arrival sequence, by construction) and the dispatch callback is
//!   offloaded to a sink thread (same dispatch order, FIFO channel).
//! * At ≥ 4 cores the incremental and weighted modes fan the queue
//!   updates out across `cores - 3` shard workers (input port `p` lives
//!   on shard `p % workers`, over its own [`ShardedQueues`]), while the
//!   match stage drives the *same matcher* over [`CellAgg`] — an
//!   id-free aggregate mirror answering every [`crate::QueueView`] question
//!   identically — through the same canonical update sequence. The
//!   dispatch stage reassembles shard outputs in selection order, so
//!   the `on_dispatch` stream is byte-for-byte the sequential one.
//!
//! The exact-parity modes (MaxCard, FifoGreedy, every failure-plan
//! drive) keep one global waiting vector by design — legacy parity
//! pins its mutation order — so they cap at the 3-stage pipe; the
//! sharded form covers the incremental and weighted matchers, whose
//! state factors cleanly over ports.
//!
//! ## Why no cycle can stall
//!
//! Channels form a DAG (ingest → match → shards → dispatch, plus match
//! → dispatch for the round manifest) and every consumer drains in
//! round order. The one ordering hazard is match blocking on a full
//! shard-command channel while dispatch waits for that round's
//! manifest: the match stage therefore always sends the manifest
//! *before* flushing the round's pop commands.

use std::sync::mpsc::{sync_channel, Receiver};
use std::thread;

use crate::events::{EventKind, EventQueue};
use crate::matcher::IncrementalMatcher;
use crate::queue::{CellAgg, ShardedQueues};
use crate::source::{Arrival, FlowSource};
use crate::stream::{finish_telemetry, StreamStats};
use crate::wmatcher::IncrementalWeightedMatcher;
use crate::{outage, stream, EngineMode};
use fss_core::prelude::FailurePlan;
use fss_online::{OnlinePolicy, WeightModel};
use fss_telemetry::{span, ChanId, EngineTelemetry, FlightHandle, Stage, WaitDir};

/// Arrivals per ingest batch (amortizes one channel op over many
/// arrivals; batches may straddle round boundaries — the round loop
/// re-slices by release, so chunking is invisible to the schedule).
const ARRIVAL_BATCH: usize = 1024;
/// Ingest batches in flight.
const ARRIVAL_DEPTH: usize = 8;
/// Dispatch-offload triples per batch.
const DISPATCH_BATCH: usize = 1024;
/// Dispatch-offload batches in flight.
const DISPATCH_DEPTH: usize = 8;
/// Round manifests in flight (match → dispatch).
const MANIFEST_DEPTH: usize = 64;
/// Command batches in flight per shard (match → shard worker).
const CMD_DEPTH: usize = 64;
/// Output batches in flight per shard (shard worker → dispatch).
const OUT_DEPTH: usize = 64;

/// Progress tracker for the staged drives: decides when a round's
/// inputs are complete, so the matching-repair stage fires exactly once
/// per round over exactly the arrivals the sequential drive would see.
///
/// The [`FlowSource`] contract (nondecreasing releases) makes one
/// lookahead arrival a complete frontier: after draining every arrival
/// with `release <= t`, the pending arrival's release bounds everything
/// still upstream, and a closed stream bounds it at infinity.
#[derive(Debug)]
pub struct Frontier {
    /// Least release any future arrival can carry (`None` = exhausted).
    horizon: Option<u64>,
    closed: bool,
}

impl Default for Frontier {
    fn default() -> Self {
        Frontier::new()
    }
}

impl Frontier {
    /// A frontier that has observed nothing: no round is complete yet.
    pub fn new() -> Frontier {
        Frontier {
            horizon: Some(0),
            closed: false,
        }
    }

    /// Observe the ingest lookahead (the first arrival *not* ingested,
    /// or `None` once the source is exhausted).
    pub fn observe(&mut self, pending: Option<&Arrival>) {
        match pending {
            Some(a) => self.horizon = Some(a.release),
            None => {
                self.closed = true;
                self.horizon = None;
            }
        }
    }

    /// True when no future arrival can land in round `t`, i.e. round
    /// `t`'s inputs are complete and matching may fire.
    pub fn round_complete(&self, t: u64) -> bool {
        self.closed || self.horizon.is_some_and(|h| h > t)
    }
}

/// A [`FlowSource`] replaying arrival batches received over a channel —
/// the downstream half of the ingest stage. The arrival *sequence* is
/// identical to the upstream source's (batches are concatenated in
/// order), so any drive running over a `BatchSource` produces the same
/// schedule as over the original source, by construction.
struct BatchSource {
    m_in: usize,
    m_out: usize,
    len_hint: Option<usize>,
    rx: Receiver<Vec<Arrival>>,
    cur: std::vec::IntoIter<Arrival>,
    /// Span handle for the blocking batch receives (its own ring: the
    /// consumer thread's main handle is mutably borrowed by the drive
    /// while this source is polled).
    flight: FlightHandle,
    chan: ChanId,
}

impl FlowSource for BatchSource {
    fn m_in(&self) -> usize {
        self.m_in
    }

    fn m_out(&self) -> usize {
        self.m_out
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        loop {
            if let Some(a) = self.cur.next() {
                return Some(a);
            }
            let (flight, chan) = (&mut self.flight, self.chan);
            match flight.wait(WaitDir::Recv, chan, || self.rx.recv()) {
                Ok(batch) => self.cur = batch.into_iter(),
                Err(_) => return None,
            }
        }
    }

    fn len_hint(&self) -> Option<usize> {
        self.len_hint
    }
}

/// Move `source` onto a dedicated ingest thread inside `scope`,
/// returning the channel-backed replacement plus the thread's telemetry
/// handle (joined by the caller).
fn spawn_ingest<'scope, S: FlowSource + Send + 'scope>(
    scope: &'scope thread::Scope<'scope, '_>,
    source: S,
    tele: &mut EngineTelemetry,
) -> (
    BatchSource,
    thread::ScopedJoinHandle<'scope, EngineTelemetry>,
) {
    let (m_in, m_out, len_hint) = (source.m_in(), source.m_out(), source.len_hint());
    let (tx, rx) = sync_channel::<Vec<Arrival>>(ARRIVAL_DEPTH);
    let arr_chan = tele.flight_chan("arrivals");
    let mut tele_i = tele.sibling("ingest");
    let handle = scope.spawn(move || {
        let mut source = source;
        loop {
            let batch = span!(tele_i, Stage::Ingest, {
                let mut batch = Vec::with_capacity(ARRIVAL_BATCH);
                while batch.len() < ARRIVAL_BATCH {
                    match source.next_arrival() {
                        Some(a) => batch.push(a),
                        None => break,
                    }
                }
                batch
            });
            if batch.is_empty() {
                break;
            }
            // Ingest learns rounds second-hand: tag this thread's
            // subsequent spans with the batch tail's release round.
            if let Some(a) = batch.last() {
                tele_i.flight_round_tag(a.release);
            }
            if tele_i.chan_send(arr_chan, || tx.send(batch)).is_err() {
                break;
            }
        }
        tele_i
    });
    (
        BatchSource {
            m_in,
            m_out,
            len_hint,
            rx,
            cur: Vec::new().into_iter(),
            flight: tele.flight().sibling("arrivals"),
            chan: arr_chan,
        },
        handle,
    )
}

/// Run `drive` with ingest moved to its own thread (2 cores) and, when
/// `offload_dispatch`, the user dispatch callback moved to a sink
/// thread as well (3 cores). The drive itself is one of the unchanged
/// sequential loops, so the schedule is identical by construction.
fn run_staged<S, F>(
    source: S,
    offload_dispatch: bool,
    tele: &mut EngineTelemetry,
    mut on_dispatch: impl FnMut(u64, u64, u64) + Send,
    drive: F,
) -> StreamStats
where
    S: FlowSource + Send,
    F: FnOnce(BatchSource, &mut EngineTelemetry, &mut dyn FnMut(u64, u64, u64)) -> StreamStats,
{
    thread::scope(|scope| {
        let (batch_source, ingest) = spawn_ingest(scope, source, tele);
        let stats;
        let mut sink_tele = None;
        if offload_dispatch {
            let (tx, rx) = sync_channel::<Vec<(u64, u64, u64)>>(DISPATCH_DEPTH);
            let disp_chan = tele.flight_chan("dispatch");
            let mut tele_d = tele.sibling("dispatch");
            let sink = scope.spawn(move || {
                while let Ok(batch) = tele_d.chan_recv(disp_chan, || rx.recv()) {
                    if let Some(&(_, _, round)) = batch.first() {
                        tele_d.flight_round_tag(round);
                    }
                    span!(tele_d, Stage::Dispatch, {
                        for (id, release, round) in batch {
                            on_dispatch(id, release, round);
                        }
                    });
                }
                tele_d
            });
            // Buffer triples per round; flush on round change or a full
            // batch. FIFO channel + in-order flushes preserve the
            // dispatch order exactly.
            let mut buf: Vec<(u64, u64, u64)> = Vec::with_capacity(DISPATCH_BATCH);
            let mut last_round = u64::MAX;
            stats = drive(batch_source, tele, &mut |id, release, round| {
                if (round != last_round || buf.len() >= DISPATCH_BATCH) && !buf.is_empty() {
                    tx.send(std::mem::replace(
                        &mut buf,
                        Vec::with_capacity(DISPATCH_BATCH),
                    ))
                    .expect("dispatch sink alive");
                }
                last_round = round;
                buf.push((id, release, round));
            });
            if !buf.is_empty() {
                tx.send(buf).expect("dispatch sink alive");
            }
            drop(tx);
            sink_tele = Some(sink.join().expect("dispatch sink"));
        } else {
            stats = drive(batch_source, tele, &mut on_dispatch);
        }
        tele.merge(&ingest.join().expect("ingest stage"));
        if let Some(t) = &sink_tele {
            tele.merge(t);
        }
        stats
    })
}

/// One queue mutation, shipped from the match stage to the shard worker
/// owning the cell's input port.
enum ShardCmd {
    /// An arrival landed on `(src, dst)`.
    Push {
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
        /// Stream id (carried only by the shard; the match stage never
        /// sees ids).
        id: u64,
        /// Release round.
        release: u64,
    },
    /// The round's matching dispatches the FIFO head of `(src, dst)`.
    Pop {
        /// Input port.
        src: u32,
        /// Output port.
        dst: u32,
    },
}

/// What the matching stage does per round in the sharded pipe, once the
/// [`Frontier`] proves the round's inputs complete. Both matchers
/// consume the same [`CellAgg`] facts the sequential drives read off
/// the real queues.
// One instance exists per run and never moves; the size gap between
// the variants costs nothing here.
#[allow(clippy::large_enum_variant)]
enum Matcher {
    /// Support-graph maximum matching ([`crate::matcher`]).
    Incremental(IncrementalMatcher),
    /// Incremental weighted matching ([`crate::wmatcher`]).
    Weighted(IncrementalWeightedMatcher),
}

impl Matcher {
    /// Mirror of the sequential drives' per-arrival matcher hook.
    fn on_push(&mut self, src: u32, dst: u32, was_empty: bool) {
        match self {
            Matcher::Incremental(m) => {
                if was_empty {
                    m.add_support_edge(src, dst);
                }
            }
            Matcher::Weighted(m) => m.note(src, dst),
        }
    }

    /// Compute the round's dispatch set into `sel` (ascending input
    /// port, exactly the sequential iteration order).
    fn select(&mut self, t: u64, agg: &CellAgg, m_in: usize, sel: &mut Vec<(u32, u32)>) {
        match self {
            Matcher::Incremental(m) => {
                m.repair();
                debug_assert!(m.size() > 0, "nonempty support must match something");
                sel.clear();
                for p in 0..m_in as u32 {
                    if let Some(q) = m.matched_output(p) {
                        sel.push((p, q));
                    }
                }
            }
            Matcher::Weighted(m) => {
                m.select(t, agg, sel);
                debug_assert!(!sel.is_empty(), "nonempty queue must match something");
            }
        }
    }

    /// Mirror of the sequential drives' per-dispatch matcher hook.
    fn on_pop(&mut self, src: u32, dst: u32, now_empty: bool) {
        match self {
            Matcher::Incremental(m) => {
                if now_empty {
                    m.remove_support_edge(src, dst);
                }
            }
            Matcher::Weighted(m) => m.note(src, dst),
        }
    }

    /// Fold the matcher's lifetime work counters into `tele` (the same
    /// counters the sequential drives report).
    fn finish(&self, tele: &mut EngineTelemetry) {
        match self {
            Matcher::Incremental(m) => {
                let (searches, augmentations) = m.work();
                tele.counter_add("match_searches", searches);
                tele.counter_add("match_augmentations", augmentations);
            }
            Matcher::Weighted(m) => {
                let (selects, cells_touched) = m.work();
                tele.counter_add("wmatch_selects", selects);
                tele.counter_add("wmatch_cells_touched", cells_touched);
            }
        }
    }
}

/// The full 4-stage sharded pipeline: ingest thread → match stage (this
/// function, on the caller's thread, so the caller's telemetry handle —
/// including any live-publish cadence — keeps counting rounds) →
/// `workers` shard workers → dispatch thread.
fn run_sharded<S: FlowSource + Send>(
    source: S,
    mut matcher: Matcher,
    workers: usize,
    tele: &mut EngineTelemetry,
    mut on_dispatch: impl FnMut(u64, u64, u64) + Send,
) -> StreamStats {
    let (m_in, m_out) = (source.m_in(), source.m_out());
    let shard_of = |p: u32| p as usize % workers;
    thread::scope(|scope| {
        let (mut src, ingest) = spawn_ingest(scope, source, tele);

        // Match → shard command channels and shard → dispatch output
        // channels, one SPSC pair per worker.
        let mut cmd_txs = Vec::with_capacity(workers);
        let mut cmd_chans = Vec::with_capacity(workers);
        let mut out_rxs = Vec::with_capacity(workers);
        let mut out_chans = Vec::with_capacity(workers);
        let mut shards = Vec::with_capacity(workers);
        for s in 0..workers {
            let (cmd_tx, cmd_rx) = sync_channel::<Vec<ShardCmd>>(CMD_DEPTH);
            let (out_tx, out_rx) = sync_channel::<Vec<(u64, u64)>>(OUT_DEPTH);
            cmd_txs.push(cmd_tx);
            out_rxs.push(out_rx);
            let cmd_chan = tele.flight_chan(&format!("cmd{s}"));
            let out_chan = tele.flight_chan(&format!("out{s}"));
            cmd_chans.push(cmd_chan);
            out_chans.push(out_chan);
            let mut tele_s = tele.sibling(&format!("shard{s}"));
            shards.push(scope.spawn(move || {
                let mut queues = ShardedQueues::new(m_in, m_out);
                let mut out: Vec<(u64, u64)> = Vec::new();
                while let Ok(cmds) = tele_s.chan_recv(cmd_chan, || cmd_rx.recv()) {
                    span!(tele_s, Stage::QueueUpdate, {
                        for cmd in cmds {
                            match cmd {
                                ShardCmd::Push {
                                    src,
                                    dst,
                                    id,
                                    release,
                                } => {
                                    queues.push(src, dst, id, release);
                                }
                                ShardCmd::Pop { src, dst } => {
                                    let (rec, _) = queues.pop_oldest(src, dst);
                                    out.push((rec.id, rec.release));
                                }
                            }
                        }
                    });
                    if !out.is_empty()
                        && tele_s
                            .chan_send(out_chan, || out_tx.send(std::mem::take(&mut out)))
                            .is_err()
                    {
                        break;
                    }
                }
                debug_assert!(queues.is_empty(), "bounded run must drain its shard");
                tele_s
            }));
        }

        // Dispatch stage: reassemble shard outputs in selection order
        // and account response times — the sequential drive's dispatch
        // block, verbatim, one thread downstream.
        let (man_tx, man_rx) = sync_channel::<(u64, Vec<(u32, u32)>)>(MANIFEST_DEPTH);
        let man_chan = tele.flight_chan("manifest");
        let mut tele_d = tele.sibling("dispatch");
        let dispatch = scope.spawn(move || {
            let mut stats = StreamStats::default();
            let mut needed = vec![0usize; workers];
            let mut bufs: Vec<(Vec<(u64, u64)>, usize)> = vec![(Vec::new(), 0); workers];
            while let Ok((t, sel)) = tele_d.chan_recv(man_chan, || man_rx.recv()) {
                tele_d.flight_round_tag(t);
                needed.fill(0);
                for &(p, _) in &sel {
                    needed[shard_of(p)] += 1;
                }
                // Collect the round's shard outputs first (blocking
                // receives, recorded as channel waits, not dispatch
                // work), then reassemble under the dispatch span.
                for (s, n) in needed.iter().enumerate() {
                    if *n > 0 {
                        let batch = tele_d
                            .chan_recv(out_chans[s], || out_rxs[s].recv())
                            .expect("shard output");
                        debug_assert_eq!(batch.len(), *n, "one output batch per round");
                        bufs[s] = (batch, 0);
                    }
                }
                span!(tele_d, Stage::Dispatch, {
                    for &(p, _) in &sel {
                        let (batch, cursor) = &mut bufs[shard_of(p)];
                        let (id, release) = batch[*cursor];
                        *cursor += 1;
                        stats.on_dispatch(release, t);
                        on_dispatch(id, release, t);
                    }
                });
            }
            (stats, tele_d)
        });

        // Match stage (caller's thread): the sequential round loop with
        // the id-free aggregate standing in for the real queues and
        // every queue mutation shipped to its port's shard.
        let mut agg = CellAgg::new(m_in, m_out);
        let mut events = EventQueue::new();
        let mut frontier = Frontier::new();
        let mut stats = StreamStats::default();
        let mut sel: Vec<(u32, u32)> = Vec::new();
        let mut cmd_bufs: Vec<Vec<ShardCmd>> = (0..workers).map(|_| Vec::new()).collect();
        let mut pending = src.next_arrival();
        let mut arrival_scheduled = None;
        if let Some(a) = &pending {
            events.push(a.release, EventKind::Arrival);
            arrival_scheduled = Some(a.release);
        }
        while let Some(t) = events.pop_round() {
            tele.flight_round(t);
            span!(tele, Stage::Ingest, {
                while let Some(a) = pending {
                    if a.release > t {
                        break;
                    }
                    let was_empty = agg.push(a.src, a.dst, a.release);
                    matcher.on_push(a.src, a.dst, was_empty);
                    cmd_bufs[shard_of(a.src)].push(ShardCmd::Push {
                        src: a.src,
                        dst: a.dst,
                        id: a.id,
                        release: a.release,
                    });
                    stats.arrived += 1;
                    pending = src.next_arrival();
                }
                frontier.observe(pending.as_ref());
                if let Some(a) = &pending {
                    if arrival_scheduled != Some(a.release) {
                        events.push(a.release, EventKind::Arrival);
                        arrival_scheduled = Some(a.release);
                    }
                }
            });
            stats.peak_queue = stats.peak_queue.max(agg.len());
            assert!(
                frontier.round_complete(t),
                "matching may not fire before round {t}'s inputs are complete"
            );
            if agg.is_empty() {
                debug_assert!(cmd_bufs.iter().all(|b| b.is_empty()));
                continue;
            }
            tele.decision(|| matcher.select(t, &agg, m_in, &mut sel));
            if !sel.is_empty() {
                stats.active_rounds += 1;
            }
            // Manifest before pop commands — see the module docs on
            // deadlock freedom.
            tele.chan_send(man_chan, || man_tx.send((t, sel.clone())))
                .expect("dispatch stage alive");
            for &(p, q) in &sel {
                cmd_bufs[shard_of(p)].push(ShardCmd::Pop { src: p, dst: q });
                let (_release, now_empty) = agg.pop(p, q);
                matcher.on_pop(p, q, now_empty);
            }
            // Command flush: the (possibly blocking) per-shard sends are
            // recorded as channel waits rather than queue_update work —
            // the shards account the actual queue mutations.
            for (s, buf) in cmd_bufs.iter_mut().enumerate() {
                if !buf.is_empty() {
                    let cmds = std::mem::take(buf);
                    tele.chan_send(cmd_chans[s], || cmd_txs[s].send(cmds))
                        .expect("shard alive");
                }
            }
            if !agg.is_empty() {
                events.push(t + 1, EventKind::Dispatch);
            }
            tele.round();
        }
        drop(man_tx);
        drop(cmd_txs);
        matcher.finish(tele);
        let (dstats, tele_dispatch) = dispatch.join().expect("dispatch stage");
        stats.dispatched = dstats.dispatched;
        stats.total_response = dstats.total_response;
        stats.max_response = dstats.max_response;
        stats.makespan = dstats.makespan;
        tele.merge(&tele_dispatch);
        tele.merge(&ingest.join().expect("ingest stage"));
        for shard in shards {
            tele.merge(&shard.join().expect("shard worker"));
        }
        tele.flight_round_finish();
        finish_telemetry(tele, &stats);
        stats
    })
}

/// [`crate::run_stream_telemetry`] spread across up to `cores` threads.
/// The schedule — the `on_dispatch` sequence and the returned
/// [`StreamStats`] — is bit-identical to the sequential drive's for
/// every mode; `cores <= 1` *is* the sequential drive.
///
/// Stage placement by budget: 2 cores moves ingest to its own thread;
/// 3 adds a dispatch sink; ≥ 4 shards the queue updates across
/// `cores - 3` workers for the incremental and weighted modes. MaxCard
/// and FifoGreedy keep their global legacy-parity waiting vector and
/// cap at the 3-stage pipe.
pub fn run_stream_cores<S: FlowSource + Send>(
    source: S,
    mode: EngineMode,
    cores: usize,
    tele: &mut EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64) + Send,
) -> StreamStats {
    if cores <= 1 {
        return crate::run_stream_telemetry(source, mode, tele, on_dispatch);
    }
    match (mode, cores) {
        (EngineMode::Incremental, 4..) => {
            let matcher =
                Matcher::Incremental(IncrementalMatcher::new(source.m_in(), source.m_out()));
            run_sharded(source, matcher, cores - 3, tele, on_dispatch)
        }
        (EngineMode::Exact(b), 4..) if b.weight_model().is_some() => {
            let model = b.weight_model().expect("checked");
            run_weighted_cores(source, model, cores, tele, on_dispatch)
        }
        _ => run_staged(source, cores >= 3, tele, on_dispatch, |src, tele, cb| {
            crate::run_stream_telemetry(src, mode, tele, cb)
        }),
    }
}

/// The weighted drive's multi-core form: any [`WeightModel`]
/// (including `AgedMaxWeight`) through the sharded pipe at ≥ 4 cores,
/// the staged pipe below.
pub fn run_weighted_cores<S: FlowSource + Send>(
    source: S,
    model: WeightModel,
    cores: usize,
    tele: &mut EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64) + Send,
) -> StreamStats {
    if cores <= 1 {
        return stream::drive_weighted(source, model, tele, on_dispatch);
    }
    if cores >= 4 {
        let matcher = Matcher::Weighted(IncrementalWeightedMatcher::new(
            model,
            source.m_in(),
            source.m_out(),
        ));
        return run_sharded(source, matcher, cores - 3, tele, on_dispatch);
    }
    run_staged(source, cores >= 3, tele, on_dispatch, |src, tele, cb| {
        stream::drive_weighted(src, model, tele, cb)
    })
}

/// [`crate::run_stream_failures_telemetry`] spread across up to `cores`
/// threads (capped at the 3-stage pipe: the failure drive's
/// waiting-vector discipline is global by design). Schedules are
/// bit-identical to the sequential failure drive's.
pub fn run_failures_cores<S: FlowSource + Send, P: OnlinePolicy + ?Sized>(
    source: S,
    policy: &mut P,
    plan: &FailurePlan,
    cores: usize,
    tele: &mut EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64) + Send,
) -> StreamStats {
    if cores <= 1 {
        return outage::drive_failures(source, policy, plan, tele, on_dispatch);
    }
    run_staged(source, cores >= 3, tele, on_dispatch, |src, tele, cb| {
        outage::drive_failures(src, policy, plan, tele, cb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PoissonSource;
    use crate::BuiltinPolicy;

    #[test]
    fn frontier_tracks_round_completeness() {
        let mut f = Frontier::new();
        assert!(!f.round_complete(0), "nothing observed yet");
        let a = Arrival {
            id: 0,
            src: 0,
            dst: 0,
            release: 5,
        };
        f.observe(Some(&a));
        assert!(f.round_complete(4));
        assert!(!f.round_complete(5), "round 5 may still receive arrivals");
        f.observe(None);
        assert!(f.round_complete(5), "closed stream completes every round");
        assert!(f.round_complete(u64::MAX));
    }

    /// Every cores level reproduces the 1-core stats and dispatch
    /// sequence on a Poisson stream, per mode (the full differential
    /// suite lives in `tests/pipeline_differential.rs`).
    #[test]
    fn cores_levels_agree_on_stats_and_schedule() {
        for mode in [
            EngineMode::Incremental,
            EngineMode::Exact(BuiltinPolicy::MaxCard),
            EngineMode::Exact(BuiltinPolicy::MinRTime),
            EngineMode::Exact(BuiltinPolicy::MaxWeight),
            EngineMode::Exact(BuiltinPolicy::FifoGreedy),
        ] {
            let run = |cores: usize| {
                let mut schedule = Vec::new();
                let stats = run_stream_cores(
                    PoissonSource::new(6, 5.0, Some(40), 11),
                    mode,
                    cores,
                    &mut EngineTelemetry::disabled(),
                    |id, release, round| schedule.push((id, release, round)),
                );
                (stats, schedule)
            };
            let base = run(1);
            for cores in [2, 3, 4, 6] {
                assert_eq!(run(cores), base, "mode {mode:?} at {cores} cores");
            }
        }
    }

    #[test]
    fn sharded_pipe_handles_empty_and_tiny_streams() {
        struct Empty;
        impl FlowSource for Empty {
            fn m_in(&self) -> usize {
                3
            }
            fn m_out(&self) -> usize {
                3
            }
            fn next_arrival(&mut self) -> Option<Arrival> {
                None
            }
        }
        let stats = run_stream_cores(
            Empty,
            EngineMode::Incremental,
            4,
            &mut EngineTelemetry::disabled(),
            |_, _, _| {},
        );
        assert_eq!(stats, StreamStats::default());

        let stats = run_weighted_cores(
            PoissonSource::new(2, 0.5, Some(3), 1),
            WeightModel::AgedMaxWeight { gamma_q: 512 },
            5,
            &mut EngineTelemetry::disabled(),
            |_, _, _| {},
        );
        assert_eq!(stats.arrived, stats.dispatched);
    }
}
