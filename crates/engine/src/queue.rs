//! Per-port sharded queue state for the incremental engine.
//!
//! Waiting flows live in a slab (freelist-recycled, so memory stays
//! `O(peak queue)` even on endless streams) and are threaded into one FIFO
//! list per `(input, output)` cell. The cell arrays are laid out row-major
//! by input port — all cells of one input port are contiguous — so a burst
//! hammering one port touches one cache region ("sharded by port"). Sized
//! comfortably for the paper's `m = 150`, `M = 4m` stress cell and beyond:
//! state is `O(m_in * m_out)` words plus `O(queue)` slab entries.

use std::collections::VecDeque;

/// Sentinel for "no slot".
pub const NIL: u32 = u32::MAX;

/// Read-only view of per-cell queue state — exactly the facts the
/// weighted matcher consults each round ([`crate::wmatcher`]): cell
/// occupancy, per-port totals, and the release round of each cell's
/// FIFO head. [`ShardedQueues`] implements it directly; the pipelined
/// engine's match stage implements it over [`CellAgg`], an id-free
/// aggregate mirror, so matching decisions never need the flow ids that
/// live on the shard workers.
pub trait QueueView {
    /// Flows waiting in `cell` (row-major index, see
    /// [`ShardedQueues::cell`]).
    fn cell_count(&self, cell: usize) -> u32;
    /// Queue length at input port `p`.
    fn in_total(&self, p: u32) -> u32;
    /// Queue length at output port `q`.
    fn out_total(&self, q: u32) -> u32;
    /// Release round of the oldest waiting flow of `(src, dst)`.
    fn head_release(&self, src: u32, dst: u32) -> Option<u64>;
}

impl QueueView for ShardedQueues {
    #[inline]
    fn cell_count(&self, cell: usize) -> u32 {
        self.count(cell)
    }

    #[inline]
    fn in_total(&self, p: u32) -> u32 {
        ShardedQueues::in_total(self, p)
    }

    #[inline]
    fn out_total(&self, q: u32) -> u32 {
        ShardedQueues::out_total(self, q)
    }

    #[inline]
    fn head_release(&self, src: u32, dst: u32) -> Option<u64> {
        self.peek_oldest(src, dst).map(|f| f.release)
    }
}

/// A queued flow in the slab.
#[derive(Debug, Clone, Copy)]
pub struct QueuedFlow {
    /// Stream id (source-assigned).
    pub id: u64,
    /// Release round (for response-time accounting).
    pub release: u64,
    /// Next-oldest flow in the same cell (intrusive list).
    next: u32,
}

/// Sharded per-cell FIFO queues over an `m_in x m_out` port grid.
#[derive(Debug)]
pub struct ShardedQueues {
    m_out: usize,
    /// Waiting flows per cell (row-major by input port).
    count: Vec<u32>,
    head: Vec<u32>,
    tail: Vec<u32>,
    /// Per-input-port totals (queue length seen by that shard).
    in_totals: Vec<u32>,
    /// Per-output-port totals.
    out_totals: Vec<u32>,
    slab: Vec<QueuedFlow>,
    free: Vec<u32>,
    len: usize,
}

impl ShardedQueues {
    /// Empty state for an `m_in x m_out` switch.
    pub fn new(m_in: usize, m_out: usize) -> ShardedQueues {
        let cells = m_in * m_out;
        ShardedQueues {
            m_out,
            count: vec![0; cells],
            head: vec![NIL; cells],
            tail: vec![NIL; cells],
            in_totals: vec![0; m_in],
            out_totals: vec![0; m_out],
            slab: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Cell index of `(src, dst)`.
    #[inline]
    pub fn cell(&self, src: u32, dst: u32) -> usize {
        src as usize * self.m_out + dst as usize
    }

    /// Flows waiting in `cell`.
    #[inline]
    pub fn count(&self, cell: usize) -> u32 {
        self.count[cell]
    }

    /// Total waiting flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no flow is waiting.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue length at input port `p`.
    #[inline]
    pub fn in_total(&self, p: u32) -> u32 {
        self.in_totals[p as usize]
    }

    /// Queue length at output port `q`.
    #[inline]
    pub fn out_total(&self, q: u32) -> u32 {
        self.out_totals[q as usize]
    }

    /// Enqueue a flow; returns `true` when the cell was previously empty
    /// (i.e. a new support edge appeared).
    pub fn push(&mut self, src: u32, dst: u32, id: u64, release: u64) -> bool {
        let cell = self.cell(src, dst);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slab[s as usize] = QueuedFlow {
                    id,
                    release,
                    next: NIL,
                };
                s
            }
            None => {
                self.slab.push(QueuedFlow {
                    id,
                    release,
                    next: NIL,
                });
                (self.slab.len() - 1) as u32
            }
        };
        let was_empty = self.count[cell] == 0;
        if was_empty {
            self.head[cell] = slot;
        } else {
            let t = self.tail[cell] as usize;
            self.slab[t].next = slot;
        }
        self.tail[cell] = slot;
        self.count[cell] += 1;
        self.in_totals[src as usize] += 1;
        self.out_totals[dst as usize] += 1;
        self.len += 1;
        was_empty
    }

    /// The oldest waiting flow of `(src, dst)` without dequeuing it —
    /// what [`ShardedQueues::pop_oldest`] would return. The cell-FIFO
    /// order makes this the flow with the smallest `(release, id)`, i.e.
    /// the representative edge the weighted policies dispatch.
    #[inline]
    pub fn peek_oldest(&self, src: u32, dst: u32) -> Option<&QueuedFlow> {
        let head = self.head[self.cell(src, dst)];
        (head != NIL).then(|| &self.slab[head as usize])
    }

    /// Dequeue the oldest flow of `(src, dst)`; returns it plus `true`
    /// when the cell is now empty (support edge vanished). Panics on an
    /// empty cell — callers dispatch only matched (hence occupied) cells.
    pub fn pop_oldest(&mut self, src: u32, dst: u32) -> (QueuedFlow, bool) {
        let cell = self.cell(src, dst);
        assert!(self.count[cell] > 0, "pop from empty cell ({src}, {dst})");
        let slot = self.head[cell];
        let rec = self.slab[slot as usize];
        self.head[cell] = rec.next;
        if rec.next == NIL {
            self.tail[cell] = NIL;
        }
        self.free.push(slot);
        self.count[cell] -= 1;
        self.in_totals[src as usize] -= 1;
        self.out_totals[dst as usize] -= 1;
        self.len -= 1;
        (rec, self.count[cell] == 0)
    }
}

/// Id-free aggregate mirror of [`ShardedQueues`]: per-cell occupancy,
/// per-port totals, and each cell's FIFO head *release* — everything a
/// matcher consults, nothing a dispatcher needs. The pipelined engine's
/// match stage drives one of these while the id-carrying queues live
/// sharded across worker threads.
///
/// Releases within one cell are nondecreasing (the [`crate::FlowSource`]
/// ordering contract), so each cell's queue compresses to a
/// run-length-encoded deque of `(release, count)` runs: a burst of `k`
/// same-round arrivals on one cell costs one entry, and the head release
/// is `O(1)`.
#[derive(Debug)]
pub struct CellAgg {
    m_out: usize,
    /// RLE runs of waiting releases, oldest first, per cell (row-major).
    runs: Vec<VecDeque<(u64, u32)>>,
    count: Vec<u32>,
    in_totals: Vec<u32>,
    out_totals: Vec<u32>,
    len: usize,
}

impl CellAgg {
    /// Empty aggregate for an `m_in x m_out` switch.
    pub fn new(m_in: usize, m_out: usize) -> CellAgg {
        let cells = m_in * m_out;
        CellAgg {
            m_out,
            runs: vec![VecDeque::new(); cells],
            count: vec![0; cells],
            in_totals: vec![0; m_in],
            out_totals: vec![0; m_out],
            len: 0,
        }
    }

    /// Cell index of `(src, dst)`.
    #[inline]
    pub fn cell(&self, src: u32, dst: u32) -> usize {
        src as usize * self.m_out + dst as usize
    }

    /// Total waiting flows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no flow is waiting.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Record an arrival; returns `true` when the cell was previously
    /// empty (mirrors [`ShardedQueues::push`]).
    pub fn push(&mut self, src: u32, dst: u32, release: u64) -> bool {
        let cell = self.cell(src, dst);
        let was_empty = self.count[cell] == 0;
        match self.runs[cell].back_mut() {
            Some((rel, n)) if *rel == release => *n += 1,
            _ => {
                debug_assert!(
                    self.runs[cell].back().is_none_or(|&(rel, _)| rel < release),
                    "releases within a cell must be nondecreasing"
                );
                self.runs[cell].push_back((release, 1));
            }
        }
        self.count[cell] += 1;
        self.in_totals[src as usize] += 1;
        self.out_totals[dst as usize] += 1;
        self.len += 1;
        was_empty
    }

    /// Record a dispatch of the cell's FIFO head; returns its release
    /// plus `true` when the cell is now empty (mirrors
    /// [`ShardedQueues::pop_oldest`]). Panics on an empty cell.
    pub fn pop(&mut self, src: u32, dst: u32) -> (u64, bool) {
        let cell = self.cell(src, dst);
        assert!(self.count[cell] > 0, "pop from empty cell ({src}, {dst})");
        let release = {
            let (rel, n) = self.runs[cell].front_mut().expect("occupied cell has runs");
            let release = *rel;
            *n -= 1;
            if *n == 0 {
                self.runs[cell].pop_front();
            }
            release
        };
        self.count[cell] -= 1;
        self.in_totals[src as usize] -= 1;
        self.out_totals[dst as usize] -= 1;
        self.len -= 1;
        (release, self.count[cell] == 0)
    }
}

impl QueueView for CellAgg {
    #[inline]
    fn cell_count(&self, cell: usize) -> u32 {
        self.count[cell]
    }

    #[inline]
    fn in_total(&self, p: u32) -> u32 {
        self.in_totals[p as usize]
    }

    #[inline]
    fn out_total(&self, q: u32) -> u32 {
        self.out_totals[q as usize]
    }

    #[inline]
    fn head_release(&self, src: u32, dst: u32) -> Option<u64> {
        self.runs[self.cell(src, dst)].front().map(|&(rel, _)| rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_a_cell() {
        let mut q = ShardedQueues::new(2, 2);
        assert!(q.push(1, 0, 10, 0));
        assert!(!q.push(1, 0, 11, 1));
        assert!(!q.push(1, 0, 12, 2));
        assert_eq!(q.len(), 3);
        assert_eq!(q.in_total(1), 3);
        assert_eq!(q.out_total(0), 3);
        let (a, empty) = q.pop_oldest(1, 0);
        assert_eq!((a.id, empty), (10, false));
        let (b, _) = q.pop_oldest(1, 0);
        assert_eq!(b.id, 11);
        let (c, empty) = q.pop_oldest(1, 0);
        assert_eq!((c.id, empty), (12, true));
        assert!(q.is_empty());
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = ShardedQueues::new(1, 1);
        for round in 0..100u64 {
            q.push(0, 0, round, round);
            let (rec, _) = q.pop_oldest(0, 0);
            assert_eq!(rec.id, round);
        }
        // One live flow at a time => slab never grew past 1 slot.
        assert_eq!(q.slab.len(), 1);
    }

    #[test]
    fn totals_track_ports_independently() {
        let mut q = ShardedQueues::new(3, 3);
        q.push(0, 1, 1, 0);
        q.push(0, 2, 2, 0);
        q.push(1, 1, 3, 0);
        assert_eq!(q.in_total(0), 2);
        assert_eq!(q.in_total(1), 1);
        assert_eq!(q.out_total(1), 2);
        assert_eq!(q.count(q.cell(0, 1)), 1);
    }

    #[test]
    #[should_panic(expected = "empty cell")]
    fn popping_an_empty_cell_is_a_bug() {
        let mut q = ShardedQueues::new(1, 1);
        let _ = q.pop_oldest(0, 0);
    }

    /// The pipelined match stage relies on `CellAgg` answering every
    /// `QueueView` question identically to the real queues under the
    /// same mutation sequence.
    #[test]
    fn cell_agg_mirrors_sharded_queues() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(0xA66);
        let (m_in, m_out) = (3usize, 4usize);
        let mut real = ShardedQueues::new(m_in, m_out);
        let mut agg = CellAgg::new(m_in, m_out);
        let mut id = 0u64;
        for t in 0u64..200 {
            for _ in 0..rng.gen_range(0..4u32) {
                let (p, q) = (
                    rng.gen_range(0..m_in as u32),
                    rng.gen_range(0..m_out as u32),
                );
                assert_eq!(real.push(p, q, id, t), agg.push(p, q, t));
                id += 1;
            }
            // Pop a random occupied cell, if any.
            for p in 0..m_in as u32 {
                for q in 0..m_out as u32 {
                    if real.count(real.cell(p, q)) > 0 && rng.gen_bool(0.5) {
                        let (rec, now_empty) = real.pop_oldest(p, q);
                        assert_eq!(agg.pop(p, q), (rec.release, now_empty));
                    }
                }
            }
            assert_eq!(real.len(), agg.len());
            for p in 0..m_in as u32 {
                assert_eq!(QueueView::in_total(&real, p), QueueView::in_total(&agg, p));
                for q in 0..m_out as u32 {
                    let cell = real.cell(p, q);
                    assert_eq!(real.cell_count(cell), agg.cell_count(cell));
                    assert_eq!(real.head_release(p, q), agg.head_release(p, q));
                }
            }
            for q in 0..m_out as u32 {
                assert_eq!(
                    QueueView::out_total(&real, q),
                    QueueView::out_total(&agg, q)
                );
            }
        }
    }
}
