//! Incremental maximum matching over the *support graph*.
//!
//! The waiting multigraph `G_t` can hold tens of thousands of parallel
//! edges at `M = 4m`, but its *support* — the set of `(input, output)`
//! cells with at least one waiting flow — is at most `m_in * m_out` and
//! changes sparsely: a round adds support edges only for cells that were
//! empty and removes only cells that drained to zero. [`IncrementalMatcher`]
//! keeps a maximum matching of the support graph across rounds and repairs
//! it with augmenting-path searches rooted at the exposed (dirtied) ports
//! only, instead of re-running Hopcroft–Karp from a cold start each round.
//!
//! Correctness leans on two classical facts: (1) by Berge's lemma a
//! matching is maximum iff no augmenting path exists, so repairing any
//! inherited matching to path-freeness restores maximality regardless of
//! history; and (2) within one repair pass, a free vertex with no
//! augmenting path now cannot gain one after other augmentations (the
//! standard Kuhn's-algorithm lemma), so a single pass over exposed ports
//! suffices. A support change can alter the matching size by at most one
//! edge's worth per insertion/deletion, which is why the repair work
//! tracks the *churn*, not the queue size.

/// Sentinel for "unmatched".
const NIL: u32 = u32::MAX;

/// Dynamic maximum bipartite matching with incremental repair.
#[derive(Debug)]
pub struct IncrementalMatcher {
    m_in: usize,
    m_out: usize,
    /// Active right-neighbors per left port (support adjacency).
    adj: Vec<Vec<u32>>,
    /// Position of cell `(p, q)` inside `adj[p]`, for O(1) removal.
    pos_in_adj: Vec<u32>,
    match_l: Vec<u32>,
    match_r: Vec<u32>,
    size: usize,
    /// Support changed since the last [`IncrementalMatcher::repair`]?
    dirty: bool,
    /// DFS visited stamps (right side), bumped per search.
    vis_r: Vec<u32>,
    epoch: u32,
    /// Augmenting-path searches launched (telemetry).
    searches: u64,
    /// Searches that found a path and grew the matching (telemetry).
    augmentations: u64,
}

impl IncrementalMatcher {
    /// Empty matcher over an `m_in x m_out` port grid.
    pub fn new(m_in: usize, m_out: usize) -> IncrementalMatcher {
        IncrementalMatcher {
            m_in,
            m_out,
            adj: vec![Vec::new(); m_in],
            pos_in_adj: vec![NIL; m_in * m_out],
            match_l: vec![NIL; m_in],
            match_r: vec![NIL; m_out],
            size: 0,
            dirty: false,
            vis_r: vec![0; m_out],
            epoch: 0,
            searches: 0,
            augmentations: 0,
        }
    }

    /// Lifetime work counters: `(searches, augmentations)` — DFS
    /// launches and the subset that grew the matching. Cheap enough to
    /// maintain unconditionally; surfaced through engine telemetry.
    pub fn work(&self) -> (u64, u64) {
        (self.searches, self.augmentations)
    }

    /// Current matching size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Matched output port of input `p`, if any.
    #[inline]
    pub fn matched_output(&self, p: u32) -> Option<u32> {
        let q = self.match_l[p as usize];
        (q != NIL).then_some(q)
    }

    /// A support edge `(p, q)` appeared (its cell went 0 → 1 flows).
    pub fn add_support_edge(&mut self, p: u32, q: u32) {
        let cell = p as usize * self.m_out + q as usize;
        debug_assert_eq!(self.pos_in_adj[cell], NIL, "edge added twice");
        self.pos_in_adj[cell] = self.adj[p as usize].len() as u32;
        self.adj[p as usize].push(q);
        self.dirty = true;
    }

    /// A support edge `(p, q)` vanished (its cell drained to 0 flows).
    /// If it carried the matching, the endpoints become exposed and the
    /// next [`IncrementalMatcher::repair`] re-augments from them.
    pub fn remove_support_edge(&mut self, p: u32, q: u32) {
        let cell = p as usize * self.m_out + q as usize;
        let pos = self.pos_in_adj[cell];
        debug_assert_ne!(pos, NIL, "removing an absent edge");
        let row = &mut self.adj[p as usize];
        row.swap_remove(pos as usize);
        self.pos_in_adj[cell] = NIL;
        if let Some(&moved_q) = row.get(pos as usize) {
            self.pos_in_adj[p as usize * self.m_out + moved_q as usize] = pos;
        }
        if self.match_l[p as usize] == q {
            self.match_l[p as usize] = NIL;
            self.match_r[q as usize] = NIL;
            self.size -= 1;
            // Only losing a *matched* edge can make the matching
            // non-maximum; deleting an unmatched edge never creates an
            // augmenting path, so it does not dirty the matching.
            self.dirty = true;
        }
    }

    /// Restore maximality after a batch of support changes: one Kuhn's
    /// pass of augmenting-path DFS from each exposed input port. No-op
    /// when the support is unchanged since the last repair (the common
    /// steady-state round).
    pub fn repair(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        if self.size == self.m_in.min(self.m_out) {
            return; // perfect on the smaller side; nothing to gain
        }
        for p in 0..self.m_in as u32 {
            if self.match_l[p as usize] == NIL && !self.adj[p as usize].is_empty() {
                self.epoch = self.epoch.wrapping_add(1);
                if self.epoch == 0 {
                    // Stamp wrapped (possible on endless streams): reset
                    // the visited grid once so stale stamps cannot alias.
                    self.vis_r.fill(0);
                    self.epoch = 1;
                }
                self.searches += 1;
                if self.try_augment(p) {
                    self.augmentations += 1;
                    self.size += 1;
                    if self.size == self.m_in.min(self.m_out) {
                        return;
                    }
                }
            }
        }
    }

    /// DFS for an augmenting path from exposed input `p` (iterative, with
    /// an explicit stack; `m` can be large).
    fn try_augment(&mut self, p: u32) -> bool {
        // Stack of (left port, index into its adjacency).
        let mut stack: Vec<(u32, usize)> = vec![(p, 0)];
        // Right ports on the current path, parallel to `stack` edges.
        let mut path: Vec<u32> = Vec::new();
        while let Some(&(u, i)) = stack.last() {
            if i >= self.adj[u as usize].len() {
                stack.pop();
                path.pop();
                continue;
            }
            stack.last_mut().expect("nonempty").1 += 1;
            let q = self.adj[u as usize][i];
            if self.vis_r[q as usize] == self.epoch {
                continue;
            }
            self.vis_r[q as usize] = self.epoch;
            path.push(q);
            let w = self.match_r[q as usize];
            if w == NIL {
                // Augment along stack/path: flip all edges.
                for k in (0..stack.len()).rev() {
                    let (l, _) = stack[k];
                    let r = path[k];
                    self.match_l[l as usize] = r;
                    self.match_r[r as usize] = l;
                }
                return true;
            }
            stack.push((w, 0));
        }
        false
    }

    /// Debug-check: the stored matching is consistent and lies in the
    /// support.
    #[cfg(test)]
    fn check_invariants(&self) {
        let mut size = 0;
        for p in 0..self.m_in {
            let q = self.match_l[p];
            if q != NIL {
                assert_eq!(self.match_r[q as usize], p as u32);
                assert_ne!(self.pos_in_adj[p * self.m_out + q as usize], NIL);
                size += 1;
            }
        }
        assert_eq!(size, self.size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force maximum matching over the current support.
    fn brute_max(m: &IncrementalMatcher) -> usize {
        fn rec(edges: &[(u32, u32)], i: usize, ul: u64, ur: u64) -> usize {
            if i == edges.len() {
                return 0;
            }
            let (p, q) = edges[i];
            let skip = rec(edges, i + 1, ul, ur);
            if ul & (1 << p) == 0 && ur & (1 << q) == 0 {
                skip.max(1 + rec(edges, i + 1, ul | (1 << p), ur | (1 << q)))
            } else {
                skip
            }
        }
        let mut edges = Vec::new();
        for p in 0..m.m_in {
            for &q in &m.adj[p] {
                edges.push((p as u32, q));
            }
        }
        rec(&edges, 0, 0, 0)
    }

    #[test]
    fn grows_with_insertions() {
        let mut m = IncrementalMatcher::new(3, 3);
        m.add_support_edge(0, 0);
        m.repair();
        assert_eq!(m.size(), 1);
        m.add_support_edge(1, 0);
        m.add_support_edge(1, 1);
        m.repair();
        assert_eq!(m.size(), 2);
        m.check_invariants();
    }

    #[test]
    fn insertion_triggers_augmenting_path() {
        // 0-0 matched, 1 wants 0: adding (0,1) must free port 0 for 1.
        let mut m = IncrementalMatcher::new(2, 2);
        m.add_support_edge(0, 0);
        m.add_support_edge(1, 0);
        m.repair();
        assert_eq!(m.size(), 1);
        m.add_support_edge(0, 1);
        m.repair();
        assert_eq!(m.size(), 2);
        m.check_invariants();
    }

    #[test]
    fn removal_of_matched_edge_repairs() {
        let mut m = IncrementalMatcher::new(2, 2);
        m.add_support_edge(0, 0);
        m.add_support_edge(0, 1);
        m.add_support_edge(1, 0);
        m.repair();
        assert_eq!(m.size(), 2);
        // Remove whichever edge matches input 0; the matcher must recover
        // a size-2 matching via the remaining edges... unless impossible.
        let q = m.matched_output(0).unwrap();
        m.remove_support_edge(0, q);
        m.repair();
        assert_eq!(m.size(), brute_max(&m));
        m.check_invariants();
    }

    #[test]
    fn randomized_against_brute_force() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for trial in 0..300 {
            let m_in = rng.gen_range(1..6usize);
            let m_out = rng.gen_range(1..6usize);
            let mut m = IncrementalMatcher::new(m_in, m_out);
            let mut present: Vec<(u32, u32)> = Vec::new();
            for _step in 0..40 {
                let insert = present.is_empty() || rng.gen_bool(0.6);
                if insert {
                    let p = rng.gen_range(0..m_in as u32);
                    let q = rng.gen_range(0..m_out as u32);
                    if !present.contains(&(p, q)) {
                        present.push((p, q));
                        m.add_support_edge(p, q);
                    }
                } else {
                    let i = rng.gen_range(0..present.len());
                    let (p, q) = present.swap_remove(i);
                    m.remove_support_edge(p, q);
                }
                m.repair();
                assert_eq!(
                    m.size(),
                    brute_max(&m),
                    "trial {trial}: not maximum on support {present:?}"
                );
                m.check_invariants();
            }
        }
    }

    #[test]
    fn repair_is_noop_when_clean() {
        let mut m = IncrementalMatcher::new(2, 2);
        m.add_support_edge(0, 1);
        m.repair();
        let before = m.size();
        m.repair(); // clean: must not scan or change anything
        assert_eq!(m.size(), before);
    }
}
