//! # fss-engine — event-driven incremental scheduling engine
//!
//! The paper's experiments (§5.2.1, Figures 6–7) stress an `m x m` switch
//! with Poisson arrivals up to `M = 4m`. The reference runner
//! ([`fss_online::run_policy`]) advances round by round, rebuilds the
//! waiting graph, and re-solves a matching from a cold start every round —
//! even though per-round change is sparse (a few arrivals, at most `m`
//! departures). This crate is the event-driven, incremental replacement on
//! that hot path:
//!
//! * [`events`] — a calendar/event queue: the simulation jumps between
//!   arrival and dispatch events instead of ticking `t += 1`, so idle
//!   rounds are never visited;
//! * [`source`] — the [`FlowSource`] streaming-arrival trait with a batch
//!   [`Instance`] adapter and an unbounded Poisson generator, so
//!   workloads no longer need to be materialized up front;
//! * [`queue`] — per-port sharded queue state (cell-FIFO slab) sized for
//!   `m = 150`, `M = 4m` and beyond;
//! * [`matcher`] — an [`IncrementalMatcher`] that maintains a maximum
//!   matching of the waiting *support graph* across rounds and repairs it
//!   with augmenting paths rooted only at ports dirtied by
//!   arrivals/departures;
//! * [`wmatcher`] — the weighted sibling: an
//!   [`IncrementalWeightedMatcher`] that carries Hungarian dual
//!   potentials and the max-weight assignment across rounds for the
//!   MinRTime/MaxWeight policies, re-solving only rows dirtied by
//!   arrivals, dispatches, and outage windows (the batch Hungarian stays
//!   as the differential-test oracle);
//! * [`exact`] — an exact-parity core reproducing the legacy runner's
//!   decisions round-for-round (differentially tested), with a
//!   dedup-compressed Hopcroft–Karp fast path for MaxCard.
//!
//! ## Entry points
//!
//! * [`run_policy`] / [`run_builtin`] — drop-in replacements for the
//!   legacy loop on a batch [`Instance`]; schedules are round-for-round
//!   identical to [`fss_online::run_policy`]'s (the legacy loop stays
//!   available as the reference implementation for differential testing).
//! * [`run_incremental`] — the incremental matcher on a batch instance:
//!   every round dispatches a *maximum* matching of its waiting graph
//!   (the MaxCard equivalence class), chosen oldest-first within a cell.
//! * [`run_stream`] — drive any [`FlowSource`] (bounded or endless) and
//!   collect [`StreamStats`] in `O(peak queue)` memory.

#![deny(missing_docs)]

pub mod events;
pub mod exact;
pub mod matcher;
pub mod outage;
pub mod pipeline;
pub mod queue;
pub mod source;
pub mod stream;
pub mod wmatcher;

use fss_core::prelude::*;
use fss_online::{FifoGreedy, OnlinePolicy, WeightModel};

pub use events::{EventKind, EventQueue};
pub use fss_telemetry::{EngineTelemetry, Stage};
pub use matcher::IncrementalMatcher;
pub use pipeline::{run_failures_cores, run_stream_cores, run_weighted_cores, Frontier};
pub use queue::{CellAgg, QueueView, ShardedQueues};
pub use source::{poisson, Arrival, ChannelSource, FlowSource, InstanceSource, PoissonSource};
pub use stream::StreamStats;
pub use wmatcher::IncrementalWeightedMatcher;

use exact::Selector;

/// The built-in round policies the engine can run with fast paths /
/// shared policy code (mirrors `fss_sim::PolicyKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinPolicy {
    /// Maximum-cardinality matching (dedup-compressed Hopcroft–Karp).
    MaxCard,
    /// Max-weight matching, weight = waiting time.
    MinRTime,
    /// Max-weight matching, weight = endpoint queue sizes.
    MaxWeight,
    /// Oldest-first greedy baseline.
    FifoGreedy,
}

impl BuiltinPolicy {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BuiltinPolicy::MaxCard => "MaxCard",
            BuiltinPolicy::MinRTime => "MinRTime",
            BuiltinPolicy::MaxWeight => "MaxWeight",
            BuiltinPolicy::FifoGreedy => "FifoGreedy",
        }
    }

    /// Parse a CLI-style name (`maxcard`, `minrtime`, `maxweight`, `fifo`).
    pub fn parse(s: &str) -> Option<BuiltinPolicy> {
        match s {
            "maxcard" => Some(BuiltinPolicy::MaxCard),
            "minrtime" => Some(BuiltinPolicy::MinRTime),
            "maxweight" => Some(BuiltinPolicy::MaxWeight),
            "fifo" | "fifogreedy" => Some(BuiltinPolicy::FifoGreedy),
            _ => None,
        }
    }

    /// The weight model of this policy's cell graph, when it is one of
    /// the weighted heuristics (the engine's incremental-weighted drive
    /// covers exactly these).
    pub fn weight_model(self) -> Option<WeightModel> {
        match self {
            BuiltinPolicy::MinRTime => Some(WeightModel::MinRTime),
            BuiltinPolicy::MaxWeight => Some(WeightModel::MaxWeight),
            BuiltinPolicy::MaxCard | BuiltinPolicy::FifoGreedy => None,
        }
    }
}

/// How [`run_stream`] extracts each round's dispatch set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Exact-parity execution of a built-in policy.
    Exact(BuiltinPolicy),
    /// The incremental support-graph matcher (MaxCard-equivalent
    /// cardinality, fastest mode).
    Incremental,
}

fn assert_unit(inst: &Instance) {
    assert!(
        inst.switch.is_unit_capacity(),
        "engine requires unit capacities"
    );
    assert!(inst.is_unit_demand(), "engine requires unit demands");
}

fn run_selector(
    inst: &Instance,
    selector: &mut Selector<'_>,
    tele: &mut EngineTelemetry,
) -> Schedule {
    assert_unit(inst);
    let mut rounds = vec![0u64; inst.n()];
    stream::drive_exact(
        InstanceSource::new(inst),
        selector,
        tele,
        |id, _release, round| {
            rounds[id as usize] = round;
        },
    );
    let sched = Schedule::from_rounds(rounds);
    debug_assert!(validate::check(inst, &sched, &inst.switch).is_ok());
    sched
}

/// Run any [`OnlinePolicy`] over a batch instance through the engine.
/// The schedule is round-for-round identical to
/// [`fss_online::run_policy`]'s (same queue discipline, same policy code).
pub fn run_policy<P: OnlinePolicy>(inst: &Instance, policy: &mut P) -> Schedule {
    run_policy_telemetry(inst, policy, &mut EngineTelemetry::disabled())
}

/// [`run_policy`] recording stage timings and decision latencies into
/// `tele`. The schedule is identical to [`run_policy`]'s — the
/// instrumentation observes, never steers (differentially tested).
pub fn run_policy_telemetry<P: OnlinePolicy>(
    inst: &Instance,
    policy: &mut P,
    tele: &mut EngineTelemetry,
) -> Schedule {
    run_selector(inst, &mut Selector::Policy(policy), tele)
}

/// Run a built-in policy over a batch instance through the engine,
/// using the MaxCard and incremental-weighted fast paths where they
/// apply.
pub fn run_builtin(inst: &Instance, policy: BuiltinPolicy) -> Schedule {
    run_builtin_telemetry(inst, policy, &mut EngineTelemetry::disabled())
}

/// [`run_builtin`] recording stage timings and decision latencies into
/// `tele`; the schedule is identical to [`run_builtin`]'s.
pub fn run_builtin_telemetry(
    inst: &Instance,
    policy: BuiltinPolicy,
    tele: &mut EngineTelemetry,
) -> Schedule {
    match policy {
        BuiltinPolicy::MaxCard => run_selector(inst, &mut Selector::MaxCard, tele),
        BuiltinPolicy::MinRTime => run_weighted_telemetry(inst, WeightModel::MinRTime, tele),
        BuiltinPolicy::MaxWeight => run_weighted_telemetry(inst, WeightModel::MaxWeight, tele),
        BuiltinPolicy::FifoGreedy => run_policy_telemetry(inst, &mut FifoGreedy::default(), tele),
    }
}

/// Run a weighted cell model over a batch instance through the
/// incremental-weighted drive ([`wmatcher`]). For the built-in models
/// this produces the same schedule as [`run_policy`] with the matching
/// `fss_online` policy — round-for-round (differentially tested) — while
/// repairing the weighted matching incrementally instead of re-solving
/// it per round.
pub fn run_weighted(inst: &Instance, model: WeightModel) -> Schedule {
    run_weighted_telemetry(inst, model, &mut EngineTelemetry::disabled())
}

/// [`run_weighted`] recording stage timings and decision latencies into
/// `tele`; the schedule is identical to [`run_weighted`]'s.
pub fn run_weighted_telemetry(
    inst: &Instance,
    model: WeightModel,
    tele: &mut EngineTelemetry,
) -> Schedule {
    assert_unit(inst);
    let mut rounds = vec![0u64; inst.n()];
    stream::drive_weighted(
        InstanceSource::new(inst),
        model,
        tele,
        |id, _release, round| {
            rounds[id as usize] = round;
        },
    );
    let sched = Schedule::from_rounds(rounds);
    debug_assert!(validate::check(inst, &sched, &inst.switch).is_ok());
    sched
}

/// Run the incremental matcher over a batch instance. Every round
/// dispatches a maximum matching of that round's waiting graph (the
/// MaxCard equivalence class; a specific MaxCard run may break ties
/// differently, after which the two trajectories legitimately diverge).
/// Within a matched cell the oldest flow is dispatched first.
pub fn run_incremental(inst: &Instance) -> Schedule {
    assert_unit(inst);
    let mut rounds = vec![0u64; inst.n()];
    stream::drive_incremental(
        InstanceSource::new(inst),
        &mut EngineTelemetry::disabled(),
        |id, _release, round| {
            rounds[id as usize] = round;
        },
    );
    let sched = Schedule::from_rounds(rounds);
    debug_assert!(validate::check(inst, &sched, &inst.switch).is_ok());
    sched
}

/// Drive an arbitrary [`FlowSource`] (bounded or endless) and return the
/// aggregate statistics. Memory stays `O(peak queue)` regardless of
/// stream length.
pub fn run_stream<S: FlowSource>(source: S, mode: EngineMode) -> StreamStats {
    run_stream_with(source, mode, |_, _, _| {})
}

/// [`run_stream`] with a per-dispatch callback: `on_dispatch(id, release,
/// round)` fires once per flow, in dispatch order. This is how callers
/// that need the full schedule (rather than aggregate statistics) consume
/// a streaming run.
pub fn run_stream_with<S: FlowSource>(
    source: S,
    mode: EngineMode,
    on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    run_stream_telemetry(source, mode, &mut EngineTelemetry::disabled(), on_dispatch)
}

/// [`run_stream_with`] recording per-stage timings and the per-round
/// decision-latency histogram into `tele`. The dispatch sequence is
/// identical to an uninstrumented run's — telemetry observes, never
/// steers — and a handle built with [`EngineTelemetry::disabled`]
/// reduces every instrumentation point to one branch.
pub fn run_stream_telemetry<S: FlowSource>(
    source: S,
    mode: EngineMode,
    tele: &mut EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    match mode {
        EngineMode::Incremental => stream::drive_incremental(source, tele, on_dispatch),
        EngineMode::Exact(BuiltinPolicy::MaxCard) => {
            stream::drive_exact(source, &mut Selector::MaxCard, tele, on_dispatch)
        }
        EngineMode::Exact(BuiltinPolicy::MinRTime) => {
            stream::drive_weighted(source, WeightModel::MinRTime, tele, on_dispatch)
        }
        EngineMode::Exact(BuiltinPolicy::MaxWeight) => {
            stream::drive_weighted(source, WeightModel::MaxWeight, tele, on_dispatch)
        }
        EngineMode::Exact(BuiltinPolicy::FifoGreedy) => {
            let mut p = FifoGreedy::default();
            stream::drive_exact(source, &mut Selector::Policy(&mut p), tele, on_dispatch)
        }
    }
}

/// Drive a [`FlowSource`] through `policy` while a [`FailurePlan`] takes
/// ports down and back up (see [`outage`]). Aggregate statistics only;
/// use [`run_stream_failures_with`] to observe the schedule.
pub fn run_stream_failures<S: FlowSource, P: OnlinePolicy + ?Sized>(
    source: S,
    policy: &mut P,
    plan: &FailurePlan,
) -> StreamStats {
    run_stream_failures_with(source, policy, plan, |_, _, _| {})
}

/// [`run_stream_failures`] with a per-dispatch callback
/// (`on_dispatch(id, release, round)`, once per flow in dispatch order).
/// Schedules are round-for-round identical to the legacy batch failure
/// runner's on the same arrivals.
pub fn run_stream_failures_with<S: FlowSource, P: OnlinePolicy + ?Sized>(
    source: S,
    policy: &mut P,
    plan: &FailurePlan,
    on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    outage::drive_failures(
        source,
        policy,
        plan,
        &mut EngineTelemetry::disabled(),
        on_dispatch,
    )
}

/// [`run_stream_failures_with`] recording stage timings and decision
/// latencies into `tele`; the schedule is identical to an
/// uninstrumented run's.
pub fn run_stream_failures_telemetry<S: FlowSource, P: OnlinePolicy + ?Sized>(
    source: S,
    policy: &mut P,
    plan: &FailurePlan,
    tele: &mut EngineTelemetry,
    on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    outage::drive_failures(source, policy, plan, tele, on_dispatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_core::gen::{random_instance, GenParams};
    use rand::{rngs::SmallRng, SeedableRng};

    fn random_unit(seed: u64, m: usize, n: usize, rel: u64) -> Instance {
        let mut rng = SmallRng::seed_from_u64(seed);
        random_instance(&mut rng, &GenParams::unit(m, n, rel))
    }

    #[test]
    fn engine_matches_legacy_for_all_builtins() {
        for seed in 0..8 {
            let inst = random_unit(seed, 5, 40, 10);
            for b in [
                BuiltinPolicy::MaxCard,
                BuiltinPolicy::MinRTime,
                BuiltinPolicy::MaxWeight,
                BuiltinPolicy::FifoGreedy,
            ] {
                let engine = run_builtin(&inst, b);
                let legacy = match b {
                    BuiltinPolicy::MaxCard => {
                        fss_online::run_policy(&inst, &mut fss_online::MaxCard::default())
                    }
                    BuiltinPolicy::MinRTime => {
                        fss_online::run_policy(&inst, &mut fss_online::MinRTime::default())
                    }
                    BuiltinPolicy::MaxWeight => {
                        fss_online::run_policy(&inst, &mut fss_online::MaxWeight::default())
                    }
                    BuiltinPolicy::FifoGreedy => {
                        fss_online::run_policy(&inst, &mut FifoGreedy::default())
                    }
                };
                assert_eq!(engine, legacy, "policy {} seed {seed}", b.name());
            }
        }
    }

    #[test]
    fn custom_policies_also_match_legacy() {
        let inst = random_unit(3, 4, 30, 8);
        let engine = run_policy(&inst, &mut fss_online::AgedMaxWeight::new(0.7));
        let legacy = fss_online::run_policy(&inst, &mut fss_online::AgedMaxWeight::new(0.7));
        assert_eq!(engine, legacy);
    }

    #[test]
    fn incremental_dispatches_a_maximum_matching_every_round() {
        // Replay each incremental schedule round by round and check the
        // dispatched set has maximum cardinality for *that* round's
        // waiting graph (the MaxCard equivalence class — the defining
        // property of the incremental matcher).
        use fss_matching::{max_cardinality_matching, BipartiteGraph};
        for seed in 0..8 {
            let inst = random_unit(100 + seed, 6, 60, 12);
            let inc = run_incremental(&inst);
            validate::check(&inst, &inc, &inst.switch).unwrap();
            let horizon = inc.makespan();
            for t in 0..horizon {
                let mut g = BipartiteGraph::new(6, 6);
                let mut dispatched = 0usize;
                let mut any_waiting = false;
                for (i, f) in inst.flows.iter().enumerate() {
                    let run = inc.rounds()[i];
                    if f.release <= t && run >= t {
                        g.add_edge(f.src, f.dst);
                        any_waiting = true;
                    }
                    if run == t {
                        dispatched += 1;
                    }
                }
                if any_waiting {
                    assert_eq!(
                        dispatched,
                        max_cardinality_matching(&g).len(),
                        "seed {seed}, round {t}: dispatch not maximum"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_instance() {
        let inst = InstanceBuilder::new(Switch::uniform(3, 3, 1))
            .build()
            .unwrap();
        assert!(run_builtin(&inst, BuiltinPolicy::MaxCard).is_empty());
        assert!(run_incremental(&inst).is_empty());
    }

    #[test]
    #[should_panic(expected = "unit capacities")]
    fn non_unit_capacity_rejected() {
        let inst = InstanceBuilder::new(Switch::uniform(2, 2, 3))
            .build()
            .unwrap();
        let _ = run_builtin(&inst, BuiltinPolicy::MaxCard);
    }

    #[test]
    fn stream_mode_agrees_with_batch_metrics() {
        // Same Poisson workload, once streamed, once materialized and run
        // through the batch path: identical aggregate response stats.
        let (m, rate, rounds, seed) = (8usize, 6.0, 25u64, 9u64);
        let stats = run_stream(
            PoissonSource::new(m, rate, Some(rounds), seed),
            EngineMode::Exact(BuiltinPolicy::MaxCard),
        );
        let mut src = PoissonSource::new(m, rate, Some(rounds), seed);
        let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
        while let Some(a) = src.next_arrival() {
            b.unit_flow(a.src, a.dst, a.release);
        }
        let inst = b.build().unwrap();
        let sched = run_builtin(&inst, BuiltinPolicy::MaxCard);
        let met = fss_core::metrics::evaluate(&inst, &sched);
        assert_eq!(stats.dispatched as usize, met.n);
        assert_eq!(stats.total_response, u128::from(met.total_response));
        assert_eq!(stats.max_response, met.max_response);
        assert_eq!(stats.makespan, met.makespan);
    }

    #[test]
    fn incremental_stream_matches_incremental_batch() {
        // Streamed and materialized runs of the same workload execute the
        // identical algorithm, so their statistics must coincide exactly.
        let (m, rate, rounds, seed) = (10usize, 12.0, 20u64, 21u64);
        let streamed = run_stream(
            PoissonSource::new(m, rate, Some(rounds), seed),
            EngineMode::Incremental,
        );
        let mut src = PoissonSource::new(m, rate, Some(rounds), seed);
        let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
        while let Some(a) = src.next_arrival() {
            b.unit_flow(a.src, a.dst, a.release);
        }
        let inst = b.build().unwrap();
        let sched = run_incremental(&inst);
        let met = fss_core::metrics::evaluate(&inst, &sched);
        assert_eq!(streamed.dispatched as usize, met.n);
        assert_eq!(streamed.total_response, u128::from(met.total_response));
        assert_eq!(streamed.max_response, met.max_response);
        assert_eq!(streamed.makespan, met.makespan);
    }
}
