//! The drive loops: event-driven execution of a [`FlowSource`] through
//! either the exact-parity core or the incremental matcher, plus the
//! streaming statistics both emit.

use crate::events::{EventKind, EventQueue};
use crate::exact::{ExactCore, Selector};
use crate::matcher::IncrementalMatcher;
use crate::queue::ShardedQueues;
use crate::source::FlowSource;
use crate::wmatcher::IncrementalWeightedMatcher;
use fss_online::WeightModel;
use fss_telemetry::{span, EngineTelemetry, Stage};

/// Fold a finished run's aggregate counters into the telemetry handle
/// (cold path, once per drive).
pub(crate) fn finish_telemetry(tele: &mut EngineTelemetry, stats: &StreamStats) {
    tele.counter_add("flows_arrived", stats.arrived);
    tele.counter_add("flows_dispatched", stats.dispatched);
    tele.counter_add("active_rounds", stats.active_rounds);
    tele.gauge_max("peak_queue_depth", stats.peak_queue as u64);
}

/// Aggregate statistics of one engine run (streaming-friendly: `O(1)`
/// memory, updated at dispatch time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Flows ingested from the source.
    pub arrived: u64,
    /// Flows dispatched (equals `arrived` after a drained bounded run).
    pub dispatched: u64,
    /// Sum of response times `rho_e = (round + 1) - release`.
    pub total_response: u128,
    /// Largest response time.
    pub max_response: u64,
    /// One past the last dispatch round.
    pub makespan: u64,
    /// Rounds in which at least one flow was dispatched (the event loop
    /// never visits idle rounds, so this is also the rounds *simulated*,
    /// up to empty-selection rounds of degenerate custom policies).
    pub active_rounds: u64,
    /// Largest waiting-queue length observed at a round boundary.
    pub peak_queue: usize,
}

impl StreamStats {
    /// Mean response time over dispatched flows (0 when none).
    pub fn mean_response(&self) -> f64 {
        if self.dispatched == 0 {
            0.0
        } else {
            self.total_response as f64 / self.dispatched as f64
        }
    }

    pub(crate) fn on_dispatch(&mut self, release: u64, round: u64) {
        let rho = round + 1 - release;
        self.dispatched += 1;
        self.total_response += u128::from(rho);
        self.max_response = self.max_response.max(rho);
        self.makespan = round + 1;
    }
}

/// Exact-parity drive: legacy-identical schedules (see [`crate::exact`]).
/// `on_dispatch(id, release, round)` fires once per flow.
pub(crate) fn drive_exact<S: FlowSource>(
    mut source: S,
    selector: &mut Selector<'_>,
    tele: &mut EngineTelemetry,
    mut on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    let (m_in, m_out) = (source.m_in(), source.m_out());
    let mut core = ExactCore::new(m_in, m_out);
    let mut stats = StreamStats::default();
    let mut events = EventQueue::new();
    let mut pending = source.next_arrival();
    let mut arrival_scheduled = None;
    if let Some(a) = &pending {
        events.push(a.release, EventKind::Arrival);
        arrival_scheduled = Some(a.release);
    }
    while let Some(t) = events.pop_round() {
        tele.flight_round(t);
        // Ingest every arrival released by round `t` (the event queue may
        // have jumped over several release rounds while the queue drained).
        span!(tele, Stage::Ingest, {
            while let Some(a) = pending {
                if a.release > t {
                    break;
                }
                debug_assert!(
                    u32::try_from(a.id).is_ok(),
                    "exact mode addresses flows as u32 ids"
                );
                core.push_waiting(a.id as u32, a.src, a.dst, a.release);
                stats.arrived += 1;
                pending = source.next_arrival();
                debug_assert!(
                    pending.is_none_or(|n| n.release >= a.release),
                    "FlowSource contract: releases must be nondecreasing"
                );
            }
            if let Some(a) = &pending {
                if arrival_scheduled != Some(a.release) {
                    events.push(a.release, EventKind::Arrival);
                    arrival_scheduled = Some(a.release);
                }
            }
        });
        stats.peak_queue = stats.peak_queue.max(core.waiting.len());
        if core.waiting.is_empty() {
            continue;
        }
        tele.decision(|| core.select(t, selector));
        if !core.selection.is_empty() {
            stats.active_rounds += 1;
        }
        span!(tele, Stage::Dispatch, {
            for i in 0..core.selection.len() {
                let w = core.waiting[core.selection[i]];
                stats.on_dispatch(w.release, t);
                on_dispatch(u64::from(w.id.0), w.release, t);
            }
        });
        span!(tele, Stage::QueueUpdate, {
            core.remove_selection();
        });
        if !core.waiting.is_empty() {
            events.push(t + 1, EventKind::Dispatch);
        }
        tele.round();
    }
    tele.flight_round_finish();
    finish_telemetry(tele, &stats);
    stats
}

/// Incremental drive: maintains the support-graph maximum matching across
/// rounds ([`crate::matcher`]) and dispatches the oldest flow of each
/// matched cell. Every round's dispatch set is a *maximum* matching of
/// that round's waiting graph — the MaxCard equivalence class. A specific
/// MaxCard run may break ties between equally maximum matchings
/// differently, after which the two trajectories legitimately diverge.
pub(crate) fn drive_incremental<S: FlowSource>(
    mut source: S,
    tele: &mut EngineTelemetry,
    mut on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    let (m_in, m_out) = (source.m_in(), source.m_out());
    let mut queues = ShardedQueues::new(m_in, m_out);
    let mut matcher = IncrementalMatcher::new(m_in, m_out);
    let mut stats = StreamStats::default();
    let mut events = EventQueue::new();
    let mut emptied: Vec<(u32, u32)> = Vec::new();
    let mut pending = source.next_arrival();
    let mut arrival_scheduled = None;
    if let Some(a) = &pending {
        events.push(a.release, EventKind::Arrival);
        arrival_scheduled = Some(a.release);
    }
    while let Some(t) = events.pop_round() {
        tele.flight_round(t);
        span!(tele, Stage::Ingest, {
            while let Some(a) = pending {
                if a.release > t {
                    break;
                }
                if queues.push(a.src, a.dst, a.id, a.release) {
                    matcher.add_support_edge(a.src, a.dst);
                }
                stats.arrived += 1;
                pending = source.next_arrival();
            }
            if let Some(a) = &pending {
                if arrival_scheduled != Some(a.release) {
                    events.push(a.release, EventKind::Arrival);
                    arrival_scheduled = Some(a.release);
                }
            }
        });
        stats.peak_queue = stats.peak_queue.max(queues.len());
        if queues.is_empty() {
            continue;
        }
        // Repair only chases ports dirtied since the last round; in the
        // saturated steady state it is a no-op.
        tele.decision(|| matcher.repair());
        debug_assert!(matcher.size() > 0, "nonempty support must match something");
        stats.active_rounds += 1;
        span!(tele, Stage::Dispatch, {
            for p in 0..m_in as u32 {
                if let Some(q) = matcher.matched_output(p) {
                    let (rec, now_empty) = queues.pop_oldest(p, q);
                    stats.on_dispatch(rec.release, t);
                    on_dispatch(rec.id, rec.release, t);
                    if now_empty {
                        emptied.push((p, q));
                    }
                }
            }
        });
        span!(tele, Stage::QueueUpdate, {
            for (p, q) in emptied.drain(..) {
                matcher.remove_support_edge(p, q);
            }
        });
        if !queues.is_empty() {
            events.push(t + 1, EventKind::Dispatch);
        }
        tele.round();
    }
    let (searches, augmentations) = matcher.work();
    tele.counter_add("match_searches", searches);
    tele.counter_add("match_augmentations", augmentations);
    tele.flight_round_finish();
    finish_telemetry(tele, &stats);
    stats
}

/// Weighted drive: the MinRTime/MaxWeight fast path. Maintains the
/// maximum-weight matching of the cell graph across rounds with
/// [`IncrementalWeightedMatcher`] — duals and assignment carry over;
/// only cells dirtied by arrivals and dispatches are re-solved.
/// Schedules are round-for-round identical to the legacy
/// `fss_online::run_policy` loop with the same (incremental) policy: the
/// matcher applies the exact canonical update sequence the scan-driven
/// policy applies, and within a cell both dispatch the queue-FIFO head,
/// the flow with the smallest `(release, id)`.
pub(crate) fn drive_weighted<S: FlowSource>(
    mut source: S,
    model: WeightModel,
    tele: &mut EngineTelemetry,
    mut on_dispatch: impl FnMut(u64, u64, u64),
) -> StreamStats {
    let (m_in, m_out) = (source.m_in(), source.m_out());
    let mut queues = ShardedQueues::new(m_in, m_out);
    let mut matcher = IncrementalWeightedMatcher::new(model, m_in, m_out);
    let mut stats = StreamStats::default();
    let mut events = EventQueue::new();
    // Round scratch, reused across all rounds.
    let mut sel: Vec<(u32, u32)> = Vec::new();
    let mut pending = source.next_arrival();
    let mut arrival_scheduled = None;
    if let Some(a) = &pending {
        events.push(a.release, EventKind::Arrival);
        arrival_scheduled = Some(a.release);
    }
    while let Some(t) = events.pop_round() {
        tele.flight_round(t);
        span!(tele, Stage::Ingest, {
            while let Some(a) = pending {
                if a.release > t {
                    break;
                }
                queues.push(a.src, a.dst, a.id, a.release);
                matcher.note(a.src, a.dst);
                stats.arrived += 1;
                pending = source.next_arrival();
            }
            if let Some(a) = &pending {
                if arrival_scheduled != Some(a.release) {
                    events.push(a.release, EventKind::Arrival);
                    arrival_scheduled = Some(a.release);
                }
            }
        });
        stats.peak_queue = stats.peak_queue.max(queues.len());
        if queues.is_empty() {
            continue;
        }
        tele.decision(|| matcher.select(t, &queues, &mut sel));
        debug_assert!(!sel.is_empty(), "nonempty queue must match something");
        if !sel.is_empty() {
            stats.active_rounds += 1;
        }
        span!(tele, Stage::Dispatch, {
            for &(p, q) in &sel {
                let (rec, _now_empty) = queues.pop_oldest(p, q);
                stats.on_dispatch(rec.release, t);
                on_dispatch(rec.id, rec.release, t);
                matcher.note(p, q);
            }
        });
        if !queues.is_empty() {
            events.push(t + 1, EventKind::Dispatch);
        }
        tele.round();
    }
    let (selects, cells_touched) = matcher.work();
    tele.counter_add("wmatch_selects", selects);
    tele.counter_add("wmatch_cells_touched", cells_touched);
    tele.flight_round_finish();
    finish_telemetry(tele, &stats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::PoissonSource;

    #[test]
    fn weighted_drains_a_poisson_stream() {
        for model in [WeightModel::MinRTime, WeightModel::MaxWeight] {
            let source = PoissonSource::new(9, 7.0, Some(25), 3);
            let mut seen = std::collections::HashSet::new();
            let stats = drive_weighted(
                source,
                model,
                &mut EngineTelemetry::disabled(),
                |id, release, round| {
                    assert!(round >= release, "dispatch before release");
                    assert!(seen.insert(id), "flow {id} dispatched twice");
                },
            );
            assert_eq!(stats.arrived, stats.dispatched);
            assert_eq!(stats.dispatched as usize, seen.len());
        }
    }

    #[test]
    fn incremental_drains_a_poisson_stream() {
        let source = PoissonSource::new(10, 8.0, Some(30), 5);
        let mut seen = std::collections::HashSet::new();
        let stats = drive_incremental(
            source,
            &mut EngineTelemetry::disabled(),
            |id, release, round| {
                assert!(round >= release, "dispatch before release");
                assert!(seen.insert(id), "flow {id} dispatched twice");
            },
        );
        assert_eq!(stats.arrived, stats.dispatched);
        assert_eq!(stats.dispatched as usize, seen.len());
        assert!(stats.max_response >= 1);
        assert!(stats.mean_response() >= 1.0);
    }

    #[test]
    fn stats_track_makespan_and_rounds() {
        // Two flows on the same cell, released at 0 and 100: the event
        // loop must skip the idle gap (2 active rounds, makespan 101).
        struct TwoFlows(u32);
        impl crate::source::FlowSource for TwoFlows {
            fn m_in(&self) -> usize {
                2
            }
            fn m_out(&self) -> usize {
                2
            }
            fn next_arrival(&mut self) -> Option<crate::source::Arrival> {
                let a = match self.0 {
                    0 => crate::source::Arrival {
                        id: 0,
                        src: 0,
                        dst: 0,
                        release: 0,
                    },
                    1 => crate::source::Arrival {
                        id: 1,
                        src: 0,
                        dst: 0,
                        release: 100,
                    },
                    _ => return None,
                };
                self.0 += 1;
                Some(a)
            }
        }
        let stats = drive_incremental(TwoFlows(0), &mut EngineTelemetry::disabled(), |_, _, _| {});
        assert_eq!(stats.dispatched, 2);
        assert_eq!(stats.active_rounds, 2);
        assert_eq!(stats.makespan, 101);
        assert_eq!(stats.max_response, 1);
    }
}
