//! Differential property tests for the streaming trace source.
//!
//! The acceptance contract of the `fss-trace` subsystem: replaying a
//! trace through the chunked [`fss_trace::StreamingTraceSource`] must
//! be **bit-for-bit identical** to loading it with the in-memory
//! [`ArrivalTrace`] loader and replaying that — same dispatch stream,
//! same aggregates, for every §5 policy, under horizon caps, and for
//! traces decorated with blank lines and missing trailing newlines.
//! Chunk boundaries must be invisible: a 1-arrival chunk (boundary
//! between *every* pair of lines) changes nothing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use fss_engine::{EngineMode, EngineTelemetry, FlowSource};
use fss_sim::arrival_trace::{ArrivalTrace, TraceSource};
use fss_sim::scenario::{run_scenario_with, ScenarioSpec};
use fss_sim::PolicyKind;
use proptest::prelude::*;

const POLICIES: [PolicyKind; 4] = [
    PolicyKind::MaxCard,
    PolicyKind::MinRTime,
    PolicyKind::MaxWeight,
    PolicyKind::FifoGreedy,
];

/// Strategy: a port count, a sorted arrival list on it, and the text
/// decoration knobs (blank interior lines, trailing newline).
#[allow(clippy::type_complexity)]
fn trace_case() -> impl Strategy<Value = (usize, Vec<(u64, u32, u32)>, bool, bool)> {
    (
        2usize..=5,
        proptest::collection::vec((0u64..12, 0u32..8, 0u32..8), 0..60),
        0u8..2,
        0u8..2,
    )
        .prop_map(|(m, mut raw, blanks, trailing)| {
            for (_, s, d) in raw.iter_mut() {
                *s %= m as u32;
                *d %= m as u32;
            }
            raw.sort_by_key(|&(r, _, _)| r);
            (m, raw, blanks == 1, trailing == 1)
        })
}

/// Render the case as JSONL, optionally sprinkling blank/whitespace
/// lines between records and dropping the final newline.
fn render(m: usize, arrivals: &[(u64, u32, u32)], blanks: bool, trailing: bool) -> String {
    let mut text = format!("{{\"ports\":{m}}}\n");
    if blanks {
        text.push('\n');
    }
    for (i, &(release, src, dst)) in arrivals.iter().enumerate() {
        text.push_str(&format!(
            "{{\"release\":{release},\"src\":{src},\"dst\":{dst}}}\n"
        ));
        if blanks && i % 3 == 0 {
            text.push_str("   \n");
        }
    }
    if !trailing && text.ends_with('\n') {
        text.pop();
    }
    text
}

/// A fresh per-case temp path (proptest shrinking reruns cases, and
/// test binaries run in parallel).
fn case_path() -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join("fss-streaming-diff");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!(
        "case-{}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Run one scenario spec, capturing the full dispatch stream.
fn replay(
    spec: &ScenarioSpec,
    policy: PolicyKind,
) -> (fss_engine::StreamStats, Vec<(u64, u64, u64)>) {
    let mut dispatches = Vec::new();
    let stats = run_scenario_with(spec, policy, |id, release, round| {
        dispatches.push((id, release, round))
    })
    .expect("scenario replays");
    (stats, dispatches)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `streaming: true` is invisible: same dispatch stream and same
    /// aggregates as the in-memory loader, for every policy, on
    /// arbitrary decorated traces.
    #[test]
    fn streaming_replay_equals_in_memory((m, arrivals, blanks, trailing) in trace_case()) {
        let path = case_path();
        std::fs::write(&path, render(m, &arrivals, blanks, trailing)).unwrap();
        let in_mem = ScenarioSpec::trace(path.to_string_lossy());
        let streamed = in_mem.clone().with_streaming(true);
        for policy in POLICIES {
            prop_assert_eq!(
                replay(&streamed, policy),
                replay(&in_mem, policy),
                "policy {}", policy.name()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    /// The horizon cap truncates both sources at the same round.
    #[test]
    fn streaming_replay_respects_horizon(
        (m, arrivals, blanks, trailing) in trace_case(),
        horizon in 0u64..14,
    ) {
        let path = case_path();
        std::fs::write(&path, render(m, &arrivals, blanks, trailing)).unwrap();
        let capped = ScenarioSpec {
            horizon: Some(horizon),
            ..ScenarioSpec::trace(path.to_string_lossy())
        };
        let streamed = capped.clone().with_streaming(true);
        for policy in POLICIES {
            let (stats, dispatches) = replay(&streamed, policy);
            prop_assert_eq!(
                (stats, dispatches.clone()),
                replay(&capped, policy),
                "policy {}", policy.name()
            );
            for &(_, release, _) in &dispatches {
                prop_assert!(release < horizon, "arrival past the horizon replayed");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Chunk boundaries are invisible even at chunk size 1, where the
    /// buffer refills between every two arrivals.
    #[test]
    fn chunk_size_one_equals_in_memory((m, arrivals, blanks, trailing) in trace_case()) {
        let text = render(m, &arrivals, blanks, trailing);
        let trace = Arc::new(ArrivalTrace::from_jsonl(&text).expect("rendered trace validates"));
        for policy in POLICIES {
            let source = fss_trace::StreamingTraceReader::from_reader(
                std::io::Cursor::new(text.clone().into_bytes()),
                "case",
            )
            .expect("rendered header validates")
            .with_chunk(1);
            let errors = source.error_handle();
            let mut streamed = Vec::new();
            let stats = fss_engine::run_stream_telemetry(
                source,
                EngineMode::Exact(policy.to_engine()),
                &mut EngineTelemetry::disabled(),
                |id, release, round| streamed.push((id, release, round)),
            );
            prop_assert_eq!(errors.get(), None, "clean trace must stream without error");

            let mut in_mem = Vec::new();
            let ref_stats = fss_engine::run_stream_telemetry(
                TraceSource::new(trace.clone()),
                EngineMode::Exact(policy.to_engine()),
                &mut EngineTelemetry::disabled(),
                |id, release, round| in_mem.push((id, release, round)),
            );
            prop_assert_eq!((stats, streamed), (ref_stats, in_mem), "policy {}", policy.name());
        }
    }

    /// The streaming source hands the engine the same arrival sequence
    /// the in-memory trace stores: ids dense from 0, releases sorted.
    #[test]
    fn streamed_arrivals_match_loaded_trace((m, arrivals, blanks, trailing) in trace_case()) {
        let text = render(m, &arrivals, blanks, trailing);
        let trace = ArrivalTrace::from_jsonl(&text).expect("rendered trace validates");
        let mut source = fss_trace::StreamingTraceReader::from_reader(
            std::io::Cursor::new(text.into_bytes()),
            "case",
        )
        .expect("rendered header validates")
        .with_chunk(2);
        prop_assert_eq!(source.m_in(), m);
        let mut seen = Vec::new();
        while let Some(a) = source.next_arrival() {
            seen.push(a);
        }
        prop_assert_eq!(source.error_handle().get(), None);
        prop_assert_eq!(seen.len(), trace.len());
        for (i, (got, want)) in seen.iter().zip(trace.arrivals.iter()).enumerate() {
            prop_assert_eq!(got, want, "arrival {}", i);
        }
    }
}
