//! Differential property tests for the Scenario API.
//!
//! The acceptance contract of the streaming redesign: saturation sweeps
//! and failure-injection runs executed through streaming `FlowSource`
//! scenarios must be **identical** to the legacy materialize-then-run
//! paths — equal schedules for failures, bit-equal aggregates for sweeps
//! — and arrival traces must replay a workload exactly
//! (generate → dump → replay ≡ original schedule).

use std::sync::Arc;

use fss_core::prelude::*;
use fss_online::{FifoGreedy, MaxCard, MaxWeight, MinRTime, OnlinePolicy};
use fss_sim::arrival_trace::{ArrivalTrace, TraceSource};
use fss_sim::scenario::{run_scenario, run_scenario_with, ScenarioError, ScenarioSpec};
use fss_sim::{
    run_policy_with_failures, run_policy_with_failures_legacy, saturation_sweep,
    saturation_sweep_legacy, stable_intensity, stable_intensity_legacy, PolicyKind,
};
use proptest::prelude::*;

/// Strategy: a unit-demand instance on an `m x m` unit switch with
/// bursty conflicting arrivals, paired with an arbitrary outage plan
/// over the same ports.
fn instance_and_plan() -> impl Strategy<Value = (Instance, FailurePlan)> {
    (2usize..=6, 1usize..=40, 0u64..12).prop_flat_map(|(m, n, spread)| {
        let flow = (0..m as u32, 0..m as u32, 0u64..=spread);
        let outage = (0u32..2, 0..m as u32, 0u64..15, 1u64..12);
        (
            proptest::collection::vec(flow, n),
            proptest::collection::vec(outage, 0..4),
        )
            .prop_map(move |(flows, outages)| {
                let mut b = InstanceBuilder::new(Switch::uniform(m, m, 1));
                for (s, d, r) in flows {
                    b.unit_flow(s, d, r);
                }
                let plan = FailurePlan {
                    outages: outages
                        .into_iter()
                        .map(|(side, port, from, len)| Outage {
                            side: if side == 0 {
                                PortSide::Input
                            } else {
                                PortSide::Output
                            },
                            port,
                            from,
                            to: from + len,
                        })
                        .collect(),
                };
                (b.build().expect("generated instance is valid"), plan)
            })
    })
}

fn with_each_policy(mut f: impl FnMut(&mut dyn OnlinePolicy, &'static str)) {
    f(&mut MaxCard::default(), "MaxCard");
    f(&mut MinRTime::default(), "MinRTime");
    f(&mut MaxWeight::default(), "MaxWeight");
    f(&mut FifoGreedy::default(), "FifoGreedy");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streaming failure runs are round-for-round identical to the legacy
    /// batch runner, for every policy and arbitrary outage plans
    /// (overlapping, repeated, and extending past the arrival window).
    #[test]
    fn streaming_failures_equal_legacy_schedules(
        (inst, plan) in instance_and_plan(),
    ) {
        let mut results: Vec<(&'static str, Schedule, Schedule)> = Vec::new();
        with_each_policy(|p, name| {
            let streamed = run_policy_with_failures(&inst, p, &plan);
            let legacy = run_policy_with_failures_legacy(&inst, p, &plan);
            results.push((name, streamed, legacy));
        });
        for (name, streamed, legacy) in results {
            prop_assert_eq!(streamed.rounds(), legacy.rounds(), "policy {}", name);
        }
    }

    /// Trace round trip: dump any Poisson scenario to JSONL, reload it,
    /// and the replay produces the identical instance and (hence)
    /// identical schedules for every policy.
    #[test]
    fn trace_round_trip_replays_exactly(
        m in 2usize..=8,
        rate in 1u32..=24, // rate / 2.0: shim strategies are integer-based
        rounds in 1u64..25,
        seed in 0u64..5_000,
    ) {
        let rate = f64::from(rate) / 2.0;
        let spec = ScenarioSpec::poisson(m, rate, rounds, seed);
        let trace = spec.dump_trace().expect("bounded scenario dumps");
        let text = trace.to_jsonl();
        let back = ArrivalTrace::from_jsonl(&text).expect("dumped traces are valid");
        prop_assert_eq!(&back, &trace);

        let original = spec.instance().expect("bounded scenario materializes");
        prop_assert_eq!(&back.to_instance(), &original);

        for policy in PolicyKind::PAPER_TRIO {
            let mut rounds_by_id = vec![0u64; original.n()];
            replay_trace(&back, policy, &mut rounds_by_id);
            let replayed = Schedule::from_rounds(rounds_by_id);
            let direct = policy.run(&original);
            prop_assert_eq!(&replayed, &direct, "policy {}", policy.name());
        }
    }

    /// The streaming saturation sweep is bit-identical to the legacy
    /// batch sweep (same seeds, same aggregates) for every policy.
    #[test]
    fn streaming_sweep_is_bit_identical_to_legacy(
        m in 2usize..=7,
        rounds in 2u64..20,
        seed in 0u64..10_000,
    ) {
        let intensities = [0.2, 0.7, 1.1];
        for policy in [
            PolicyKind::MaxCard,
            PolicyKind::MinRTime,
            PolicyKind::MaxWeight,
            PolicyKind::FifoGreedy,
        ] {
            let streamed = saturation_sweep(policy, m, rounds, &intensities, 2, seed);
            let legacy = saturation_sweep_legacy(policy, m, rounds, &intensities, 2, seed);
            prop_assert_eq!(streamed.len(), legacy.len());
            for (s, l) in streamed.iter().zip(&legacy) {
                prop_assert_eq!(s.intensity, l.intensity);
                prop_assert_eq!(s.mean_response, l.mean_response, "policy {}", policy.name());
                prop_assert_eq!(s.max_response, l.max_response, "policy {}", policy.name());
            }
        }
    }
}

/// Drive a trace through the engine with `policy`, writing dispatch
/// rounds into `rounds_by_id` (indexed by trace sequence number).
fn replay_trace(trace: &ArrivalTrace, policy: PolicyKind, rounds_by_id: &mut [u64]) {
    let source = TraceSource::new(Arc::new(trace.clone()));
    fss_engine::run_stream_with(
        source,
        fss_engine::EngineMode::Exact(policy.to_engine()),
        |id, _release, round| {
            rounds_by_id[id as usize] = round;
        },
    );
}

#[test]
fn run_scenario_weighted_schedules_equal_legacy_loop() {
    // Round-for-round parity of the incremental weighted engine path:
    // a Poisson scenario streamed through `run_scenario` must dispatch
    // every flow in exactly the round the legacy `fss_online::run_policy`
    // loop does, for both weighted heuristics.
    for policy in [PolicyKind::MinRTime, PolicyKind::MaxWeight] {
        for seed in [1u64, 9, 33, 0xbeef] {
            let spec = ScenarioSpec::poisson(7, 9.0, 16, seed);
            let inst = spec.instance().unwrap();
            let mut rounds = vec![0u64; inst.n()];
            let stats =
                run_scenario_with(&spec, policy, |id, _r, t| rounds[id as usize] = t).unwrap();
            assert_eq!(stats.dispatched as usize, inst.n());
            let streamed = Schedule::from_rounds(rounds);
            let legacy = match policy {
                PolicyKind::MinRTime => fss_online::run_policy(&inst, &mut MinRTime::default()),
                _ => fss_online::run_policy(&inst, &mut MaxWeight::default()),
            };
            assert_eq!(streamed, legacy, "{} seed {seed}", policy.name());
        }
    }
}

#[test]
fn stable_intensity_streaming_equals_legacy() {
    for policy in [PolicyKind::MaxCard, PolicyKind::FifoGreedy] {
        let a = stable_intensity(policy, 5, 12, 3.0, 2, 99);
        let b = stable_intensity_legacy(policy, 5, 12, 3.0, 2, 99);
        assert_eq!(a, b, "{}", policy.name());
    }
}

#[test]
fn scenario_failure_runs_match_batch_failure_runner() {
    // End-to-end: a Poisson scenario with an outage plan, run streaming,
    // must produce the exact schedule of materialize + batch failure run.
    let plan = FailurePlan {
        outages: vec![
            Outage {
                side: PortSide::Input,
                port: 1,
                from: 0,
                to: 9,
            },
            Outage {
                side: PortSide::Output,
                port: 0,
                from: 4,
                to: 13,
            },
        ],
    };
    let spec = ScenarioSpec::poisson(5, 4.0, 18, 123).with_failures(plan.clone());
    let inst = spec.instance().unwrap();
    for policy in [PolicyKind::MaxCard, PolicyKind::MinRTime] {
        let mut rounds = vec![0u64; inst.n()];
        let stats = run_scenario_with(&spec, policy, |id, _r, t| rounds[id as usize] = t).unwrap();
        let streamed = Schedule::from_rounds(rounds);
        let batch = match policy {
            PolicyKind::MaxCard => {
                run_policy_with_failures_legacy(&inst, &mut MaxCard::default(), &plan)
            }
            _ => run_policy_with_failures_legacy(&inst, &mut MinRTime::default(), &plan),
        };
        assert_eq!(streamed, batch, "{}", policy.name());
        assert_eq!(stats.dispatched as usize, inst.n());
    }
}

#[test]
fn malformed_traces_error_not_panic() {
    for (text, what) in [
        ("", "empty file"),
        ("{\"ports\":0}\n", "zero ports"),
        ("{\"ports\":4}\n{\"release\":0,\"src\":9,\"dst\":0}\n", "bad port"),
        (
            "{\"ports\":4}\n{\"release\":5,\"src\":0,\"dst\":0}\n{\"release\":1,\"src\":0,\"dst\":0}\n",
            "unsorted releases",
        ),
        ("{\"ports\":4}\ngarbage\n", "garbage line"),
        ("{\"ports\":4}\n{\"release\":0,\"src\":0}\n", "missing field"),
    ] {
        assert!(ArrivalTrace::from_jsonl(text).is_err(), "{what} must error");
    }
    // A scenario pointing at a missing file errors with Io, not a panic.
    let spec = ScenarioSpec::trace("/nonexistent/trace.jsonl");
    assert!(matches!(
        run_scenario(&spec, PolicyKind::MaxCard),
        Err(ScenarioError::Io { .. })
    ));
}
