//! Response-time statistics beyond the paper's two point metrics.
//!
//! The paper reports mean and maximum response times; production operators
//! care about tail latency too. This module adds percentile summaries and
//! distribution histograms over per-flow response times — used by the
//! extended experiment reports and the saturation probe.

use fss_core::prelude::*;
use serde::{Deserialize, Serialize};

/// Percentile summary of per-flow response times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResponsePercentiles {
    /// Number of flows.
    pub n: usize,
    /// Mean response.
    pub mean: f64,
    /// Median (p50).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

/// Compute percentiles of the response-time distribution.
///
/// Uses the nearest-rank method: `p`-th percentile = the value at index
/// `ceil(p/100 * n) - 1` of the sorted responses.
pub fn response_percentiles(inst: &Instance, sched: &Schedule) -> ResponsePercentiles {
    let mut rho: Vec<u64> = inst
        .flows
        .iter()
        .zip(sched.rounds())
        .map(|(f, &t)| t + 1 - f.release)
        .collect();
    rho.sort_unstable();
    let n = rho.len();
    let rank = |p: f64| -> u64 {
        if n == 0 {
            return 0;
        }
        let idx = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
        rho[idx]
    };
    ResponsePercentiles {
        n,
        mean: if n == 0 {
            0.0
        } else {
            rho.iter().sum::<u64>() as f64 / n as f64
        },
        p50: rank(50.0),
        p95: rank(95.0),
        p99: rank(99.0),
        max: rho.last().copied().unwrap_or(0),
    }
}

/// Histogram of response times with unit-width buckets `1..=max`
/// (`histogram[r - 1]` counts flows with response exactly `r`).
pub fn response_histogram(inst: &Instance, sched: &Schedule) -> Vec<u64> {
    let mut max = 0u64;
    let rho: Vec<u64> = inst
        .flows
        .iter()
        .zip(sched.rounds())
        .map(|(f, &t)| {
            let r = t + 1 - f.release;
            max = max.max(r);
            r
        })
        .collect();
    let mut hist = vec![0u64; max as usize];
    for r in rho {
        hist[(r - 1) as usize] += 1;
    }
    hist
}

/// Per-round queue lengths while executing `sched` online: entry `t` is
/// the number of released-but-not-yet-scheduled flows at the start of
/// round `t`. Useful for stability analysis (queues that grow linearly in
/// `t` indicate an overloaded switch).
pub fn queue_length_trace(inst: &Instance, sched: &Schedule) -> Vec<u64> {
    let horizon = sched.makespan();
    let mut released_by = vec![0u64; horizon as usize + 1];
    let mut served_by = vec![0u64; horizon as usize + 1];
    for (f, &t) in inst.flows.iter().zip(sched.rounds()) {
        let r = f.release.min(horizon) as usize;
        released_by[r] += 1;
        served_by[t as usize] += 1;
    }
    let mut trace = Vec::with_capacity(horizon as usize);
    let mut queue = 0i64;
    for t in 0..horizon as usize {
        queue += released_by[t] as i64;
        trace.push(queue.max(0) as u64);
        queue -= served_by[t] as i64;
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst_and_sched() -> (Instance, Schedule) {
        let mut b = InstanceBuilder::new(Switch::uniform(1, 1, 1));
        for _ in 0..4 {
            b.unit_flow(0, 0, 0);
        }
        let inst = b.build().unwrap();
        // Serialized: responses 1, 2, 3, 4.
        let sched = Schedule::from_rounds(vec![0, 1, 2, 3]);
        (inst, sched)
    }

    #[test]
    fn percentiles_of_uniform_ladder() {
        let (inst, sched) = inst_and_sched();
        let p = response_percentiles(&inst, &sched);
        assert_eq!(p.n, 4);
        assert!((p.mean - 2.5).abs() < 1e-12);
        assert_eq!(p.p50, 2);
        assert_eq!(p.p95, 4);
        assert_eq!(p.p99, 4);
        assert_eq!(p.max, 4);
    }

    #[test]
    fn empty_instance_percentiles() {
        let inst = InstanceBuilder::new(Switch::uniform(1, 1, 1))
            .build()
            .unwrap();
        let p = response_percentiles(&inst, &Schedule::from_rounds(vec![]));
        assert_eq!(p.n, 0);
        assert_eq!(p.max, 0);
    }

    #[test]
    fn histogram_counts_each_response() {
        let (inst, sched) = inst_and_sched();
        let h = response_histogram(&inst, &sched);
        assert_eq!(h, vec![1, 1, 1, 1]);
    }

    #[test]
    fn queue_trace_rises_then_drains() {
        let (inst, sched) = inst_and_sched();
        let q = queue_length_trace(&inst, &sched);
        // All 4 released at round 0; one served per round.
        assert_eq!(q, vec![4, 3, 2, 1]);
    }

    #[test]
    fn percentiles_match_metrics() {
        use fss_core::gen::{random_instance, GenParams};
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(2);
        let inst = random_instance(&mut rng, &GenParams::unit(4, 25, 5));
        let sched = fss_offline::greedy_schedule(&inst);
        let m = fss_core::metrics::evaluate(&inst, &sched);
        let p = response_percentiles(&inst, &sched);
        assert_eq!(p.max, m.max_response);
        assert!((p.mean - m.mean_response).abs() < 1e-9);
    }
}
