//! Failure injection: port outages during online execution.
//!
//! Datacenter ports fail and recover; a scheduler built on per-round
//! matchings adapts naturally by excluding dead ports from the waiting
//! graph. The plan types ([`Outage`], [`FailurePlan`]) live in `fss-core`
//! and are re-exported here; execution streams through the engine's
//! failure-aware drive ([`fss_engine::run_stream_failures_with`]), so
//! scenario runs never materialize their workload. The historical batch
//! loop is kept as [`run_policy_with_failures_legacy`] — the reference
//! implementation the streaming path is differentially tested against.

use fss_core::prelude::*;
use fss_engine::InstanceSource;
use fss_online::{OnlinePolicy, QueueState, WaitingFlow};

pub use fss_core::{FailurePlan, Outage};

/// Run `policy` online while injecting the outage plan. Flows incident on
/// a dead port are hidden from the policy for the affected rounds; all
/// flows still complete (every outage ends). Unit capacities and demands,
/// like the base runner.
///
/// Streams the instance through the engine's failure drive; the schedule
/// is round-for-round identical to
/// [`run_policy_with_failures_legacy`]'s.
pub fn run_policy_with_failures<P: OnlinePolicy + ?Sized>(
    inst: &Instance,
    policy: &mut P,
    plan: &FailurePlan,
) -> Schedule {
    assert!(
        inst.switch.is_unit_capacity(),
        "failure runner requires unit capacities"
    );
    assert!(
        inst.is_unit_demand(),
        "failure runner requires unit demands"
    );
    let mut rounds = vec![0u64; inst.n()];
    fss_engine::run_stream_failures_with(
        InstanceSource::new(inst),
        policy,
        plan,
        |id, _release, round| {
            rounds[id as usize] = round;
        },
    );
    let sched = Schedule::from_rounds(rounds);
    debug_assert!(validate::check(inst, &sched, &inst.switch).is_ok());
    sched
}

/// The original batch failure runner: the round-by-round loop over a
/// fully materialized instance. Kept as the reference implementation for
/// differential testing of the streaming path.
pub fn run_policy_with_failures_legacy<P: OnlinePolicy + ?Sized>(
    inst: &Instance,
    policy: &mut P,
    plan: &FailurePlan,
) -> Schedule {
    assert!(
        inst.switch.is_unit_capacity(),
        "failure runner requires unit capacities"
    );
    assert!(
        inst.is_unit_demand(),
        "failure runner requires unit demands"
    );
    let n = inst.n();
    let mut rounds = vec![0u64; n];
    if n == 0 {
        return Schedule::from_rounds(rounds);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (inst.flows[i].release, i));
    let mut next = 0usize;
    let mut waiting: Vec<WaitingFlow> = Vec::new();
    let mut t = inst.flows[order[0]].release;
    let mut remaining = n;

    while remaining > 0 {
        while next < n && inst.flows[order[next]].release <= t {
            let i = order[next];
            let f = &inst.flows[i];
            waiting.push(WaitingFlow {
                id: FlowId(i as u32),
                src: f.src,
                dst: f.dst,
                release: f.release,
            });
            next += 1;
        }
        if waiting.is_empty() {
            t = inst.flows[order[next]].release;
            continue;
        }
        // Only flows whose both ports are up are offered to the policy.
        let usable: Vec<usize> = (0..waiting.len())
            .filter(|&k| {
                let w = &waiting[k];
                plan.is_up(PortSide::Input, w.src, t) && plan.is_up(PortSide::Output, w.dst, t)
            })
            .collect();
        if usable.is_empty() {
            t += 1;
            continue;
        }
        let visible: Vec<WaitingFlow> = usable.iter().map(|&k| waiting[k]).collect();
        let state = QueueState {
            round: t,
            waiting: &visible,
            m_in: inst.switch.num_inputs(),
            m_out: inst.switch.num_outputs(),
        };
        let mut selection = policy.choose(&state);
        selection.sort_unstable();
        selection.dedup();
        let mut used_in = vec![false; inst.switch.num_inputs()];
        let mut used_out = vec![false; inst.switch.num_outputs()];
        let mut picked: Vec<usize> = Vec::with_capacity(selection.len());
        for &k in &selection {
            let w = &visible[k];
            assert!(
                !used_in[w.src as usize] && !used_out[w.dst as usize],
                "policy {} returned a non-matching",
                policy.name()
            );
            used_in[w.src as usize] = true;
            used_out[w.dst as usize] = true;
            rounds[w.id.idx()] = t;
            picked.push(usable[k]);
        }
        remaining -= picked.len();
        picked.sort_unstable();
        for &k in picked.iter().rev() {
            waiting.swap_remove(k);
        }
        t += 1;
    }
    Schedule::from_rounds(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_core::gen::{random_instance, GenParams};
    use fss_online::{MaxCard, MinRTime};
    use rand::{rngs::SmallRng, SeedableRng};

    fn outage(side: PortSide, port: u32, from: u64, to: u64) -> Outage {
        Outage {
            side,
            port,
            from,
            to,
        }
    }

    #[test]
    fn no_failures_matches_plain_runner() {
        let mut rng = SmallRng::seed_from_u64(61);
        let inst = random_instance(&mut rng, &GenParams::unit(4, 20, 5));
        let plain = fss_online::run_policy(&inst, &mut MaxCard::default());
        let with =
            run_policy_with_failures(&inst, &mut MaxCard::default(), &FailurePlan::default());
        assert_eq!(plain, with);
    }

    #[test]
    fn streaming_matches_legacy_runner() {
        let mut rng = SmallRng::seed_from_u64(64);
        for _ in 0..6 {
            let inst = random_instance(&mut rng, &GenParams::unit(4, 25, 6));
            let plan = FailurePlan {
                outages: vec![
                    outage(PortSide::Input, 0, 0, 7),
                    outage(PortSide::Output, 2, 3, 9),
                ],
            };
            let streamed = run_policy_with_failures(&inst, &mut MinRTime::default(), &plan);
            let legacy = run_policy_with_failures_legacy(&inst, &mut MinRTime::default(), &plan);
            assert_eq!(streamed, legacy);
        }
    }

    #[test]
    fn nothing_scheduled_across_a_dead_port() {
        let mut rng = SmallRng::seed_from_u64(62);
        let inst = random_instance(&mut rng, &GenParams::unit(3, 15, 2));
        let plan = FailurePlan {
            outages: vec![outage(PortSide::Input, 0, 0, 6)],
        };
        let sched = run_policy_with_failures(&inst, &mut MinRTime::default(), &plan);
        for (i, f) in inst.flows.iter().enumerate() {
            let t = sched.rounds()[i];
            assert!(
                plan.is_up(PortSide::Input, f.src, t) && plan.is_up(PortSide::Output, f.dst, t),
                "flow {i} crossed a dead port at round {t}"
            );
        }
        validate::check(&inst, &sched, &inst.switch).unwrap();
    }

    #[test]
    fn all_flows_complete_after_recovery() {
        // Input 0 down for a long window; its flows complete afterwards.
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(0, 1, 0);
        b.unit_flow(1, 1, 0);
        let inst = b.build().unwrap();
        let plan = FailurePlan {
            outages: vec![outage(PortSide::Input, 0, 0, 10)],
        };
        let sched = run_policy_with_failures(&inst, &mut MaxCard::default(), &plan);
        assert!(sched.rounds()[0] >= 10);
        assert!(sched.rounds()[1] >= 10);
        assert_eq!(sched.rounds()[2], 0, "unaffected flow proceeds normally");
    }

    #[test]
    fn total_outage_still_terminates() {
        // Every port down for the first 4 rounds.
        let mut b = InstanceBuilder::new(Switch::uniform(2, 2, 1));
        b.unit_flow(0, 0, 0);
        b.unit_flow(1, 1, 0);
        let inst = b.build().unwrap();
        let outages = (0..2)
            .flat_map(|p| {
                [
                    outage(PortSide::Input, p, 0, 4),
                    outage(PortSide::Output, p, 0, 4),
                ]
            })
            .collect();
        let plan = FailurePlan { outages };
        let sched = run_policy_with_failures(&inst, &mut MaxCard::default(), &plan);
        assert!(sched.rounds().iter().all(|&t| t >= 4));
        validate::check(&inst, &sched, &inst.switch).unwrap();
    }

    #[test]
    fn failures_increase_response_times() {
        let mut rng = SmallRng::seed_from_u64(63);
        let inst = random_instance(&mut rng, &GenParams::unit(3, 18, 3));
        let base = fss_core::metrics::evaluate(
            &inst,
            &fss_online::run_policy(&inst, &mut MaxCard::default()),
        );
        let plan = FailurePlan {
            outages: vec![
                outage(PortSide::Input, 0, 0, 8),
                outage(PortSide::Output, 2, 2, 9),
            ],
        };
        let degraded = fss_core::metrics::evaluate(
            &inst,
            &run_policy_with_failures(&inst, &mut MaxCard::default(), &plan),
        );
        assert!(degraded.total_response >= base.total_response);
    }
}
