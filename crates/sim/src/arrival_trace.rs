//! On-disk arrival traces and their streaming replay source.
//!
//! An arrival trace is the serialized form of a workload: a JSON-lines
//! file whose header names the switch size and whose remaining lines are
//! one arrival each, sorted by release round —
//!
//! ```text
//! {"ports":8}
//! {"release":0,"src":3,"dst":5}
//! {"release":0,"src":1,"dst":1}
//! {"release":2,"src":7,"dst":0}
//! ```
//!
//! Traces make workloads *replayable*: any synthetic scenario can be
//! dumped to a trace ([`crate::scenario::ScenarioSpec::dump_trace`]) and
//! replayed later — on another machine, against another policy — with
//! bit-identical schedules, and real datacenter arrival logs can be
//! converted to the same format. The loader validates ports against the
//! header and enforces the [`FlowSource`] sorted-release contract, so a
//! loaded trace streams straight into the engine.

use std::path::Path;
use std::sync::Arc;

use fss_core::prelude::*;
use fss_engine::FlowSource;

use crate::scenario::ScenarioError;

// The line grammar lives in `fss-trace` (the streaming subsystem) and
// is re-exported here so historical consumers (`fss_sim::parse_trace_event`
// in the serve ingest loop) keep compiling: the in-memory loader below,
// the streaming reader, and live ingest all recognize the exact same
// line shapes.
pub use fss_trace::{parse_trace_event, TraceEvent};

/// A validated, in-memory arrival trace: a square unit-capacity switch
/// plus arrivals sorted by release round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTrace {
    /// Switch size (`ports x ports`, unit capacities).
    pub ports: usize,
    /// The arrivals, sorted by `release`; `id`s are the sequence numbers
    /// `0..n` in file order.
    pub arrivals: Vec<Arrival>,
}

/// Shared validation behind [`ArrivalTrace::new`] and
/// [`ArrivalTrace::from_jsonl`]: ports in range, releases sorted, ids
/// reassigned to sequence numbers. Each arrival carries the 1-based file
/// line it came from, so loader errors point at the real line even in
/// files with blank lines.
fn validated(
    ports: usize,
    arrivals: impl Iterator<Item = (usize, Arrival)>,
) -> Result<Vec<Arrival>, ScenarioError> {
    let mut out = Vec::new();
    let mut prev = 0u64;
    for (line, a) in arrivals {
        if a.src as usize >= ports || a.dst as usize >= ports {
            return Err(ScenarioError::PortOutOfRange {
                line,
                port: a.src.max(a.dst),
                ports,
            });
        }
        if a.release < prev {
            return Err(ScenarioError::UnsortedRelease {
                line,
                prev,
                next: a.release,
            });
        }
        prev = a.release;
        out.push(Arrival {
            id: out.len() as u64,
            ..a
        });
    }
    Ok(out)
}

impl ArrivalTrace {
    /// Build a trace from raw arrivals (ids are reassigned to sequence
    /// numbers). Returns an error if a port is out of range or the
    /// releases are not sorted.
    pub fn new(ports: usize, arrivals: Vec<Arrival>) -> Result<ArrivalTrace, ScenarioError> {
        if ports == 0 {
            return Err(ScenarioError::BadSpec(
                "trace needs at least one port".into(),
            ));
        }
        // Report errors with the line the arrival would occupy on disk
        // (1-based, after the header).
        let arrivals = validated(
            ports,
            arrivals.into_iter().enumerate().map(|(i, a)| (i + 2, a)),
        )?;
        Ok(ArrivalTrace { ports, arrivals })
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Is the trace empty?
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// One past the last release round (0 for an empty trace).
    pub fn horizon(&self) -> u64 {
        self.arrivals.last().map_or(0, |a| a.release + 1)
    }

    /// Encode as JSON lines (header, then one line per arrival).
    pub fn to_jsonl(&self) -> String {
        let mut out = fss_trace::header_line(self.ports);
        out.push('\n');
        for a in &self.arrivals {
            out.push_str(&fss_trace::arrival_line(a.release, a.src, a.dst));
            out.push('\n');
        }
        out
    }

    /// Decode and validate the JSON-lines form. Blank lines are ignored;
    /// errors carry 1-based line numbers.
    pub fn from_jsonl(text: &str) -> Result<ArrivalTrace, ScenarioError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(idx, l)| (idx + 1, l)) // 1-based file lines
            .filter(|(_, l)| !l.trim().is_empty());
        let (header_line, header) = lines.next().ok_or(ScenarioError::Parse {
            line: 1,
            msg: "empty trace file (expected a {\"ports\":N} header)".into(),
        })?;
        let ports = match parse_trace_event(header) {
            Ok(TraceEvent::Header { ports }) => ports,
            Ok(TraceEvent::Arrival { .. }) => {
                return Err(ScenarioError::Parse {
                    line: header_line,
                    msg: "expected a {\"ports\":N} header before arrivals".into(),
                })
            }
            Err(e) => {
                return Err(ScenarioError::Parse {
                    line: header_line,
                    msg: format!("bad header: {e}"),
                })
            }
        };
        if ports == 0 {
            return Err(ScenarioError::Parse {
                line: header_line,
                msg: "header declares zero ports".into(),
            });
        }
        let mut parsed: Vec<(usize, Arrival)> = Vec::new();
        for (line, text) in lines {
            match parse_trace_event(text) {
                Ok(TraceEvent::Arrival { release, src, dst }) => parsed.push((
                    line,
                    Arrival {
                        id: 0, // assigned by `validated`
                        src,
                        dst,
                        release,
                    },
                )),
                Ok(TraceEvent::Header { .. }) => {
                    return Err(ScenarioError::Parse {
                        line,
                        msg: "unexpected second header".into(),
                    })
                }
                Err(msg) => return Err(ScenarioError::Parse { line, msg }),
            }
        }
        let arrivals = validated(ports, parsed.into_iter())?;
        Ok(ArrivalTrace { ports, arrivals })
    }

    /// Load and validate a trace file.
    pub fn load(path: impl AsRef<Path>) -> Result<ArrivalTrace, ScenarioError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })?;
        ArrivalTrace::from_jsonl(&text)
    }

    /// Write the trace to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ScenarioError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_jsonl()).map_err(|e| ScenarioError::Io {
            path: path.display().to_string(),
            msg: e.to_string(),
        })
    }

    /// Materialize the trace as a batch [`Instance`] (flow index == trace
    /// sequence number), for the legacy batch paths and differential
    /// tests.
    pub fn to_instance(&self) -> Instance {
        let mut b = InstanceBuilder::new(Switch::uniform(self.ports, self.ports, 1));
        for a in &self.arrivals {
            b.unit_flow(a.src, a.dst, a.release);
        }
        b.build()
            .expect("validated trace respects model invariants")
    }
}

/// Streaming replay of an [`ArrivalTrace`]: implements [`FlowSource`], so
/// a trace drives the engine exactly like a synthetic generator. The
/// trace is shared via [`Arc`], so many replays (one per policy, say) pay
/// for one load.
pub struct TraceSource {
    trace: Arc<ArrivalTrace>,
    next: usize,
    horizon: Option<u64>,
}

impl TraceSource {
    /// Replay the whole trace.
    pub fn new(trace: Arc<ArrivalTrace>) -> TraceSource {
        TraceSource {
            trace,
            next: 0,
            horizon: None,
        }
    }

    /// Replay only the arrivals with `release < horizon` (`None` = all).
    pub fn with_horizon(trace: Arc<ArrivalTrace>, horizon: Option<u64>) -> TraceSource {
        TraceSource {
            trace,
            next: 0,
            horizon,
        }
    }
}

impl FlowSource for TraceSource {
    fn m_in(&self) -> usize {
        self.trace.ports
    }

    fn m_out(&self) -> usize {
        self.trace.ports
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = *self.trace.arrivals.get(self.next)?;
        if let Some(h) = self.horizon {
            if a.release >= h {
                return None;
            }
        }
        self.next += 1;
        Some(a)
    }

    fn len_hint(&self) -> Option<usize> {
        match self.horizon {
            None => Some(self.trace.len()),
            // Counting under a horizon would cost a scan; let the engine
            // size its buffers lazily instead.
            Some(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(release: u64, src: u32, dst: u32) -> Arrival {
        Arrival {
            id: 0,
            src,
            dst,
            release,
        }
    }

    #[test]
    fn trace_events_parse_line_by_line() {
        assert_eq!(
            parse_trace_event("{\"ports\":8}").unwrap(),
            TraceEvent::Header { ports: 8 }
        );
        assert_eq!(
            parse_trace_event("{\"release\":3,\"src\":1,\"dst\":7}").unwrap(),
            TraceEvent::Arrival {
                release: 3,
                src: 1,
                dst: 7
            }
        );
        assert!(parse_trace_event("{\"kind\":\"Finish\"}").is_err());
        assert!(parse_trace_event("not json").is_err());
    }

    #[test]
    fn a_trace_file_is_a_valid_event_stream() {
        // The bridge invariant: every line of a dumped trace parses as
        // a TraceEvent, header first, arrivals after.
        let trace = ArrivalTrace::new(4, vec![arr(0, 0, 1), arr(2, 3, 2)]).unwrap();
        let events: Vec<TraceEvent> = trace
            .to_jsonl()
            .lines()
            .map(|l| parse_trace_event(l).unwrap())
            .collect();
        assert_eq!(events[0], TraceEvent::Header { ports: 4 });
        assert_eq!(events.len(), 3);
        assert!(events[1..]
            .iter()
            .all(|e| matches!(e, TraceEvent::Arrival { .. })));
    }

    #[test]
    fn jsonl_round_trip() {
        let trace = ArrivalTrace::new(4, vec![arr(0, 0, 1), arr(0, 3, 2), arr(5, 1, 1)]).unwrap();
        let text = trace.to_jsonl();
        assert!(text.starts_with("{\"ports\":4}\n"));
        let back = ArrivalTrace::from_jsonl(&text).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.horizon(), 6);
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn ids_are_sequence_numbers() {
        let trace = ArrivalTrace::new(2, vec![arr(0, 0, 0), arr(1, 1, 1)]).unwrap();
        let ids: Vec<u64> = trace.arrivals.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn empty_file_is_rejected() {
        assert!(matches!(
            ArrivalTrace::from_jsonl(""),
            Err(ScenarioError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn bad_header_is_rejected() {
        assert!(matches!(
            ArrivalTrace::from_jsonl("{\"release\":0,\"src\":0,\"dst\":0}\n"),
            Err(ScenarioError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            ArrivalTrace::from_jsonl("{\"ports\":0}\n"),
            Err(ScenarioError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn header_errors_cite_the_real_line_past_blanks() {
        assert!(matches!(
            ArrivalTrace::from_jsonl("\n\nnot a header\n"),
            Err(ScenarioError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn out_of_range_port_is_rejected_with_line() {
        let text = "{\"ports\":2}\n{\"release\":0,\"src\":0,\"dst\":1}\n{\"release\":1,\"src\":2,\"dst\":0}\n";
        assert!(matches!(
            ArrivalTrace::from_jsonl(text),
            Err(ScenarioError::PortOutOfRange {
                line: 3,
                port: 2,
                ports: 2
            })
        ));
    }

    #[test]
    fn unsorted_releases_are_rejected() {
        let text = "{\"ports\":2}\n{\"release\":4,\"src\":0,\"dst\":1}\n{\"release\":3,\"src\":1,\"dst\":0}\n";
        assert!(matches!(
            ArrivalTrace::from_jsonl(text),
            Err(ScenarioError::UnsortedRelease {
                line: 3,
                prev: 4,
                next: 3
            })
        ));
    }

    #[test]
    fn garbage_line_is_rejected_with_line_number() {
        let text = "{\"ports\":2}\n{\"release\":0,\"src\":0,\"dst\":1}\nnot json\n";
        assert!(matches!(
            ArrivalTrace::from_jsonl(text),
            Err(ScenarioError::Parse { line: 3, .. })
        ));
    }

    #[test]
    fn source_respects_contract_and_horizon() {
        let trace =
            Arc::new(ArrivalTrace::new(3, vec![arr(0, 0, 1), arr(2, 1, 2), arr(7, 2, 0)]).unwrap());
        let mut s = TraceSource::new(trace.clone());
        assert_eq!(s.m_in(), 3);
        assert_eq!(s.len_hint(), Some(3));
        let all: Vec<Arrival> = std::iter::from_fn(|| s.next_arrival()).collect();
        assert_eq!(all.len(), 3);
        assert!(all.windows(2).all(|w| w[0].release <= w[1].release));
        assert!(all.windows(2).all(|w| w[0].id < w[1].id));

        let mut s = TraceSource::with_horizon(trace, Some(3));
        let cut: Vec<Arrival> = std::iter::from_fn(|| s.next_arrival()).collect();
        assert_eq!(cut.len(), 2, "horizon drops the release-7 arrival");
    }

    #[test]
    fn to_instance_matches_trace_order() {
        let trace = ArrivalTrace::new(2, vec![arr(0, 0, 1), arr(4, 1, 0)]).unwrap();
        let inst = trace.to_instance();
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.flows[1].release, 4);
        assert!(inst.is_unit_demand());
    }
}
