//! # fss-sim — the flow-level simulator and experiment runner
//!
//! A from-scratch replacement for the paper's in-house C++/LEMON simulator
//! (§5.2): Poisson workloads on a unit-capacity switch, round-based online
//! execution of pluggable heuristics, multi-trial experiment grids (run in
//! parallel with rayon), and the LP reference bounds the paper compares
//! against in Figures 6 and 7.
//!
//! The paper's headline configuration is a `150 x 150` switch with
//! `M ∈ {50, 100, 150, 300, 600}` mean arrivals per round for `T ∈ {10,
//! 12, ..., 20, 40, 60, 80, 100}` rounds, 10 trials per point. All of that
//! is expressible here; the figure binaries in `fss-bench` scale the
//! LP-bound series down (see DESIGN.md §3.4 — the paper needed >3 h of
//! Gurobi time per large cell).
//!
//! Heuristic execution routes through the event-driven engine
//! (`fss-engine`): [`PolicyKind::run`] produces schedules round-for-round
//! identical to the legacy loop (available as [`PolicyKind::run_legacy`]
//! for differential testing) while cutting the cost of the heavy
//! `M = 4m` cells.
//!
//! Workloads are described declaratively by the [`scenario`] layer: a
//! serializable [`ScenarioSpec`] (ports, horizon, Poisson or trace-replay
//! arrivals, optional failure plan, seed) is the single construction
//! point every consumer — engine, saturation sweep, failure runner, bench
//! registry, CLI — builds its `FlowSource` from. On-disk arrival traces
//! ([`arrival_trace`]) make any workload exactly replayable.

#![deny(missing_docs)]

pub mod arrival_trace;
pub mod experiment;
pub mod failures;
pub mod report;
pub mod saturation;
pub mod scenario;
pub mod stats;
pub mod trace;
pub mod workload;

pub use arrival_trace::{parse_trace_event, ArrivalTrace, TraceEvent, TraceSource};
pub use experiment::{
    lp_bounds_grid, lp_bounds_grid_parts, run_grid, run_grid_telemetry, CellResult,
    ExperimentConfig, LpBoundParts, LpBoundResult, PolicyKind,
};
pub use failures::{
    run_policy_with_failures, run_policy_with_failures_legacy, FailurePlan, Outage,
};
pub use report::{
    bench_artifact_name, bench_cell_to_jsonl, bench_report_from_json, bench_report_to_json,
    cell_fingerprint, cells_eq_modulo_timing, parse_cells_jsonl, read_cells_jsonl,
    reports_eq_modulo_timing, validate_bench_report, BenchCell, BenchReport, CellsReplay,
    BENCH_SCHEMA_READ_MIN, BENCH_SCHEMA_VERSION,
};
pub use saturation::{
    saturation_sweep, saturation_sweep_cores, saturation_sweep_legacy, saturation_sweep_telemetry,
    stable_intensity, stable_intensity_legacy, SaturationPoint,
};
pub use scenario::{
    run_scenario, run_scenario_cores, run_scenario_telemetry, run_scenario_with, run_source_cores,
    run_source_telemetry, ArrivalSpec, ScenarioError, ScenarioSpec,
};
pub use stats::{response_histogram, response_percentiles, ResponsePercentiles};
pub use trace::{run_policy_traced, Trace, TraceRound};
pub use workload::{poisson, poisson_workload, WorkloadParams};
