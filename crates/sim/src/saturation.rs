//! Saturation analysis: how much load can a policy sustain?
//!
//! A step toward the paper's §6 "beyond worst-case analysis" direction:
//! for Poisson arrivals with per-port intensity `λ = M/m`, a policy is
//! *stable* when queues stay bounded as `T` grows. A perfect scheduler on
//! a uniform random workload is stable for `λ < 1`; real heuristics peel
//! off earlier. [`saturation_sweep`] measures mean response versus `λ` and
//! [`stable_intensity`] estimates the knee by bisection.
//!
//! Both run through streaming [`ScenarioSpec`]s: each trial is a Poisson
//! scenario driven through the event-driven engine in `O(peak queue)`
//! memory, so horizons in the millions of rounds are practical. The
//! historical materialize-then-run implementations are kept as
//! [`saturation_sweep_legacy`] / [`stable_intensity_legacy`]; their
//! results are identical round-for-round (differentially tested) because
//! a [`PoissonSource`](fss_engine::PoissonSource) with seed `s` draws the
//! exact same RNG stream as `poisson_workload` with seed `s`.

use rand::{rngs::SmallRng, SeedableRng};

use crate::experiment::PolicyKind;
use crate::scenario::ScenarioSpec;
use crate::workload::{poisson_workload, WorkloadParams};

/// One sweep point: intensity vs observed responses.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Per-port arrival intensity `λ = M/m`.
    pub intensity: f64,
    /// Mean response time over the trials.
    pub mean_response: f64,
    /// Mean maximum response time.
    pub max_response: f64,
}

/// The per-trial RNG seed for a sweep point (shared by the streaming and
/// legacy paths so their workloads are identical).
fn trial_seed(seed: u64, lambda: f64, trial: u64) -> u64 {
    seed ^ (lambda.to_bits().rotate_left(17)) ^ trial
}

/// The scenario behind trial `k` of a sweep point: `Poisson(λ·m)` on an
/// `m x m` switch for `rounds` rounds.
pub fn sweep_scenario(m: usize, lambda: f64, rounds: u64, seed: u64, trial: u64) -> ScenarioSpec {
    ScenarioSpec::poisson(
        m,
        lambda * m as f64,
        rounds,
        trial_seed(seed, lambda, trial),
    )
}

/// Measure mean/max response across a grid of intensities by streaming
/// each trial's scenario through the engine.
pub fn saturation_sweep(
    policy: PolicyKind,
    m: usize,
    rounds: u64,
    intensities: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<SaturationPoint> {
    saturation_sweep_telemetry(
        policy,
        m,
        rounds,
        intensities,
        trials,
        seed,
        &mut fss_engine::EngineTelemetry::disabled(),
    )
}

/// [`saturation_sweep`] recording round-loop telemetry into `tele`.
/// The measured points are identical either way — telemetry observes,
/// never steers.
#[allow(clippy::too_many_arguments)]
pub fn saturation_sweep_telemetry(
    policy: PolicyKind,
    m: usize,
    rounds: u64,
    intensities: &[f64],
    trials: u64,
    seed: u64,
    tele: &mut fss_engine::EngineTelemetry,
) -> Vec<SaturationPoint> {
    intensities
        .iter()
        .map(|&lambda| {
            let mut avg = 0.0;
            let mut max = 0.0;
            for k in 0..trials {
                let spec = sweep_scenario(m, lambda, rounds, seed, k);
                let stats =
                    crate::scenario::run_scenario_telemetry(&spec, policy, tele, |_, _, _| {})
                        .expect("synthetic scenario is valid");
                avg += stats.mean_response();
                max += stats.max_response as f64;
            }
            SaturationPoint {
                intensity: lambda,
                mean_response: avg / trials as f64,
                max_response: max / trials as f64,
            }
        })
        .collect()
}

/// [`saturation_sweep_telemetry`] with trial-level parallelism: up to
/// `cores` worker threads each stream a strided subset of a point's
/// trials, and the per-trial results are summed in trial-index order —
/// so the floating-point accumulation (and thus every reported number)
/// is bit-identical to the sequential sweep. Per-thread telemetry
/// handles are merged into `tele` after each point.
#[allow(clippy::too_many_arguments)]
pub fn saturation_sweep_cores(
    policy: PolicyKind,
    m: usize,
    rounds: u64,
    intensities: &[f64],
    trials: u64,
    seed: u64,
    cores: usize,
    tele: &mut fss_engine::EngineTelemetry,
) -> Vec<SaturationPoint> {
    if cores <= 1 || trials <= 1 {
        return saturation_sweep_telemetry(policy, m, rounds, intensities, trials, seed, tele);
    }
    let workers = cores.min(trials as usize);
    intensities
        .iter()
        .map(|&lambda| {
            let mut per_trial: Vec<(f64, f64)> = vec![(0.0, 0.0); trials as usize];
            let mut worker_teles: Vec<fss_engine::EngineTelemetry> = Vec::new();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for w in 0..workers {
                    let mut wtele = if tele.is_enabled() {
                        fss_engine::EngineTelemetry::enabled()
                    } else {
                        fss_engine::EngineTelemetry::disabled()
                    };
                    handles.push(scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut k = w as u64;
                        while k < trials {
                            let spec = sweep_scenario(m, lambda, rounds, seed, k);
                            let stats = crate::scenario::run_scenario_telemetry(
                                &spec,
                                policy,
                                &mut wtele,
                                |_, _, _| {},
                            )
                            .expect("synthetic scenario is valid");
                            out.push((k, stats.mean_response(), stats.max_response as f64));
                            k += workers as u64;
                        }
                        (out, wtele)
                    }));
                }
                for h in handles {
                    let (out, wtele) = h.join().expect("sweep worker panicked");
                    for (k, mean, max) in out {
                        per_trial[k as usize] = (mean, max);
                    }
                    worker_teles.push(wtele);
                }
            });
            for wtele in &worker_teles {
                tele.merge(wtele);
            }
            let (mut avg, mut max) = (0.0, 0.0);
            for &(a, b) in &per_trial {
                avg += a;
                max += b;
            }
            SaturationPoint {
                intensity: lambda,
                mean_response: avg / trials as f64,
                max_response: max / trials as f64,
            }
        })
        .collect()
}

/// Estimate the largest intensity at which the policy keeps the mean
/// response under `threshold` (bisection over `[lo, hi]`, 8 steps).
pub fn stable_intensity(
    policy: PolicyKind,
    m: usize,
    rounds: u64,
    threshold: f64,
    trials: u64,
    seed: u64,
) -> f64 {
    bisect_knee(threshold, |mid| {
        saturation_sweep(policy, m, rounds, &[mid], trials, seed)[0].mean_response
    })
}

/// The original batch implementation of [`saturation_sweep`]: each trial
/// materializes an [`Instance`](fss_core::Instance) before running. Kept
/// as the reference for differential testing of the streaming path.
pub fn saturation_sweep_legacy(
    policy: PolicyKind,
    m: usize,
    rounds: u64,
    intensities: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<SaturationPoint> {
    intensities
        .iter()
        .map(|&lambda| {
            let mut avg = 0.0;
            let mut max = 0.0;
            for k in 0..trials {
                let mut rng = SmallRng::seed_from_u64(trial_seed(seed, lambda, k));
                let params = WorkloadParams {
                    m,
                    mean_arrivals: lambda * m as f64,
                    rounds,
                };
                let inst = poisson_workload(&mut rng, &params);
                if inst.n() == 0 {
                    continue;
                }
                let sched = policy.run(&inst);
                let met = fss_core::metrics::evaluate(&inst, &sched);
                avg += met.mean_response;
                max += met.max_response as f64;
            }
            SaturationPoint {
                intensity: lambda,
                mean_response: avg / trials as f64,
                max_response: max / trials as f64,
            }
        })
        .collect()
}

/// The original batch implementation of [`stable_intensity`], on top of
/// [`saturation_sweep_legacy`].
pub fn stable_intensity_legacy(
    policy: PolicyKind,
    m: usize,
    rounds: u64,
    threshold: f64,
    trials: u64,
    seed: u64,
) -> f64 {
    bisect_knee(threshold, |mid| {
        saturation_sweep_legacy(policy, m, rounds, &[mid], trials, seed)[0].mean_response
    })
}

fn bisect_knee(threshold: f64, mut mean_at: impl FnMut(f64) -> f64) -> f64 {
    let (mut lo, mut hi) = (0.05f64, 1.5f64);
    for _ in 0..8 {
        let mid = 0.5 * (lo + hi);
        if mean_at(mid) <= threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_grows_with_intensity() {
        let pts = saturation_sweep(PolicyKind::MaxCard, 6, 12, &[0.3, 1.2], 2, 11);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].mean_response > pts[0].mean_response,
            "4x the load must cost response time: {:?}",
            pts
        );
    }

    #[test]
    fn light_load_is_fast() {
        let pts = saturation_sweep(PolicyKind::MinRTime, 6, 12, &[0.15], 2, 13);
        assert!(
            pts[0].mean_response < 2.5,
            "near-idle switch must respond fast"
        );
    }

    #[test]
    fn stable_intensity_is_in_range() {
        let s = stable_intensity(PolicyKind::MaxCard, 5, 10, 3.0, 1, 17);
        assert!(s > 0.05 && s < 1.5);
    }

    #[test]
    fn streaming_sweep_equals_legacy_sweep() {
        for policy in [PolicyKind::MaxCard, PolicyKind::FifoGreedy] {
            let a = saturation_sweep(policy, 5, 14, &[0.25, 0.8, 1.3], 2, 29);
            let b = saturation_sweep_legacy(policy, 5, 14, &[0.25, 0.8, 1.3], 2, 29);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.intensity, y.intensity);
                assert_eq!(x.mean_response, y.mean_response, "{}", policy.name());
                assert_eq!(x.max_response, y.max_response, "{}", policy.name());
            }
        }
    }

    #[test]
    fn cores_sweep_is_bit_identical_to_sequential() {
        for policy in [PolicyKind::MaxCard, PolicyKind::MaxWeight] {
            let seq = saturation_sweep(policy, 5, 20, &[0.3, 0.9], 3, 41);
            for cores in [2, 4] {
                let par = saturation_sweep_cores(
                    policy,
                    5,
                    20,
                    &[0.3, 0.9],
                    3,
                    41,
                    cores,
                    &mut fss_engine::EngineTelemetry::disabled(),
                );
                for (a, b) in seq.iter().zip(&par) {
                    assert_eq!(a.intensity, b.intensity);
                    assert_eq!(
                        a.mean_response,
                        b.mean_response,
                        "{} @{cores}",
                        policy.name()
                    );
                    assert_eq!(a.max_response, b.max_response, "{} @{cores}", policy.name());
                }
            }
        }
    }

    #[test]
    fn streaming_knee_equals_legacy_knee() {
        let a = stable_intensity(PolicyKind::MaxCard, 5, 10, 3.0, 2, 17);
        let b = stable_intensity_legacy(PolicyKind::MaxCard, 5, 10, 3.0, 2, 17);
        assert_eq!(a, b);
    }
}
