//! Saturation analysis: how much load can a policy sustain?
//!
//! A step toward the paper's §6 "beyond worst-case analysis" direction:
//! for Poisson arrivals with per-port intensity `λ = M/m`, a policy is
//! *stable* when queues stay bounded as `T` grows. A perfect scheduler on
//! a uniform random workload is stable for `λ < 1`; real heuristics peel
//! off earlier. [`saturation_sweep`] measures mean response versus `λ` and
//! [`stable_intensity`] estimates the knee by bisection.

use rand::{rngs::SmallRng, SeedableRng};

use crate::experiment::PolicyKind;
use crate::workload::{poisson_workload, WorkloadParams};

/// One sweep point: intensity vs observed responses.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Per-port arrival intensity `λ = M/m`.
    pub intensity: f64,
    /// Mean response time over the trials.
    pub mean_response: f64,
    /// Mean maximum response time.
    pub max_response: f64,
}

/// Measure mean/max response across a grid of intensities.
pub fn saturation_sweep(
    policy: PolicyKind,
    m: usize,
    rounds: u64,
    intensities: &[f64],
    trials: u64,
    seed: u64,
) -> Vec<SaturationPoint> {
    intensities
        .iter()
        .map(|&lambda| {
            let mut avg = 0.0;
            let mut max = 0.0;
            for k in 0..trials {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (lambda.to_bits().rotate_left(17)) ^ k);
                let params = WorkloadParams {
                    m,
                    mean_arrivals: lambda * m as f64,
                    rounds,
                };
                let inst = poisson_workload(&mut rng, &params);
                if inst.n() == 0 {
                    continue;
                }
                let sched = policy.run(&inst);
                let met = fss_core::metrics::evaluate(&inst, &sched);
                avg += met.mean_response;
                max += met.max_response as f64;
            }
            SaturationPoint {
                intensity: lambda,
                mean_response: avg / trials as f64,
                max_response: max / trials as f64,
            }
        })
        .collect()
}

/// Estimate the largest intensity at which the policy keeps the mean
/// response under `threshold` (bisection over `[lo, hi]`, `iters` steps).
pub fn stable_intensity(
    policy: PolicyKind,
    m: usize,
    rounds: u64,
    threshold: f64,
    trials: u64,
    seed: u64,
) -> f64 {
    let (mut lo, mut hi) = (0.05f64, 1.5f64);
    for _ in 0..8 {
        let mid = 0.5 * (lo + hi);
        let pt = &saturation_sweep(policy, m, rounds, &[mid], trials, seed)[0];
        if pt.mean_response <= threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_grows_with_intensity() {
        let pts = saturation_sweep(PolicyKind::MaxCard, 6, 12, &[0.3, 1.2], 2, 11);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].mean_response > pts[0].mean_response,
            "4x the load must cost response time: {:?}",
            pts
        );
    }

    #[test]
    fn light_load_is_fast() {
        let pts = saturation_sweep(PolicyKind::MinRTime, 6, 12, &[0.15], 2, 13);
        assert!(
            pts[0].mean_response < 2.5,
            "near-idle switch must respond fast"
        );
    }

    #[test]
    fn stable_intensity_is_in_range() {
        let s = stable_intensity(PolicyKind::MaxCard, 5, 10, 3.0, 1, 17);
        assert!(s > 0.05 && s < 1.5);
    }
}
