//! Poisson flow workloads (paper §5.2.1).
//!
//! For each round `t < T`, `Poisson(M)` unit flows arrive, each with a
//! uniformly random input and output port. `M = m` means one new flow per
//! port per round on average; the paper stresses the switch up to `M = 4m`.

use fss_core::prelude::*;
use rand::Rng;

/// Parameters of the paper's workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadParams {
    /// Square switch size (`m x m`, unit capacities).
    pub m: usize,
    /// Mean arrivals per round (`M` in the paper).
    pub mean_arrivals: f64,
    /// Number of arrival rounds (`T` in the paper).
    pub rounds: u64,
}

impl WorkloadParams {
    /// The paper's full-scale configuration for a given `(M, T)` cell.
    pub fn paper(mean_arrivals: f64, rounds: u64) -> Self {
        WorkloadParams {
            m: 150,
            mean_arrivals,
            rounds,
        }
    }
}

/// Sample `Poisson(lambda)`.
///
/// Knuth's product method is exact but underflows for large `lambda`, so
/// the sampler splits large rates into `<= 30` chunks and sums — Poisson
/// additivity keeps the result exactly distributed. Re-exported from
/// `fss-engine` (the canonical implementation) so the batch workload
/// generator and the streaming `PoissonSource` draw from the same code.
pub use fss_engine::poisson;

/// Generate a workload instance: `Poisson(M)` uniform unit flows per round.
pub fn poisson_workload<R: Rng + ?Sized>(rng: &mut R, p: &WorkloadParams) -> Instance {
    let mut b = InstanceBuilder::new(Switch::uniform(p.m, p.m, 1));
    for t in 0..p.rounds {
        let k = poisson(rng, p.mean_arrivals);
        for _ in 0..k {
            let src = rng.gen_range(0..p.m as u32);
            let dst = rng.gen_range(0..p.m as u32);
            b.unit_flow(src, dst, t);
        }
    }
    b.build().expect("workload respects model invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn poisson_mean_is_close_small_lambda() {
        let mut rng = SmallRng::seed_from_u64(1);
        let lambda = 3.5;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 0.1, "sample mean {mean}");
    }

    #[test]
    fn poisson_mean_is_close_large_lambda() {
        let mut rng = SmallRng::seed_from_u64(2);
        let lambda = 600.0;
        let n = 3_000;
        let mean: f64 = (0..n)
            .map(|_| poisson(&mut rng, lambda) as f64)
            .sum::<f64>()
            / n as f64;
        assert!((mean - lambda).abs() < 5.0, "sample mean {mean}");
        // Variance of Poisson equals the mean.
        let var: f64 = (0..n)
            .map(|_| {
                let x = poisson(&mut rng, lambda) as f64;
                (x - lambda) * (x - lambda)
            })
            .sum::<f64>()
            / n as f64;
        assert!((var - lambda).abs() < 60.0, "sample variance {var}");
    }

    #[test]
    fn poisson_chunked_mean_and_variance_across_boundary() {
        // The sampler switches from single-shot Knuth to chunked sums
        // above lambda = 30; rates just above the boundary exercise the
        // 2-chunk split (lambda / 2 per chunk) and must keep both moments
        // of the distribution (mean = variance = lambda, by additivity of
        // independent Poissons).
        for &lambda in &[30.5, 31.0, 45.0, 60.0, 61.0] {
            let mut rng = SmallRng::seed_from_u64(f64::to_bits(lambda));
            let n = 12_000;
            let samples: Vec<f64> = (0..n).map(|_| poisson(&mut rng, lambda) as f64).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            // Std error of the mean is sqrt(lambda/n) < 0.08; allow 6 sigma.
            assert!(
                (mean - lambda).abs() < 0.5,
                "lambda {lambda}: sample mean {mean}"
            );
            // Var(sample variance) ~ 2*lambda^2/n: generous 10% band.
            assert!(
                (var - lambda).abs() < 0.1 * lambda + 1.0,
                "lambda {lambda}: sample variance {var}"
            );
        }
    }

    #[test]
    fn poisson_zero_rate() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn workload_shape() {
        let mut rng = SmallRng::seed_from_u64(4);
        let p = WorkloadParams {
            m: 10,
            mean_arrivals: 5.0,
            rounds: 20,
        };
        let inst = poisson_workload(&mut rng, &p);
        assert!(inst.is_unit_demand());
        assert!(inst.switch.is_unit_capacity());
        assert_eq!(inst.switch.num_inputs(), 10);
        assert!(inst.max_release() < 20);
        // ~100 flows expected; allow wide slack.
        assert!(inst.n() > 40 && inst.n() < 220, "n = {}", inst.n());
    }

    #[test]
    fn workloads_reproducible_by_seed() {
        let p = WorkloadParams {
            m: 6,
            mean_arrivals: 3.0,
            rounds: 10,
        };
        let a = poisson_workload(&mut SmallRng::seed_from_u64(9), &p);
        let b = poisson_workload(&mut SmallRng::seed_from_u64(9), &p);
        assert_eq!(a, b);
    }

    #[test]
    fn paper_params() {
        let p = WorkloadParams::paper(300.0, 40);
        assert_eq!(p.m, 150);
        assert_eq!(p.rounds, 40);
    }
}
