//! The experiment runner behind Figures 6 and 7.
//!
//! A grid of `(M, T)` cells is evaluated for each policy over `trials`
//! seeds; trials run in parallel (rayon). LP reference bounds — LP (1)–(4)
//! for average response, the binary-searched LP (19)–(21) for maximum
//! response — are computed by [`lp_bounds_grid`], typically on a scaled
//! switch (see DESIGN.md §3.4).

use fss_core::prelude::*;
use fss_engine::BuiltinPolicy;
use fss_offline::art::{art_lp_lower_bound, art_lp_lower_bound_windowed, ArtLpError};
use fss_offline::mrt::min_feasible_rho;
use fss_online::{run_policy, FifoGreedy, MaxCard, MaxWeight, MinRTime};
use rand::{rngs::SmallRng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::workload::{poisson_workload, WorkloadParams};

/// The heuristics the experiments compare (paper's trio + FIFO floor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Maximum-cardinality matching.
    MaxCard,
    /// Max-weight matching, weight = waiting time.
    MinRTime,
    /// Max-weight matching, weight = endpoint queue sizes.
    MaxWeight,
    /// Oldest-first greedy (baseline; not in the paper's trio).
    FifoGreedy,
}

impl PolicyKind {
    /// The paper's three heuristics.
    pub const PAPER_TRIO: [PolicyKind; 3] = [
        PolicyKind::MaxCard,
        PolicyKind::MinRTime,
        PolicyKind::MaxWeight,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::MaxCard => "MaxCard",
            PolicyKind::MinRTime => "MinRTime",
            PolicyKind::MaxWeight => "MaxWeight",
            PolicyKind::FifoGreedy => "FifoGreedy",
        }
    }

    /// The engine counterpart of this policy.
    pub fn to_engine(self) -> BuiltinPolicy {
        match self {
            PolicyKind::MaxCard => BuiltinPolicy::MaxCard,
            PolicyKind::MinRTime => BuiltinPolicy::MinRTime,
            PolicyKind::MaxWeight => BuiltinPolicy::MaxWeight,
            PolicyKind::FifoGreedy => BuiltinPolicy::FifoGreedy,
        }
    }

    /// Run the policy over an instance through the event-driven engine
    /// (`fss-engine`). Schedules are round-for-round identical to
    /// [`PolicyKind::run_legacy`] — the engine's exact mode is
    /// differentially tested against the legacy loop — but the hot
    /// `M = 4m` cells run substantially faster.
    pub fn run(self, inst: &Instance) -> Schedule {
        fss_engine::run_builtin(inst, self.to_engine())
    }

    /// [`PolicyKind::run`] recording round-loop telemetry into `tele`.
    /// The schedule is bit-identical to the uninstrumented run —
    /// telemetry observes, never steers.
    pub fn run_telemetry(
        self,
        inst: &Instance,
        tele: &mut fss_engine::EngineTelemetry,
    ) -> Schedule {
        fss_engine::run_builtin_telemetry(inst, self.to_engine(), tele)
    }

    /// Run the policy over an instance with the legacy round-by-round
    /// loop ([`fss_online::run_policy`]). Kept as the reference
    /// implementation for differential testing.
    pub fn run_legacy(self, inst: &Instance) -> Schedule {
        match self {
            PolicyKind::MaxCard => run_policy(inst, &mut MaxCard::default()),
            PolicyKind::MinRTime => run_policy(inst, &mut MinRTime::default()),
            PolicyKind::MaxWeight => run_policy(inst, &mut MaxWeight::default()),
            PolicyKind::FifoGreedy => run_policy(inst, &mut FifoGreedy::default()),
        }
    }
}

/// A full experiment grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Switch size (paper: 150).
    pub m: usize,
    /// Mean-arrival values `M` (paper: 50, 100, 150, 300, 600).
    pub m_values: Vec<f64>,
    /// Round counts `T` (paper: 10..20 step 2, then 40..100 step 20).
    pub t_values: Vec<u64>,
    /// Trials per cell (paper: 10).
    pub trials: u64,
    /// Base RNG seed; trial `k` of cell `(M, T)` derives a unique stream.
    pub seed: u64,
    /// Policies to evaluate.
    pub policies: Vec<PolicyKind>,
}

impl ExperimentConfig {
    /// The paper's full grid (§5.2.1). Heavy: heuristics only.
    pub fn paper_full() -> Self {
        ExperimentConfig {
            m: 150,
            m_values: vec![50.0, 100.0, 150.0, 300.0, 600.0],
            t_values: vec![10, 12, 14, 16, 18, 20, 40, 60, 80, 100],
            trials: 10,
            seed: 0x5eed_f10e,
            policies: PolicyKind::PAPER_TRIO.to_vec(),
        }
    }

    /// A proportionally scaled grid: switch `m`, arrival rates scaled by
    /// `m / 150`, suitable for the LP-bound series.
    pub fn scaled(m: usize, t_values: Vec<u64>, trials: u64) -> Self {
        let f = m as f64 / 150.0;
        ExperimentConfig {
            m,
            m_values: [50.0, 100.0, 150.0, 300.0, 600.0]
                .iter()
                .map(|v| (v * f).max(1.0))
                .collect(),
            t_values,
            trials,
            seed: 0x5eed_f10e,
            policies: PolicyKind::PAPER_TRIO.to_vec(),
        }
    }

    /// Seed for trial `k` of cell `(M, T)`. Derived from the *values* (not
    /// grid indices) so that heuristic runs and LP-bound runs over
    /// different sub-grids still see identical workloads per cell — the
    /// paired comparison the paper's figures rely on.
    fn trial_seed(&self, mean_arrivals: f64, rounds: u64, trial: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(mean_arrivals.to_bits().rotate_left(17))
            .wrapping_add(rounds << 20)
            .wrapping_add(trial)
    }
}

/// Aggregated result of one `(policy, M, T)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellResult {
    /// Policy evaluated.
    pub policy: PolicyKind,
    /// Mean arrivals per round.
    pub mean_arrivals: f64,
    /// Arrival rounds.
    pub rounds: u64,
    /// Trials aggregated.
    pub trials: u64,
    /// Mean (over trials) of the average response time.
    pub avg_response: f64,
    /// Mean (over trials) of the maximum response time.
    pub max_response: f64,
    /// Mean number of flows per trial.
    pub mean_flows: f64,
}

/// LP reference bounds for one `(M, T)` cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LpBoundResult {
    /// Mean arrivals per round.
    pub mean_arrivals: f64,
    /// Arrival rounds.
    pub rounds: u64,
    /// Trials aggregated.
    pub trials: u64,
    /// Mean of `LP(1)-(4) optimum / n`: fractional average response bound.
    pub avg_response_bound: f64,
    /// Mean of the binary-searched minimum LP-feasible ρ.
    pub max_response_bound: f64,
}

/// Run every `(policy, M, T, trial)` combination; trials in parallel.
pub fn run_grid(cfg: &ExperimentConfig) -> Vec<CellResult> {
    run_grid_impl(cfg, false).0
}

/// [`run_grid`] with round-loop telemetry enabled: returns the cells
/// (identical to an uninstrumented run — telemetry observes, never
/// steers) plus one [`fss_telemetry::TelemetrySnapshot`] merged across every
/// `(policy, M, T)` cell of the grid.
pub fn run_grid_telemetry(
    cfg: &ExperimentConfig,
) -> (Vec<CellResult>, fss_telemetry::TelemetrySnapshot) {
    run_grid_impl(cfg, true)
}

fn run_grid_impl(
    cfg: &ExperimentConfig,
    instrument: bool,
) -> (Vec<CellResult>, fss_telemetry::TelemetrySnapshot) {
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for mi in 0..cfg.m_values.len() {
        for ti in 0..cfg.t_values.len() {
            cells.push((mi, ti));
        }
    }
    let results: Vec<(CellResult, fss_telemetry::TelemetrySnapshot)> = cells
        .par_iter()
        .flat_map(|&(mi, ti)| {
            let mean_arrivals = cfg.m_values[mi];
            let rounds = cfg.t_values[ti];
            let params = WorkloadParams {
                m: cfg.m,
                mean_arrivals,
                rounds,
            };
            // One instance set per cell, shared across policies so the
            // comparison is paired (same workloads), as in the paper.
            let instances: Vec<Instance> = (0..cfg.trials)
                .map(|k| {
                    let mut rng = SmallRng::seed_from_u64(cfg.trial_seed(mean_arrivals, rounds, k));
                    poisson_workload(&mut rng, &params)
                })
                .collect();
            cfg.policies
                .par_iter()
                .map(|&policy| {
                    let mut tele = if instrument {
                        fss_engine::EngineTelemetry::enabled()
                    } else {
                        fss_engine::EngineTelemetry::disabled()
                    };
                    let mut avg_sum = 0.0;
                    let mut max_sum = 0.0;
                    let mut flows_sum = 0.0;
                    for inst in &instances {
                        let sched = policy.run_telemetry(inst, &mut tele);
                        let m = fss_core::metrics::evaluate(inst, &sched);
                        avg_sum += m.mean_response;
                        max_sum += m.max_response as f64;
                        flows_sum += m.n as f64;
                    }
                    let t = cfg.trials as f64;
                    let cell = CellResult {
                        policy,
                        mean_arrivals,
                        rounds,
                        trials: cfg.trials,
                        avg_response: avg_sum / t,
                        max_response: max_sum / t,
                        mean_flows: flows_sum / t,
                    };
                    (cell, tele.snapshot())
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let mut merged = fss_telemetry::TelemetrySnapshot::new();
    let mut out = Vec::with_capacity(results.len());
    for (cell, snap) in results {
        merged.merge(&snap);
        out.push(cell);
    }
    (out, merged)
}

/// Which LP reference bounds to compute (each is expensive on its own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LpBoundParts {
    /// LP (1)–(4): fractional average-response bound (Figure 6).
    pub avg: bool,
    /// Binary-searched LP (19)–(21): minimum feasible ρ (Figure 7).
    pub max: bool,
}

impl LpBoundParts {
    /// Both bounds.
    pub const ALL: LpBoundParts = LpBoundParts {
        avg: true,
        max: true,
    };
    /// Average-response bound only.
    pub const AVG: LpBoundParts = LpBoundParts {
        avg: true,
        max: false,
    };
    /// Maximum-response bound only.
    pub const MAX: LpBoundParts = LpBoundParts {
        avg: false,
        max: true,
    };
}

/// Compute the LP reference bounds per `(M, T)` cell (paper §5.2: LP
/// (1)–(4) for Figure 6, binary-searched LP (19)–(21) for Figure 7).
/// Intended for scaled-down configs; cost grows quickly with `m·T`.
/// Computes both bounds; see [`lp_bounds_grid_parts`] to compute only one.
///
/// `avg_window`: when set, the ART bound uses the windowed LP with
/// per-flow response windows of that many rounds (grown automatically if
/// infeasible); `None` solves the full LP (1)–(4), which is only viable
/// for small cells.
pub fn lp_bounds_grid(cfg: &ExperimentConfig, avg_window: Option<u64>) -> Vec<LpBoundResult> {
    lp_bounds_grid_parts(cfg, avg_window, LpBoundParts::ALL)
}

/// [`lp_bounds_grid`] restricted to the requested bound(s); skipped bounds
/// are reported as 0.
pub fn lp_bounds_grid_parts(
    cfg: &ExperimentConfig,
    avg_window: Option<u64>,
    parts: LpBoundParts,
) -> Vec<LpBoundResult> {
    let mut cells: Vec<(usize, usize)> = Vec::new();
    for mi in 0..cfg.m_values.len() {
        for ti in 0..cfg.t_values.len() {
            cells.push((mi, ti));
        }
    }
    cells
        .par_iter()
        .map(|&(mi, ti)| {
            let mean_arrivals = cfg.m_values[mi];
            let rounds = cfg.t_values[ti];
            let params = WorkloadParams {
                m: cfg.m,
                mean_arrivals,
                rounds,
            };
            let mut avg_sum = 0.0;
            let mut max_sum = 0.0;
            for k in 0..cfg.trials {
                let mut rng = SmallRng::seed_from_u64(cfg.trial_seed(mean_arrivals, rounds, k));
                let inst = poisson_workload(&mut rng, &params);
                if inst.n() == 0 {
                    continue;
                }
                if parts.avg {
                    let avg_bound = match avg_window {
                        None => {
                            art_lp_lower_bound(&inst, None).expect("LP bound within pivot budget")
                        }
                        Some(w) => {
                            // Grow the window until feasible (a too-small
                            // window has no fractional schedule at all).
                            let mut w = w;
                            loop {
                                match art_lp_lower_bound_windowed(&inst, w) {
                                    Ok(v) => break v,
                                    Err(ArtLpError::WindowInfeasible) => w *= 2,
                                    Err(e) => panic!("LP bound failed: {e}"),
                                }
                            }
                        }
                    };
                    avg_sum += avg_bound / inst.n() as f64;
                }
                if parts.max {
                    // MinRTime is the tightest cheap upper bound on the
                    // optimal rho; it seeds the binary search far below the
                    // greedy default (the paper likewise seeds with its
                    // best heuristic, §5.2.2).
                    let hint = fss_core::metrics::evaluate(&inst, &PolicyKind::MinRTime.run(&inst))
                        .max_response;
                    let rho =
                        min_feasible_rho(&inst, Some(hint.max(1))).expect("binary search succeeds");
                    max_sum += rho as f64;
                }
            }
            let t = cfg.trials as f64;
            LpBoundResult {
                mean_arrivals,
                rounds,
                trials: cfg.trials,
                avg_response_bound: avg_sum / t,
                max_response_bound: max_sum / t,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            m: 5,
            m_values: vec![2.0, 4.0],
            t_values: vec![4, 6],
            trials: 2,
            seed: 7,
            policies: vec![PolicyKind::MaxCard, PolicyKind::MinRTime],
        }
    }

    #[test]
    fn grid_covers_every_combination() {
        let cfg = tiny_cfg();
        let results = run_grid(&cfg);
        assert_eq!(results.len(), 2 * 2 * 2);
        for r in &results {
            assert!(r.avg_response >= 1.0, "responses are at least 1");
            assert!(r.max_response >= r.avg_response);
        }
    }

    #[test]
    fn results_are_deterministic() {
        let cfg = tiny_cfg();
        let mut a = run_grid(&cfg);
        let mut b = run_grid(&cfg);
        let key = |r: &CellResult| (r.policy.name(), r.mean_arrivals.to_bits(), r.rounds);
        a.sort_by_key(key);
        b.sort_by_key(key);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.avg_response, y.avg_response);
            assert_eq!(x.max_response, y.max_response);
        }
    }

    #[test]
    fn lp_bounds_below_heuristics() {
        // The LP bounds must lower-bound every policy's results on the
        // same workloads (paired seeds).
        let cfg = ExperimentConfig {
            m: 4,
            m_values: vec![2.0],
            t_values: vec![5],
            trials: 2,
            seed: 13,
            policies: PolicyKind::PAPER_TRIO.to_vec(),
        };
        let bounds = lp_bounds_grid(&cfg, None);
        assert_eq!(bounds.len(), 1);
        let results = run_grid(&cfg);
        for r in &results {
            assert!(
                bounds[0].avg_response_bound <= r.avg_response + 1e-9,
                "{}: LP avg bound {} above heuristic {}",
                r.policy.name(),
                bounds[0].avg_response_bound,
                r.avg_response
            );
            assert!(
                bounds[0].max_response_bound <= r.max_response + 1e-9,
                "{}: LP max bound above heuristic",
                r.policy.name()
            );
        }
    }

    #[test]
    fn engine_routing_matches_legacy_loop() {
        // `PolicyKind::run` routes through fss-engine; every kind must
        // reproduce the legacy loop's schedule exactly.
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..4 {
            let params = WorkloadParams {
                m: 6,
                mean_arrivals: 8.0,
                rounds: 10,
            };
            let inst = poisson_workload(&mut rng, &params);
            for kind in [
                PolicyKind::MaxCard,
                PolicyKind::MinRTime,
                PolicyKind::MaxWeight,
                PolicyKind::FifoGreedy,
            ] {
                assert_eq!(kind.run(&inst), kind.run_legacy(&inst), "{}", kind.name());
            }
        }
    }

    #[test]
    fn paper_config_shape() {
        let cfg = ExperimentConfig::paper_full();
        assert_eq!(cfg.m, 150);
        assert_eq!(cfg.m_values.len(), 5);
        assert_eq!(cfg.t_values.len(), 10);
        assert_eq!(cfg.trials, 10);
    }

    #[test]
    fn scaled_config_scales_rates() {
        let cfg = ExperimentConfig::scaled(15, vec![10], 3);
        assert_eq!(cfg.m, 15);
        assert_eq!(cfg.m_values[0], 5.0); // 50 * 15/150
        assert_eq!(cfg.m_values[4], 60.0); // 600 * 15/150
    }
}
