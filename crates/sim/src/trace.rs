//! Execution traces: per-round records of what a policy scheduled.
//!
//! A [`Trace`] captures, round by round, the set of flows dispatched and
//! the queue length left behind — enough to replay and re-validate a run,
//! feed external plotting, or diff two policies on the same workload.
//! Serialized as JSON lines (one [`TraceRound`] per line) so long traces
//! stream without loading whole files.

use fss_core::prelude::*;
use fss_online::{OnlinePolicy, QueueState, WaitingFlow};
use serde::{Deserialize, Serialize};

/// One round of execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRound {
    /// Round index.
    pub round: u64,
    /// Flow ids dispatched this round.
    pub dispatched: Vec<u32>,
    /// Flows still waiting after dispatch.
    pub queue_after: u32,
}

/// A complete run: the per-round records plus the resulting schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Policy name that produced the trace.
    pub policy: String,
    /// Per-round records (rounds with an empty queue are omitted).
    pub rounds: Vec<TraceRound>,
}

impl Trace {
    /// Reconstruct the flow-level schedule encoded by the trace. Traces
    /// sit behind user-facing file-loading paths, so malformed input — a
    /// flow out of range, dispatched twice, or never dispatched — is
    /// reported as a [`TraceError`] rather than a panic.
    pub fn to_schedule(&self, n: usize) -> Result<Schedule, TraceError> {
        let mut rounds = vec![u64::MAX; n];
        for r in &self.rounds {
            for &f in &r.dispatched {
                if f as usize >= n {
                    return Err(TraceError::FlowOutOfRange { flow: f, n });
                }
                if rounds[f as usize] != u64::MAX {
                    return Err(TraceError::DuplicateDispatch {
                        flow: f,
                        first: rounds[f as usize],
                        second: r.round,
                    });
                }
                rounds[f as usize] = r.round;
            }
        }
        if let Some(flow) = rounds.iter().position(|&t| t == u64::MAX) {
            return Err(TraceError::MissingFlow { flow: flow as u32 });
        }
        Ok(Schedule::from_rounds(rounds))
    }

    /// Encode as JSON lines (header line with the policy, then one line
    /// per round).
    pub fn to_jsonl(&self) -> String {
        let mut out = format!("{{\"policy\":{:?}}}\n", self.policy);
        for r in &self.rounds {
            out.push_str(&serde_json::to_string(r).expect("serializable"));
            out.push('\n');
        }
        out
    }

    /// Decode from the JSON-lines form.
    pub fn from_jsonl(text: &str) -> Result<Trace, serde_json::Error> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        #[derive(Deserialize)]
        struct Header {
            policy: String,
        }
        let header: Header = serde_json::from_str(lines.next().unwrap_or("{}"))?;
        let mut rounds = Vec::new();
        for line in lines {
            rounds.push(serde_json::from_str(line)?);
        }
        Ok(Trace {
            policy: header.policy,
            rounds,
        })
    }
}

/// Run `policy` over `inst` exactly like [`fss_online::run_policy`], but
/// record a [`Trace`] alongside the schedule.
pub fn run_policy_traced<P: OnlinePolicy>(inst: &Instance, policy: &mut P) -> (Schedule, Trace) {
    assert!(
        inst.switch.is_unit_capacity(),
        "traced runner requires unit capacities"
    );
    assert!(inst.is_unit_demand(), "traced runner requires unit demands");
    let n = inst.n();
    let mut rounds = vec![0u64; n];
    let mut trace = Trace {
        policy: policy.name().to_string(),
        rounds: Vec::new(),
    };
    if n == 0 {
        return (Schedule::from_rounds(rounds), trace);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (inst.flows[i].release, i));
    let mut next = 0usize;
    let mut waiting: Vec<WaitingFlow> = Vec::new();
    let mut t = inst.flows[order[0]].release;
    let mut remaining = n;

    while remaining > 0 {
        while next < n && inst.flows[order[next]].release <= t {
            let i = order[next];
            let f = &inst.flows[i];
            waiting.push(WaitingFlow {
                id: FlowId(i as u32),
                src: f.src,
                dst: f.dst,
                release: f.release,
            });
            next += 1;
        }
        if waiting.is_empty() {
            t = inst.flows[order[next]].release;
            continue;
        }
        let state = QueueState {
            round: t,
            waiting: &waiting,
            m_in: inst.switch.num_inputs(),
            m_out: inst.switch.num_outputs(),
        };
        let mut selection = policy.choose(&state);
        selection.sort_unstable();
        selection.dedup();
        let mut dispatched = Vec::with_capacity(selection.len());
        for &k in &selection {
            let w = &waiting[k];
            rounds[w.id.idx()] = t;
            dispatched.push(w.id.0);
        }
        remaining -= selection.len();
        for &k in selection.iter().rev() {
            waiting.swap_remove(k);
        }
        trace.rounds.push(TraceRound {
            round: t,
            dispatched,
            queue_after: waiting.len() as u32,
        });
        t += 1;
    }
    (Schedule::from_rounds(rounds), trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fss_core::gen::{random_instance, GenParams};
    use fss_online::{MaxCard, MinRTime};
    use rand::{rngs::SmallRng, SeedableRng};

    fn inst() -> Instance {
        let mut rng = SmallRng::seed_from_u64(12);
        random_instance(&mut rng, &GenParams::unit(4, 20, 5))
    }

    #[test]
    fn trace_matches_untraced_run() {
        let inst = inst();
        let (sched, trace) = run_policy_traced(&inst, &mut MaxCard::default());
        let plain = fss_online::run_policy(&inst, &mut MaxCard::default());
        assert_eq!(sched, plain, "tracing must not change decisions");
        assert_eq!(trace.policy, "MaxCard");
        assert_eq!(trace.to_schedule(inst.n()).unwrap(), sched);
    }

    #[test]
    fn jsonl_round_trip() {
        let inst = inst();
        let (_, trace) = run_policy_traced(&inst, &mut MinRTime::default());
        let text = trace.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn queue_after_decreases_to_zero() {
        let inst = inst();
        let (_, trace) = run_policy_traced(&inst, &mut MaxCard::default());
        assert_eq!(trace.rounds.last().unwrap().queue_after, 0);
    }

    #[test]
    fn replayed_schedule_is_feasible() {
        let inst = inst();
        let (sched, trace) = run_policy_traced(&inst, &mut MaxCard::default());
        let replayed = trace.to_schedule(inst.n()).unwrap();
        validate::check(&inst, &replayed, &inst.switch).unwrap();
        assert_eq!(replayed, sched);
    }

    #[test]
    fn duplicate_dispatch_detected() {
        let trace = Trace {
            policy: "bogus".into(),
            rounds: vec![
                TraceRound {
                    round: 0,
                    dispatched: vec![0],
                    queue_after: 0,
                },
                TraceRound {
                    round: 1,
                    dispatched: vec![0],
                    queue_after: 0,
                },
            ],
        };
        assert_eq!(
            trace.to_schedule(1),
            Err(TraceError::DuplicateDispatch {
                flow: 0,
                first: 0,
                second: 1
            })
        );
    }

    #[test]
    fn out_of_range_and_missing_flows_detected() {
        let trace = Trace {
            policy: "bogus".into(),
            rounds: vec![TraceRound {
                round: 0,
                dispatched: vec![5],
                queue_after: 0,
            }],
        };
        assert_eq!(
            trace.to_schedule(2),
            Err(TraceError::FlowOutOfRange { flow: 5, n: 2 })
        );
        let trace = Trace {
            policy: "bogus".into(),
            rounds: vec![TraceRound {
                round: 0,
                dispatched: vec![0],
                queue_after: 0,
            }],
        };
        assert_eq!(
            trace.to_schedule(2),
            Err(TraceError::MissingFlow { flow: 1 })
        );
    }
}
