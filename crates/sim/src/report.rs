//! CSV and ASCII rendering of experiment results, plus the persisted
//! `BENCH_*.json` artifact schema the benchmark orchestrator emits.

use std::fmt::Write as _;

use fss_telemetry::TelemetrySnapshot;
use serde::{Content, DeError, Deserialize, Serialize};

use crate::experiment::{CellResult, LpBoundResult};

/// Version stamp written into every `BENCH_*.json` artifact. Bump when
/// the shape of [`BenchReport`] / [`BenchCell`] changes incompatibly.
///
/// v2 added the `fingerprint` field to [`BenchCell`] (the stable cell
/// identity the distributed runner checkpoints and resumes on). v3
/// added the optional `telemetry` field (per-cell stage timings and
/// decision-latency quantiles); v2 artifacts — no `telemetry` key —
/// still read ([`BENCH_SCHEMA_READ_MIN`]).
pub const BENCH_SCHEMA_VERSION: u32 = 3;

/// Oldest schema version this build still reads. v2 cells deserialize
/// with `telemetry: None`; writers always stamp
/// [`BENCH_SCHEMA_VERSION`].
pub const BENCH_SCHEMA_READ_MIN: u32 = 2;

/// Stable fingerprint of a cell: a 64-bit FNV-1a hash (hex) over the
/// cell id and its ordered grid parameters.
///
/// Because every cell's RNG seeds are derived from its id/parameter
/// values (not from run order), the fingerprint pins down the exact
/// workload: two processes that compute the same fingerprint will
/// execute the same cell and produce the same metrics. The distributed
/// runner uses fingerprints as assignment and checkpoint keys, so
/// scale-dependent knobs (ports, horizon, trials) must appear in the id
/// or the params — cells from different tiers must never collide.
pub fn cell_fingerprint(cell_id: &str, params: &[(String, String)]) -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h = (*h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    let mut h = FNV_OFFSET;
    eat(&mut h, cell_id.as_bytes());
    eat(&mut h, &[0xff]);
    for (k, v) in params {
        eat(&mut h, k.as_bytes());
        eat(&mut h, &[0x00]);
        eat(&mut h, v.as_bytes());
        eat(&mut h, &[0x01]);
    }
    format!("{h:016x}")
}

/// One executed benchmark cell: a single point of an experiment grid.
///
/// Cells are self-describing — `params` carries the grid coordinates as
/// ordered key/value strings and `metrics` the measured objective values
/// as ordered name/value pairs — so the schema covers every experiment
/// (figures, tables, sweeps) without per-experiment structs.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchCell {
    /// Unique id within the run, e.g. `fig6/MaxCard/M50/T10`.
    pub cell_id: String,
    /// Stable identity hash of `(cell_id, params)` — see
    /// [`cell_fingerprint`]. Checkpoint/resume and shard assignment key
    /// on this, so validation requires it to match the recomputation.
    pub fingerprint: String,
    /// Grid coordinates, e.g. `[("policy","MaxCard"),("M","50")]`.
    pub params: Vec<(String, String)>,
    /// Measured objective values, e.g. `[("avg_response", 3.2)]`.
    pub metrics: Vec<(String, f64)>,
    /// Wall-clock seconds spent executing the cell.
    pub wall_s: f64,
    /// Work units (flows, instances, LP solves) processed by the cell;
    /// `0` when throughput is not meaningful for the experiment.
    pub flows: u64,
    /// Execution substrate, e.g. `engine`, `legacy-loop`, `lp`, `exact`.
    pub engine_mode: String,
    /// Per-cell telemetry snapshot (stage timings, decision-latency
    /// quantiles) captured when the run was instrumented. `None` for
    /// uninstrumented runs and for v2 artifacts (schema v3 addition).
    /// Timing data: excluded from [`cells_eq_modulo_timing`].
    pub telemetry: Option<TelemetrySnapshot>,
}

// Hand-written (not derived) so a v2 artifact — no `telemetry` key —
// still deserializes (`telemetry: None`), and so uninstrumented cells
// serialize without a noise `"telemetry": null` entry. The vendored
// serde shim's `field()` helper errors on missing keys, which is what
// derive would generate.
impl Serialize for BenchCell {
    fn to_content(&self) -> Content {
        let mut m: Vec<(String, Content)> = vec![
            ("cell_id".into(), self.cell_id.to_content()),
            ("fingerprint".into(), self.fingerprint.to_content()),
            ("params".into(), self.params.to_content()),
            ("metrics".into(), self.metrics.to_content()),
            ("wall_s".into(), self.wall_s.to_content()),
            ("flows".into(), self.flows.to_content()),
            ("engine_mode".into(), self.engine_mode.to_content()),
        ];
        if let Some(t) = &self.telemetry {
            m.push(("telemetry".into(), t.to_content()));
        }
        Content::Map(m)
    }
}

impl Deserialize for BenchCell {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let m = match content {
            Content::Map(m) => m,
            _ => return Err(DeError::expected("map", "BenchCell")),
        };
        let telemetry = match m.iter().find(|(k, _)| k == "telemetry") {
            Some((_, v)) => Option::<TelemetrySnapshot>::from_content(v)?,
            None => None, // v2 artifact: tolerant read
        };
        Ok(BenchCell {
            cell_id: serde::field(m, "cell_id")?,
            fingerprint: serde::field(m, "fingerprint")?,
            params: serde::field(m, "params")?,
            metrics: serde::field(m, "metrics")?,
            wall_s: serde::field(m, "wall_s")?,
            flows: serde::field(m, "flows")?,
            engine_mode: serde::field(m, "engine_mode")?,
            telemetry,
        })
    }
}

impl BenchCell {
    /// Build a cell, stamping the fingerprint from `(cell_id, params)`.
    pub fn new(
        cell_id: impl Into<String>,
        params: Vec<(String, String)>,
        metrics: Vec<(String, f64)>,
        wall_s: f64,
        flows: u64,
        engine_mode: impl Into<String>,
    ) -> BenchCell {
        let cell_id = cell_id.into();
        let fingerprint = cell_fingerprint(&cell_id, &params);
        BenchCell {
            cell_id,
            fingerprint,
            params,
            metrics,
            wall_s,
            flows,
            engine_mode: engine_mode.into(),
            telemetry: None,
        }
    }

    /// Attach (or clear) a telemetry snapshot; builder-style.
    pub fn with_telemetry(mut self, telemetry: Option<TelemetrySnapshot>) -> BenchCell {
        self.telemetry = telemetry;
        self
    }

    /// Throughput in work units per second (`0.0` when `flows == 0`).
    /// The denominator clamps to the 1 ms timer resolution so a cell
    /// finishing under it reports a bounded rate, not a ~1e9x garbage
    /// one.
    pub fn flows_per_s(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.flows as f64 / self.wall_s.max(1e-3)
        }
    }

    /// Look up a metric by name.
    pub fn metric(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// Look up a grid parameter by key.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Aggregated result of one experiment run: the persisted form of
/// `BENCH_<experiment>.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`BENCH_SCHEMA_VERSION`] for artifacts written by this
    /// build; readers reject other versions.
    pub schema_version: u32,
    /// Registry id of the experiment, e.g. `fig6`.
    pub experiment: String,
    /// One-line human description of what the experiment measures.
    pub description: String,
    /// Whether the run used smoke-test (CI-sized) grids.
    pub smoke: bool,
    /// Worker threads the orchestrator ran cells on.
    pub jobs: u64,
    /// Wall-clock seconds for the whole experiment (its cells may share
    /// the executor with other experiments, so this is end-to-end time,
    /// not the sum of `wall_s`).
    pub total_wall_s: f64,
    /// Every executed cell, in registry (declaration) order.
    pub cells: Vec<BenchCell>,
}

impl BenchReport {
    /// Total work units across all cells.
    pub fn total_flows(&self) -> u64 {
        self.cells.iter().map(|c| c.flows).sum()
    }

    /// The canonical artifact file name, `BENCH_<experiment>.json`.
    pub fn artifact_name(&self) -> String {
        bench_artifact_name(&self.experiment)
    }
}

/// The canonical artifact file name for an experiment id.
pub fn bench_artifact_name(experiment: &str) -> String {
    format!("BENCH_{experiment}.json")
}

/// Serialize a report to pretty JSON (the on-disk artifact form).
pub fn bench_report_to_json(report: &BenchReport) -> String {
    serde_json::to_string_pretty(report).expect("bench reports contain only finite numbers")
}

/// Serialize one cell to a single compact JSON line (the JSONL stream
/// form; callers append the newline).
pub fn bench_cell_to_jsonl(cell: &BenchCell) -> String {
    serde_json::to_string(cell).expect("bench cells contain only finite numbers")
}

/// Parse and schema-validate a `BENCH_*.json` artifact.
pub fn bench_report_from_json(text: &str) -> Result<BenchReport, String> {
    let report: BenchReport = serde_json::from_str(text).map_err(|e| e.to_string())?;
    validate_bench_report(&report)?;
    Ok(report)
}

/// Structural checks beyond what deserialization enforces: version match,
/// at least one cell, unique non-empty cell ids, finite metric values and
/// timings.
pub fn validate_bench_report(report: &BenchReport) -> Result<(), String> {
    if report.schema_version < BENCH_SCHEMA_READ_MIN || report.schema_version > BENCH_SCHEMA_VERSION
    {
        return Err(format!(
            "schema version {} (this build reads {}..={})",
            report.schema_version, BENCH_SCHEMA_READ_MIN, BENCH_SCHEMA_VERSION
        ));
    }
    if report.experiment.is_empty() {
        return Err("empty experiment id".into());
    }
    if report.cells.is_empty() {
        return Err(format!("experiment {}: no cells", report.experiment));
    }
    if !report.total_wall_s.is_finite() || report.total_wall_s < 0.0 {
        return Err(format!(
            "experiment {}: bad total_wall_s",
            report.experiment
        ));
    }
    let mut seen: Vec<&str> = Vec::with_capacity(report.cells.len());
    for cell in &report.cells {
        if cell.cell_id.is_empty() {
            return Err(format!("experiment {}: empty cell id", report.experiment));
        }
        if seen.contains(&cell.cell_id.as_str()) {
            return Err(format!("duplicate cell id {}", cell.cell_id));
        }
        seen.push(&cell.cell_id);
        let expected = cell_fingerprint(&cell.cell_id, &cell.params);
        if cell.fingerprint != expected {
            return Err(format!(
                "cell {}: fingerprint {} does not match recomputed {expected}",
                cell.cell_id, cell.fingerprint
            ));
        }
        if !cell.wall_s.is_finite() || cell.wall_s < 0.0 {
            return Err(format!("cell {}: bad wall_s", cell.cell_id));
        }
        for (name, value) in &cell.metrics {
            if name.is_empty() {
                return Err(format!("cell {}: empty metric name", cell.cell_id));
            }
            if !value.is_finite() {
                return Err(format!("cell {}: metric {name} not finite", cell.cell_id));
            }
        }
    }
    Ok(())
}

/// Timing-insensitive cell equality: everything except `wall_s` and
/// `telemetry` (both machine- and run-dependent) must match. The
/// distributed runner's differential tests compare merged multi-worker
/// artifacts against a single-process run with this, and the
/// instrumented-vs-disabled differential test relies on telemetry being
/// excluded here.
pub fn cells_eq_modulo_timing(a: &BenchCell, b: &BenchCell) -> bool {
    a.cell_id == b.cell_id
        && a.fingerprint == b.fingerprint
        && a.params == b.params
        && a.metrics == b.metrics
        && a.flows == b.flows
        && a.engine_mode == b.engine_mode
}

/// Timing-insensitive report equality: cell-for-cell
/// [`cells_eq_modulo_timing`] in the same order, ignoring `jobs` and
/// `total_wall_s` (worker topology and wall clock differ by design
/// between a sharded and a single-process run).
pub fn reports_eq_modulo_timing(a: &BenchReport, b: &BenchReport) -> bool {
    a.schema_version == b.schema_version
        && a.experiment == b.experiment
        && a.description == b.description
        && a.smoke == b.smoke
        && a.cells.len() == b.cells.len()
        && a.cells
            .iter()
            .zip(&b.cells)
            .all(|(x, y)| cells_eq_modulo_timing(x, y))
}

/// Result of replaying a `BENCH_cells.jsonl` checkpoint stream.
#[derive(Debug, Clone)]
pub struct CellsReplay {
    /// Every cell recovered from a fully-written line, in file order.
    pub cells: Vec<BenchCell>,
    /// Warning describing a skipped final line that did not parse — the
    /// signature of a crash mid-write. `None` when every line parsed.
    pub truncated_tail: Option<String>,
}

/// Parse a `BENCH_cells.jsonl` stream, tolerating a truncated final
/// line.
///
/// A crash while the orchestrator or coordinator appends to the stream
/// can leave a partially-written last line; resumable runs must treat
/// that as "this cell was not checkpointed", not as a corrupt file. So:
/// an unparseable **final** line is skipped and reported in
/// [`CellsReplay::truncated_tail`]; an unparseable line anywhere else —
/// which appends can not produce — is a hard error, as is any cell
/// whose fingerprint fails validation (a truncated write can not forge
/// a valid JSON cell, so a mismatch means real corruption).
pub fn parse_cells_jsonl(text: &str) -> Result<CellsReplay, String> {
    let lines: Vec<&str> = text.lines().collect();
    let last_nonempty = lines.iter().rposition(|l| !l.trim().is_empty());
    let mut cells = Vec::new();
    let mut truncated_tail = None;
    for (i, line) in lines.iter().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match serde_json::from_str::<BenchCell>(line) {
            Ok(cell) => {
                let expected = cell_fingerprint(&cell.cell_id, &cell.params);
                if cell.fingerprint != expected {
                    return Err(format!(
                        "line {}: cell {} carries fingerprint {} but recomputes to {expected}",
                        i + 1,
                        cell.cell_id,
                        cell.fingerprint
                    ));
                }
                cells.push(cell);
            }
            Err(e) if Some(i) == last_nonempty => {
                truncated_tail = Some(format!(
                    "final line {} does not parse ({e}); treating it as a truncated \
                     crash tail and skipping it",
                    i + 1
                ));
            }
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(CellsReplay {
        cells,
        truncated_tail,
    })
}

/// Read and [`parse_cells_jsonl`] an on-disk checkpoint stream.
pub fn read_cells_jsonl(path: &std::path::Path) -> Result<CellsReplay, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    parse_cells_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Render a report as an aligned ASCII table (one row per cell), for the
/// thin CLI wrappers that used to hand-format their own output.
pub fn bench_table(report: &BenchReport) -> String {
    let mut out = format!(
        "{} — {} ({} cells, {:.2}s total)\n",
        report.experiment,
        report.description,
        report.cells.len(),
        report.total_wall_s
    );
    for cell in &report.cells {
        let _ = write!(out, "{:<40}", cell.cell_id);
        for (name, value) in &cell.metrics {
            let _ = write!(out, "  {name}={value:.4}");
        }
        if cell.flows > 0 {
            let _ = write!(out, "  ({:.0} flows/s)", cell.flows_per_s());
        }
        out.push('\n');
    }
    out
}

/// CSV for the heuristic grid: one row per `(policy, M, T)`.
pub fn cells_to_csv(cells: &[CellResult]) -> String {
    let mut out = String::from("policy,M,T,trials,mean_flows,avg_response,max_response\n");
    for c in cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.2},{:.4},{:.4}",
            c.policy.name(),
            c.mean_arrivals,
            c.rounds,
            c.trials,
            c.mean_flows,
            c.avg_response,
            c.max_response
        );
    }
    out
}

/// CSV for the LP bound grid.
pub fn bounds_to_csv(bounds: &[LpBoundResult]) -> String {
    let mut out = String::from("M,T,trials,avg_response_bound,max_response_bound\n");
    for b in bounds {
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.4}",
            b.mean_arrivals, b.rounds, b.trials, b.avg_response_bound, b.max_response_bound
        );
    }
    out
}

/// Render one figure-style series table: rows = T values, columns =
/// policies (plus the LP bound when provided), values chosen by `metric`
/// (`avg` or `max`). One table per `M` value, like the panels of
/// Figures 6 and 7.
pub fn figure_table(
    cells: &[CellResult],
    bounds: &[LpBoundResult],
    mean_arrivals: f64,
    use_max: bool,
) -> String {
    let mut policies: Vec<&'static str> = Vec::new();
    for c in cells {
        if c.mean_arrivals == mean_arrivals && !policies.contains(&c.policy.name()) {
            policies.push(c.policy.name());
        }
    }
    let mut t_values: Vec<u64> = cells
        .iter()
        .filter(|c| c.mean_arrivals == mean_arrivals)
        .map(|c| c.rounds)
        .collect();
    t_values.sort_unstable();
    t_values.dedup();

    let metric_name = if use_max {
        "max response"
    } else {
        "avg response"
    };
    let mut out = format!("M = {mean_arrivals} ({metric_name})\n");
    let _ = write!(out, "{:>6}", "T");
    for p in &policies {
        let _ = write!(out, "{p:>12}");
    }
    if !bounds.is_empty() {
        let _ = write!(out, "{:>12}", "LP bound");
    }
    out.push('\n');
    for &t in &t_values {
        let _ = write!(out, "{t:>6}");
        for p in &policies {
            let v = cells
                .iter()
                .find(|c| {
                    c.mean_arrivals == mean_arrivals && c.rounds == t && c.policy.name() == *p
                })
                .map(|c| {
                    if use_max {
                        c.max_response
                    } else {
                        c.avg_response
                    }
                });
            match v {
                Some(v) => {
                    let _ = write!(out, "{v:>12.3}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        if !bounds.is_empty() {
            let v = bounds
                .iter()
                .find(|b| b.mean_arrivals == mean_arrivals && b.rounds == t)
                .map(|b| {
                    if use_max {
                        b.max_response_bound
                    } else {
                        b.avg_response_bound
                    }
                });
            match v {
                Some(v) => {
                    let _ = write!(out, "{v:>12.3}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PolicyKind;

    fn cell(policy: PolicyKind, m: f64, t: u64, avg: f64, max: f64) -> CellResult {
        CellResult {
            policy,
            mean_arrivals: m,
            rounds: t,
            trials: 2,
            avg_response: avg,
            max_response: max,
            mean_flows: 10.0,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cells = vec![cell(PolicyKind::MaxCard, 50.0, 10, 1.5, 3.0)];
        let csv = cells_to_csv(&cells);
        assert!(csv.starts_with("policy,M,T"));
        assert!(csv.contains("MaxCard,50,10,2,10.00,1.5000,3.0000"));
    }

    #[test]
    fn bounds_csv() {
        let b = vec![LpBoundResult {
            mean_arrivals: 50.0,
            rounds: 10,
            trials: 2,
            avg_response_bound: 1.25,
            max_response_bound: 2.0,
        }];
        let csv = bounds_to_csv(&b);
        assert!(csv.contains("50,10,2,1.2500,2.0000"));
    }

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "fig6".into(),
            description: "average response vs LP bound".into(),
            smoke: true,
            jobs: 4,
            total_wall_s: 0.25,
            cells: vec![
                BenchCell::new(
                    "fig6/MaxCard/M50/T10",
                    vec![
                        ("policy".into(), "MaxCard".into()),
                        ("M".into(), "50".into()),
                        ("T".into(), "10".into()),
                    ],
                    vec![("avg_response".into(), 3.25), ("max_response".into(), 9.0)],
                    0.125,
                    500,
                    "engine",
                ),
                BenchCell::new(
                    "fig6/lp/M50/T10",
                    vec![("M".into(), "50".into()), ("T".into(), "10".into())],
                    vec![("avg_response_bound".into(), 2.5)],
                    0.0625,
                    0,
                    "lp",
                ),
            ],
        }
    }

    #[test]
    fn bench_report_round_trips_through_json() {
        let report = sample_report();
        let json = bench_report_to_json(&report);
        let parsed = bench_report_from_json(&json).expect("valid artifact");
        assert_eq!(parsed, report);
    }

    #[test]
    fn bench_cell_jsonl_round_trips() {
        let cell = sample_report().cells.remove(0);
        let line = bench_cell_to_jsonl(&cell);
        assert!(!line.contains('\n'), "JSONL lines must be single-line");
        let parsed: BenchCell = serde_json::from_str(&line).expect("valid line");
        assert_eq!(parsed, cell);
    }

    #[test]
    fn bench_cell_accessors() {
        let report = sample_report();
        let cell = &report.cells[0];
        assert_eq!(cell.param("policy"), Some("MaxCard"));
        assert_eq!(cell.metric("avg_response"), Some(3.25));
        assert_eq!(cell.metric("missing"), None);
        assert!((cell.flows_per_s() - 4000.0).abs() < 1e-6);
        assert_eq!(report.cells[1].flows_per_s(), 0.0);
        assert_eq!(report.total_flows(), 500);
        assert_eq!(report.artifact_name(), "BENCH_fig6.json");
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        let mut r = sample_report();
        r.schema_version += 1;
        assert!(validate_bench_report(&r).is_err(), "wrong version");

        let mut r = sample_report();
        r.cells.clear();
        assert!(validate_bench_report(&r).is_err(), "no cells");

        let mut r = sample_report();
        r.cells[1].cell_id = r.cells[0].cell_id.clone();
        assert!(validate_bench_report(&r).is_err(), "duplicate cell id");

        let mut r = sample_report();
        r.cells[0].metrics[0].1 = f64::NAN;
        assert!(validate_bench_report(&r).is_err(), "non-finite metric");

        let mut r = sample_report();
        r.cells[0].fingerprint = "0000000000000000".into();
        let err = validate_bench_report(&r).expect_err("forged fingerprint");
        assert!(err.contains("fingerprint"), "{err}");
    }

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut histo = fss_telemetry::LatencyHisto::new();
        for v in [3u64, 17, 170, 9000] {
            histo.record(v);
        }
        let mut snap = TelemetrySnapshot::new();
        snap.add_counter("rounds", 42);
        snap.add_counter("flows_dispatched", 500);
        snap.max_gauge("peak_queue_depth", 31);
        snap.add_stage_ns("ingest", 1_000);
        snap.add_stage_ns("match_repair", 9_000);
        snap.merge_histo("decision_latency_ns", &histo.snapshot());
        snap
    }

    #[test]
    fn v2_artifact_without_telemetry_field_still_reads() {
        // A v2 artifact predates the `telemetry` field entirely: both
        // the version stamp and the missing key must be tolerated.
        let mut report = sample_report();
        report.schema_version = 2;
        let json = bench_report_to_json(&report);
        assert!(
            !json.contains("telemetry"),
            "uninstrumented cells must not emit a telemetry key"
        );
        let parsed = bench_report_from_json(&json).expect("v2 artifact reads");
        assert_eq!(parsed.schema_version, 2);
        assert!(parsed.cells.iter().all(|c| c.telemetry.is_none()));
    }

    #[test]
    fn telemetry_snapshot_round_trips_through_cell_json() {
        let cell = sample_report()
            .cells
            .remove(0)
            .with_telemetry(Some(sample_snapshot()));
        let line = bench_cell_to_jsonl(&cell);
        assert!(line.contains("telemetry"));
        let parsed: BenchCell = serde_json::from_str(&line).expect("valid line");
        assert_eq!(parsed, cell);
        let snap = parsed.telemetry.expect("snapshot survived");
        assert_eq!(snap.counter("rounds"), Some(42));
        assert_eq!(snap.stage_ns("match_repair"), Some(9_000));
        assert_eq!(snap.slowest_stage().unwrap().stage, "match_repair");
        let histo = snap.histo("decision_latency_ns").expect("histo survived");
        assert_eq!(histo.count, 4);
    }

    #[test]
    fn eq_modulo_timing_ignores_telemetry() {
        let a = sample_report().cells.remove(0);
        let b = a.clone().with_telemetry(Some(sample_snapshot()));
        assert_ne!(a, b, "telemetry participates in strict equality");
        assert!(
            cells_eq_modulo_timing(&a, &b),
            "telemetry is timing data and must not affect modulo-timing equality"
        );
    }

    #[test]
    fn validation_spans_the_read_compat_window() {
        let mut r = sample_report();
        r.schema_version = BENCH_SCHEMA_READ_MIN;
        assert!(validate_bench_report(&r).is_ok(), "oldest readable version");
        r.schema_version = BENCH_SCHEMA_READ_MIN - 1;
        assert!(validate_bench_report(&r).is_err(), "below the window");
    }

    #[test]
    fn fingerprints_are_stable_and_param_sensitive() {
        let params = vec![("M".to_string(), "50".to_string())];
        let a = cell_fingerprint("fig6/MaxCard/M50/T10", &params);
        let b = cell_fingerprint("fig6/MaxCard/M50/T10", &params);
        assert_eq!(a, b, "deterministic");
        assert_eq!(a.len(), 16, "16 hex chars");
        // Any change to id or params moves the fingerprint.
        assert_ne!(a, cell_fingerprint("fig6/MaxCard/M50/T12", &params));
        let other = vec![("M".to_string(), "51".to_string())];
        assert_ne!(a, cell_fingerprint("fig6/MaxCard/M50/T10", &other));
        // Key/value boundaries are separated: ("ab","c") != ("a","bc").
        let kv1 = vec![("ab".to_string(), "c".to_string())];
        let kv2 = vec![("a".to_string(), "bc".to_string())];
        assert_ne!(cell_fingerprint("x", &kv1), cell_fingerprint("x", &kv2));
    }

    #[test]
    fn eq_modulo_timing_ignores_wall_clock_and_topology() {
        let a = sample_report();
        let mut b = sample_report();
        b.jobs = 7;
        b.total_wall_s = 99.0;
        b.cells[0].wall_s = 42.0;
        assert!(reports_eq_modulo_timing(&a, &b));
        b.cells[0].metrics[0].1 += 1.0;
        assert!(!reports_eq_modulo_timing(&a, &b), "metric drift detected");
        let mut c = sample_report();
        c.cells.pop();
        assert!(!reports_eq_modulo_timing(&a, &c), "cell count detected");
    }

    #[test]
    fn jsonl_replay_recovers_full_lines_and_skips_truncated_tail() {
        let report = sample_report();
        let full: Vec<String> = report.cells.iter().map(bench_cell_to_jsonl).collect();
        // Intact stream: everything parses, no warning.
        let intact = format!("{}\n{}\n", full[0], full[1]);
        let replay = parse_cells_jsonl(&intact).expect("intact stream");
        assert_eq!(replay.cells.len(), 2);
        assert!(replay.truncated_tail.is_none());

        // Crash tail: final line cut mid-JSON is skipped with a warning.
        let half = &full[1][..full[1].len() / 2];
        let crashed = format!("{}\n{half}", full[0]);
        let replay = parse_cells_jsonl(&crashed).expect("crash tail tolerated");
        assert_eq!(replay.cells.len(), 1);
        assert_eq!(replay.cells[0].cell_id, report.cells[0].cell_id);
        let warn = replay.truncated_tail.expect("warning reported");
        assert!(warn.contains("truncated"), "{warn}");

        // A trailing newline after the truncated tail changes nothing.
        let replay = parse_cells_jsonl(&format!("{crashed}\n")).expect("tail + newline");
        assert_eq!(replay.cells.len(), 1);
        assert!(replay.truncated_tail.is_some());

        // Blank lines are ignored, including after the tail.
        let replay = parse_cells_jsonl(&format!("{crashed}\n\n  \n")).expect("blank padding");
        assert_eq!(replay.cells.len(), 1);
        assert!(replay.truncated_tail.is_some());
    }

    #[test]
    fn jsonl_replay_rejects_mid_stream_corruption_and_forged_cells() {
        let report = sample_report();
        let full: Vec<String> = report.cells.iter().map(bench_cell_to_jsonl).collect();
        // Corruption that is NOT the final line can not come from a
        // truncated append: hard error.
        let corrupt_middle = format!("{}garbage\n{}\n", &full[0][..10], full[1]);
        let err = parse_cells_jsonl(&corrupt_middle).expect_err("mid-stream corruption");
        assert!(err.contains("line 1"), "{err}");

        // A fully-written cell with a forged fingerprint is corruption
        // even on the final line.
        let mut forged = report.cells[0].clone();
        forged.fingerprint = "1111111111111111".into();
        let text = format!("{}\n{}\n", full[0], bench_cell_to_jsonl(&forged));
        let err = parse_cells_jsonl(&text).expect_err("forged fingerprint");
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn jsonl_file_reader_reports_path_on_errors() {
        let dir = std::env::temp_dir().join("fss-sim-report-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cells.jsonl");
        let cell = sample_report().cells.remove(0);
        std::fs::write(
            &path,
            format!("{}\n{{\"cell_id", bench_cell_to_jsonl(&cell)),
        )
        .unwrap();
        let replay = read_cells_jsonl(&path).expect("tolerant read");
        assert_eq!(replay.cells.len(), 1);
        assert!(replay.truncated_tail.is_some());
        let missing = dir.join("no-such-stream.jsonl");
        let err = read_cells_jsonl(&missing).expect_err("missing file");
        assert!(err.contains("no-such-stream"), "{err}");
    }

    #[test]
    fn bench_table_renders_all_cells() {
        let report = sample_report();
        let table = bench_table(&report);
        assert!(table.contains("fig6/MaxCard/M50/T10"));
        assert!(table.contains("avg_response=3.2500"));
        assert!(table.contains("flows/s"));
    }

    #[test]
    fn figure_table_lays_out_series() {
        let cells = vec![
            cell(PolicyKind::MaxCard, 50.0, 10, 1.5, 3.0),
            cell(PolicyKind::MinRTime, 50.0, 10, 1.8, 2.0),
            cell(PolicyKind::MaxCard, 50.0, 12, 1.6, 3.5),
            cell(PolicyKind::MinRTime, 50.0, 12, 1.9, 2.2),
        ];
        let bounds = vec![LpBoundResult {
            mean_arrivals: 50.0,
            rounds: 10,
            trials: 2,
            avg_response_bound: 1.0,
            max_response_bound: 2.0,
        }];
        let table = figure_table(&cells, &bounds, 50.0, false);
        assert!(table.contains("MaxCard"));
        assert!(table.contains("LP bound"));
        assert!(table.contains("1.500"));
        // T=12 has no bound: dash.
        assert!(table.lines().last().unwrap().trim_end().ends_with('-'));
    }
}
