//! CSV and ASCII rendering of experiment results.

use std::fmt::Write as _;

use crate::experiment::{CellResult, LpBoundResult};

/// CSV for the heuristic grid: one row per `(policy, M, T)`.
pub fn cells_to_csv(cells: &[CellResult]) -> String {
    let mut out = String::from("policy,M,T,trials,mean_flows,avg_response,max_response\n");
    for c in cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.2},{:.4},{:.4}",
            c.policy.name(),
            c.mean_arrivals,
            c.rounds,
            c.trials,
            c.mean_flows,
            c.avg_response,
            c.max_response
        );
    }
    out
}

/// CSV for the LP bound grid.
pub fn bounds_to_csv(bounds: &[LpBoundResult]) -> String {
    let mut out = String::from("M,T,trials,avg_response_bound,max_response_bound\n");
    for b in bounds {
        let _ = writeln!(
            out,
            "{},{},{},{:.4},{:.4}",
            b.mean_arrivals, b.rounds, b.trials, b.avg_response_bound, b.max_response_bound
        );
    }
    out
}

/// Render one figure-style series table: rows = T values, columns =
/// policies (plus the LP bound when provided), values chosen by `metric`
/// (`avg` or `max`). One table per `M` value, like the panels of
/// Figures 6 and 7.
pub fn figure_table(
    cells: &[CellResult],
    bounds: &[LpBoundResult],
    mean_arrivals: f64,
    use_max: bool,
) -> String {
    let mut policies: Vec<&'static str> = Vec::new();
    for c in cells {
        if c.mean_arrivals == mean_arrivals && !policies.contains(&c.policy.name()) {
            policies.push(c.policy.name());
        }
    }
    let mut t_values: Vec<u64> = cells
        .iter()
        .filter(|c| c.mean_arrivals == mean_arrivals)
        .map(|c| c.rounds)
        .collect();
    t_values.sort_unstable();
    t_values.dedup();

    let metric_name = if use_max {
        "max response"
    } else {
        "avg response"
    };
    let mut out = format!("M = {mean_arrivals} ({metric_name})\n");
    let _ = write!(out, "{:>6}", "T");
    for p in &policies {
        let _ = write!(out, "{p:>12}");
    }
    if !bounds.is_empty() {
        let _ = write!(out, "{:>12}", "LP bound");
    }
    out.push('\n');
    for &t in &t_values {
        let _ = write!(out, "{t:>6}");
        for p in &policies {
            let v = cells
                .iter()
                .find(|c| {
                    c.mean_arrivals == mean_arrivals && c.rounds == t && c.policy.name() == *p
                })
                .map(|c| {
                    if use_max {
                        c.max_response
                    } else {
                        c.avg_response
                    }
                });
            match v {
                Some(v) => {
                    let _ = write!(out, "{v:>12.3}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        if !bounds.is_empty() {
            let v = bounds
                .iter()
                .find(|b| b.mean_arrivals == mean_arrivals && b.rounds == t)
                .map(|b| {
                    if use_max {
                        b.max_response_bound
                    } else {
                        b.avg_response_bound
                    }
                });
            match v {
                Some(v) => {
                    let _ = write!(out, "{v:>12.3}");
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::PolicyKind;

    fn cell(policy: PolicyKind, m: f64, t: u64, avg: f64, max: f64) -> CellResult {
        CellResult {
            policy,
            mean_arrivals: m,
            rounds: t,
            trials: 2,
            avg_response: avg,
            max_response: max,
            mean_flows: 10.0,
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let cells = vec![cell(PolicyKind::MaxCard, 50.0, 10, 1.5, 3.0)];
        let csv = cells_to_csv(&cells);
        assert!(csv.starts_with("policy,M,T"));
        assert!(csv.contains("MaxCard,50,10,2,10.00,1.5000,3.0000"));
    }

    #[test]
    fn bounds_csv() {
        let b = vec![LpBoundResult {
            mean_arrivals: 50.0,
            rounds: 10,
            trials: 2,
            avg_response_bound: 1.25,
            max_response_bound: 2.0,
        }];
        let csv = bounds_to_csv(&b);
        assert!(csv.contains("50,10,2,1.2500,2.0000"));
    }

    #[test]
    fn figure_table_lays_out_series() {
        let cells = vec![
            cell(PolicyKind::MaxCard, 50.0, 10, 1.5, 3.0),
            cell(PolicyKind::MinRTime, 50.0, 10, 1.8, 2.0),
            cell(PolicyKind::MaxCard, 50.0, 12, 1.6, 3.5),
            cell(PolicyKind::MinRTime, 50.0, 12, 1.9, 2.2),
        ];
        let bounds = vec![LpBoundResult {
            mean_arrivals: 50.0,
            rounds: 10,
            trials: 2,
            avg_response_bound: 1.0,
            max_response_bound: 2.0,
        }];
        let table = figure_table(&cells, &bounds, 50.0, false);
        assert!(table.contains("MaxCard"));
        assert!(table.contains("LP bound"));
        assert!(table.contains("1.500"));
        // T=12 has no bound: dash.
        assert!(table.lines().last().unwrap().trim_end().ends_with('-'));
    }
}
